"""Ablation (paper §4): reliable performance and failure redundancy.

Paper claims: Section 4 studies "the critical mass needed for such a
system to achieve global coverage and **reliable performance**"; Figure
2(c)'s caption adds that satellites beyond the coverage minimum "ensure
fault tolerance ... and increased availability."  These benches measure
both: availability vs fleet size (random and Walker-structured layouts),
and graceful degradation as a growing fraction of the reference fleet
fails.
"""

from conftest import print_table

from repro.experiments.availability import (
    availability_sweep,
    resilience_sweep,
)


def test_availability_vs_fleet_size(benchmark):
    rows = benchmark.pedantic(
        availability_sweep,
        kwargs={"fleet_sizes": (12, 24, 40, 55, 66), "epochs": 8,
                "seed": 37},
        rounds=1, iterations=1,
    )
    print_table(
        "Service availability vs fleet size (three sample users)",
        rows,
        ["satellites", "layout", "equatorial_availability",
         "mid-latitude_availability", "high-latitude_availability", "mean"],
    )
    random_rows = [r for r in rows if r["layout"] == "random"]
    means = [r["mean"] for r in random_rows]
    # Availability climbs with fleet size (noise allowance).
    assert means[-1] > means[0]
    assert means[-1] > 0.6
    # Structured design beats random placement at equal size.
    structured = [r for r in rows if r["layout"] == "walker-star"]
    assert structured
    assert structured[0]["mean"] >= means[-1]
    assert structured[0]["mean"] > 0.95


def test_resilience_to_failures(benchmark):
    rows = benchmark.pedantic(
        resilience_sweep,
        kwargs={"failure_fractions": (0.0, 0.1, 0.2, 0.3, 0.5),
                "epochs": 4, "seed": 41},
        rounds=1, iterations=1,
    )
    print_table(
        "Graceful degradation: random satellite failures in the 66-sat fleet",
        rows,
        ["failed_fraction", "surviving", "mean_availability"],
    )
    by_fraction = {r["failed_fraction"]: r for r in rows}
    # The redundancy margin absorbs 10% failures with no availability loss.
    assert by_fraction[0.0]["mean_availability"] == 1.0
    assert by_fraction[0.1]["mean_availability"] >= 0.95
    # Degradation is graceful, not a cliff: half the fleet still gives
    # partial service.
    availabilities = [r["mean_availability"] for r in rows]
    assert availabilities == sorted(availabilities, reverse=True)
    assert by_fraction[0.5]["mean_availability"] > 0.3
