"""Ablation (paper §2.1): RF-only vs mixed vs all-laser fleets.

Paper claims: laser ISLs offer "higher throughput than RF, with lower
energy cost", but at ~$500,000 per terminal they are "infeasible ... for
smaller spacecraft"; OpenSpace therefore mandates RF and makes laser
optional.  The sweep quantifies what the laser fraction buys (premium-QoS
admission) and costs (fleet capex).
"""

from conftest import print_table

from repro.experiments.ablations import ablation_isl_mix


def test_isl_mix_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_isl_mix,
        kwargs={"laser_fractions": (0.0, 0.25, 0.5, 0.75, 1.0),
                "satellite_count": 66, "seed": 7},
        rounds=1, iterations=1,
    )
    print_table(
        "ISL technology mix: laser fraction sweep",
        rows,
        ["laser_fraction", "premium_admission", "mean_latency_ms",
         "fleet_capex_musd"],
    )
    by_fraction = {row["laser_fraction"]: row for row in rows}

    # Premium (50 Mbps bottleneck) admission needs lasers.
    assert by_fraction[0.0]["premium_admission"] < 0.3
    assert by_fraction[1.0]["premium_admission"] > 0.6
    admissions = [row["premium_admission"] for row in rows]
    assert admissions[-1] >= admissions[0]

    # Capex grows monotonically with the laser fraction, and the full
    # upgrade costs at least the terminal bill (66 x $0.5M).
    capex = [row["fleet_capex_musd"] for row in rows]
    assert capex == sorted(capex)
    assert capex[-1] - capex[0] > 66 * 0.5
