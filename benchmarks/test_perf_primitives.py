"""Performance benchmarks for the hot simulation primitives.

Unlike the figure/ablation benches (single-shot experiment regeneration),
these measure steady-state throughput of the primitives that dominate
large parameter sweeps: orbit propagation, ISL topology construction,
proactive route precomputation, coverage estimation, and whole-network
snapshots.  Regressions here multiply directly into experiment wall-clock.
"""


from repro import obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.visibility import coverage_fraction
from repro.orbits.walker import iridium_like
from repro.phy.rf import standard_sband_isl_terminal
from repro.routing.proactive import ProactiveRouter


def test_perf_constellation_propagation(benchmark):
    constellation = iridium_like()
    propagators = constellation.propagators()

    def propagate():
        return [p.position_at(1234.5) for p in propagators]

    positions = benchmark(propagate)
    assert len(positions) == 66


def test_perf_isl_topology_snapshot(benchmark):
    constellation = iridium_like()
    ids = [f"s{i}" for i in range(66)]
    nodes = [
        IslNode(sat_id, [standard_sband_isl_terminal()], max_degree=4)
        for sat_id in ids
    ]
    builder = IslTopologyBuilder(nodes)
    positions = dict(zip(ids, constellation.positions_at(0.0)))

    snap = benchmark(builder.snapshot, 0.0, positions)
    assert snap.link_count > 60


def test_perf_proactive_precompute(benchmark):
    constellation = iridium_like()
    ids = [f"s{i}" for i in range(66)]
    nodes = [
        IslNode(sat_id, [standard_sband_isl_terminal()], max_degree=4)
        for sat_id in ids
    ]
    builder = IslTopologyBuilder(nodes)
    snap = builder.snapshot(0.0, dict(zip(ids, constellation.positions_at(0.0))))

    def precompute():
        router = ProactiveRouter()
        return router.precompute([snap])

    table = benchmark(precompute)
    assert table.route_count == 66 * 65


def test_perf_coverage_estimate(benchmark):
    constellation = iridium_like()
    positions = constellation.positions_at(0.0)

    value = benchmark(coverage_fraction, positions, 780.0)
    assert value > 0.99


def test_perf_network_snapshot(benchmark):
    fleet = build_fleet(iridium_like(), "perf", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, default_station_network())

    snap = benchmark(network.snapshot, 0.0)
    assert snap.graph.number_of_nodes() == 66 + 15


# -- observability overhead --------------------------------------------
# The engine's hot loop is instrumented (see repro.simulation.engine);
# the contract is that the default NullRecorder keeps the disabled path
# within noise of uninstrumented code.  Compare these two benches to see
# what an active recorder costs per event.

_OBS_BENCH_EVENTS = 20_000


def _run_engine_burst():
    from repro.simulation.engine import SimulationEngine

    engine = SimulationEngine()
    for index in range(_OBS_BENCH_EVENTS):
        engine.schedule(float(index), lambda: None, label="bench")
    engine.run()
    return engine.processed_count


def test_perf_engine_throughput_obs_disabled(benchmark):
    assert obs.active() is obs.NULL_RECORDER
    processed = benchmark(_run_engine_burst)
    assert processed == _OBS_BENCH_EVENTS


def test_perf_engine_throughput_obs_enabled(benchmark):
    def run_with_recorder():
        with obs.use(obs.Recorder()):
            return _run_engine_burst()

    processed = benchmark(run_with_recorder)
    assert processed == _OBS_BENCH_EVENTS
