"""Figure 2(a): the simulated OpenSpace constellation.

Paper claim: an Iridium-like Walker Star (66 satellites, 780 km, 6
near-polar planes) "achieves global coverage while maintaining
inter-satellite distances and trajectories that allow for simple and
sustained ISLs."
"""

from conftest import print_table

from repro.experiments.figure2 import figure_2a_constellation


def test_fig2a_constellation(benchmark):
    report = benchmark.pedantic(
        figure_2a_constellation, rounds=3, iterations=1
    )
    print_table(
        "Figure 2(a): OpenSpace reference constellation",
        [{
            "satellites": report.satellite_count,
            "planes": report.plane_count,
            "altitude_km": report.altitude_km,
            "inclination_deg": report.inclination_deg,
            "isls": report.isl_count,
            "mean_isl_km": report.mean_isl_distance_km,
            "coverage_union": report.coverage_union,
        }],
        ["satellites", "planes", "altitude_km", "inclination_deg",
         "isls", "mean_isl_km", "coverage_union"],
    )
    # Paper parameters.
    assert report.satellite_count == 66
    assert report.plane_count == 6
    assert abs(report.altitude_km - 780.0) < 1e-6
    # Global coverage claim.
    assert report.coverage_union > 0.99
    # "Simple and sustained ISLs": connected graph, ranges within budget.
    assert report.connected
    assert report.max_isl_distance_km < 6000.0


def test_fig2a_sustained_over_time(benchmark):
    """The ISL fabric must stay connected as the constellation orbits."""

    def sustained():
        reports = [figure_2a_constellation(t) for t in (0.0, 1500.0, 3000.0)]
        return reports

    reports = benchmark.pedantic(sustained, rounds=1, iterations=1)
    rows = [{
        "time_s": i * 1500.0,
        "isls": r.isl_count,
        "connected": r.connected,
        "coverage_union": r.coverage_union,
    } for i, r in enumerate(reports)]
    print_table("Figure 2(a): sustained ISLs over one orbit",
                rows, ["time_s", "isls", "connected", "coverage_union"])
    assert all(r.connected for r in reports)
    assert all(r.coverage_union > 0.99 for r in reports)
