"""Ablation (paper Discussion Q1): the mix of small and big players.

Paper claim: answering "what is the precise mix of small and big satellite
players that are needed" requires "extensive simulation tools not explored
in this paper" — modelled user bases, traffic patterns, technical
diversity.  This bench runs that tool: fleet compositions from all-small
(RF-only) to all-medium (laser-equipped) are swept under an identical
QoS-differentiated workload.
"""

from conftest import print_table

from repro.experiments.provider_mix import provider_mix_sweep

MIXES = ((3, 0), (2, 1), (1, 2), (0, 3))


def test_provider_mix_sweep(benchmark):
    results = benchmark.pedantic(
        provider_mix_sweep,
        kwargs={"mixes": MIXES, "satellite_count": 66, "flow_count": 60,
                "seed": 29},
        rounds=1, iterations=1,
    )
    rows = [{
        "mix": r.mix_name,
        "best_effort": r.admission_by_class.get("best_effort", float("nan")),
        "standard": r.admission_by_class.get("standard", float("nan")),
        "premium": r.admission_by_class.get("premium", float("nan")),
        "mean_fct_s": r.mean_fct_s,
        "capex_musd": r.capex_musd,
        "prem_per_musd": r.premium_capacity_per_musd,
    } for r in results]
    print_table(
        "Provider mix sweep: small (RF-only) vs medium (laser) operators",
        rows,
        ["mix", "best_effort", "standard", "premium", "mean_fct_s",
         "capex_musd", "prem_per_musd"],
    )

    all_small = results[0]
    all_medium = results[-1]
    # Basic service works regardless of the mix: small players alone can
    # sell best-effort connectivity — the democratization claim.
    for result in results:
        assert result.admission_by_class.get("best_effort", 0.0) > 0.8
    # Premium service needs laser capacity in the mix.
    assert (all_medium.admission_by_class.get("premium", 0.0)
            >= all_small.admission_by_class.get("premium", 0.0))
    assert all_medium.admission_by_class.get("premium", 0.0) > 0.8
    # Capex is monotone in the medium share.
    capex = [r.capex_musd for r in results]
    assert capex == sorted(capex)
    # Flow completion improves (or holds) as laser capacity enters.
    assert all_medium.mean_fct_s <= all_small.mean_fct_s
