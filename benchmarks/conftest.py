"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper figure (or one ablation) and prints
the same rows/series the paper reports, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction log.  Shapes are asserted;
absolute values are recorded in EXPERIMENTS.md.
"""

import pytest


def print_table(title, rows, columns):
    """Render experiment rows as an aligned text table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.3f}")
            else:
                cells.append(f"{str(value):>18}")
        print(" | ".join(cells))
