"""Figure 2(b): propagation latency vs constellation size.

Paper claim: "increasing the number of satellites in the simulation
dramatically reduces the inter-satellite latency up to about 25
satellites, after which latency values average about 30ms", and "the
constellation requires a minimum of about four satellites to guarantee
that a satellite will orbit in range."
"""

from conftest import print_table

from repro.experiments.figure2 import figure_2b_latency

COUNTS = [4, 7, 10, 13, 16, 19, 22, 25, 30, 40, 55, 70]


def test_fig2b_latency_series(benchmark):
    result = benchmark.pedantic(
        figure_2b_latency,
        kwargs={"satellite_counts": COUNTS, "trials": 4, "epochs": 8,
                "seed": 42},
        rounds=1, iterations=1,
    )
    rows = []
    for count in COUNTS:
        row = {"satellites": count,
               "reachability": result["reachability"][count]}
        series_row = next(
            (r for r in result["series"] if r["x"] == count), None
        )
        if series_row:
            row["latency_mean_ms"] = series_row["mean"]
            row["latency_p95_ms"] = series_row["p95"]
            row["samples"] = series_row["n"]
        rows.append(row)
    print_table(
        "Figure 2(b): propagation latency vs satellite count",
        rows,
        ["satellites", "reachability", "latency_mean_ms",
         "latency_p95_ms", "samples"],
    )

    reach = result["reachability"]
    # Minimum-fleet claim: below ~4 satellites essentially no service.
    assert reach[4] < 0.3
    # Reachability grows with fleet size.
    assert reach[70] > reach[25] > reach[4]
    assert reach[70] > 0.6

    by_count = {r["x"]: r["mean"] for r in result["series"]}
    # Plateau claim: the large-fleet latency sits in the tens of ms.
    assert 20.0 < by_count[70] < 70.0
    # Latency does not blow up as satellites are added past the knee.
    if 25 in by_count:
        assert by_count[70] <= by_count[25] * 1.5
