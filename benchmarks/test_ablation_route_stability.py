"""Ablation (paper §1/§2.2): routing in a rapidly changing topology.

Paper framing: interoperable routing must cope with "a rapidly changing
network topology", and OpenSpace's answer is precomputation from public
orbital data.  Precomputed tables age: this sweep measures route churn
between snapshots as the refresh epoch lengthens, giving the refresh
cadence an operator must budget for (and the handover signalling the
fleet generates).
"""

from conftest import print_table

from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.walker import iridium_like
from repro.phy.rf import standard_sband_isl_terminal
from repro.routing.stability import route_churn

EPOCH_LENGTHS_S = (15.0, 30.0, 60.0, 120.0, 300.0, 600.0)
PAIRS = [("s0", "s33"), ("s5", "s40"), ("s11", "s50"), ("s20", "s60"),
         ("s2", "s47"), ("s8", "s29")]


def _sweep():
    constellation = iridium_like()
    ids = [f"s{i}" for i in range(66)]
    nodes = [
        IslNode(sat_id, [standard_sband_isl_terminal()], max_degree=4)
        for sat_id in ids
    ]
    builder = IslTopologyBuilder(nodes)
    rows = []
    for epoch_s in EPOCH_LENGTHS_S:
        snapshots = [
            builder.snapshot(t, dict(zip(ids, constellation.positions_at(t))))
            for t in (0.0, epoch_s, 2 * epoch_s, 3 * epoch_s)
        ]
        report = route_churn(snapshots, PAIRS)
        rows.append({
            "epoch_s": epoch_s,
            "mean_churn": report.mean_churn,
            "worst_churn": report.worst_churn,
            "refresh_per_orbit": report.refresh_budget_per_orbit(),
            "mean_latency_delta_ms": sum(
                e.mean_latency_delta_ms for e in report.epochs
            ) / len(report.epochs),
        })
    return rows


def test_route_stability_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "Proactive-route churn vs refresh epoch (66-sat reference fleet)",
        rows,
        ["epoch_s", "mean_churn", "worst_churn", "refresh_per_orbit",
         "mean_latency_delta_ms"],
    )

    by_epoch = {row["epoch_s"]: row for row in rows}
    # Short epochs keep the tables nearly fresh.
    assert by_epoch[15.0]["mean_churn"] < 0.5
    # Long epochs churn most routes — precomputation must refresh at
    # least every few minutes at LEO dynamics.
    assert by_epoch[600.0]["mean_churn"] >= by_epoch[15.0]["mean_churn"]
    assert by_epoch[600.0]["mean_churn"] > 0.3
    # The trade is monotone-ish: churn never falls by much as the epoch
    # stretches.
    churns = [row["mean_churn"] for row in rows]
    assert churns[-1] >= churns[0]
