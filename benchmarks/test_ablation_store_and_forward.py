"""Ablation (paper §4): incremental deployment via store-and-forward.

The paper asks "how small initial deployments can be ... to achieve a
starting point from which the system can scale."  Sparse fleets rarely
have an instantaneous relay path, but orbits are public, so bundles can
ride satellites between contacts.  This ablation sweeps fleet size and
compares instantaneous-path delivery against time-expanded
store-and-forward delivery over a one-hour contact plan.
"""

from conftest import print_table

import numpy as np

from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.visibility import elevation_angle
from repro.orbits.walker import random_constellation
from repro.phy.rf import standard_sband_isl_terminal
from repro.routing.timeexpanded import TimeExpandedRouter

USER_SITE = GeodeticPoint(-1.29, 36.82)      # Nairobi
GATEWAY_SITE = GeodeticPoint(50.11, 8.68)    # Frankfurt
EPOCH_STEP_S = 120.0
HORIZON_S = 3600.0


def _snapshots_with_ground(constellation):
    """Topology snapshots including user/gateway access edges."""
    import math
    count = len(constellation)
    nodes = [
        IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=4)
        for i in range(count)
    ]
    builder = IslTopologyBuilder(nodes)
    snapshots = []
    mask = math.radians(5.0)
    for time_s in np.arange(0.0, HORIZON_S, EPOCH_STEP_S):
        positions = {
            f"s{i}": p
            for i, p in enumerate(constellation.positions_at(float(time_s)))
        }
        snap = builder.snapshot(float(time_s), positions)
        user_eci = ecef_to_eci(USER_SITE.ecef(), float(time_s))
        gateway_eci = ecef_to_eci(GATEWAY_SITE.ecef(), float(time_s))
        snap.graph.add_node("user")
        snap.graph.add_node("gateway")
        for i in range(count):
            pos = positions[f"s{i}"]
            if elevation_angle(user_eci, pos) >= mask:
                snap.graph.add_edge("user", f"s{i}", delay_s=0.005)
            if elevation_angle(gateway_eci, pos) >= mask:
                snap.graph.add_edge("gateway", f"s{i}", delay_s=0.005)
        snapshots.append(snap)
    return snapshots


def _sweep(fleet_sizes, seed=31):
    rng = np.random.default_rng(seed)
    rows = []
    for size in fleet_sizes:
        constellation = random_constellation(size, rng)
        snapshots = _snapshots_with_ground(constellation)
        router = TimeExpandedRouter(snapshots)
        # Instantaneous: delivered iff epoch 0 has a full path (no waits).
        route = router.earliest_arrival("user", "gateway", 0.0)
        instantaneous = route is not None and route.epochs_waited == 0
        rows.append({
            "satellites": size,
            "instantaneous": 1.0 if instantaneous else 0.0,
            "store_and_forward": 1.0 if route is not None else 0.0,
            "delivery_delay_s": (
                route.delivery_delay_s if route is not None else float("nan")
            ),
            "epochs_waited": (
                route.epochs_waited if route is not None else -1
            ),
        })
    return rows


def test_store_and_forward_for_sparse_fleets(benchmark):
    rows = benchmark.pedantic(
        _sweep, args=((3, 6, 10, 16, 24, 40),), rounds=1, iterations=1
    )
    print_table(
        "Sparse-deployment delivery: instantaneous vs store-and-forward "
        "(one-hour plan)",
        rows,
        ["satellites", "instantaneous", "store_and_forward",
         "delivery_delay_s", "epochs_waited"],
    )

    delivered_sf = [r for r in rows if r["store_and_forward"] > 0]
    delivered_instant = [r for r in rows if r["instantaneous"] > 0]
    # Store-and-forward strictly dominates instantaneous delivery.
    assert len(delivered_sf) >= len(delivered_instant)
    # The incremental-deployment claim: even very small fleets deliver
    # once bundles may wait onboard.
    small = [r for r in rows if r["satellites"] <= 10]
    assert any(r["store_and_forward"] > 0 for r in small)
    # Large fleets converge to instantaneous delivery.
    largest = rows[-1]
    assert largest["store_and_forward"] == 1.0
    # Delivery delay shrinks (or stays flat) as the fleet grows.
    delays = [r["delivery_delay_s"] for r in rows
              if r["store_and_forward"] > 0]
    assert delays[-1] <= delays[0]
