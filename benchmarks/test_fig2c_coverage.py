"""Figure 2(c): coverage vs constellation size.

Paper claim: "total earth coverage is achieved by about 50 satellites.
The additional satellites ensure redundancy."  The paper's worst-case
overlap counting is reported alongside the footprint-union estimate; the
union series carries the paper's shape (see EXPERIMENTS.md for the
estimator discussion).
"""

from conftest import print_table

from repro.experiments.figure2 import figure_2c_coverage

COUNTS = [1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 50, 60, 70, 80]


def test_fig2c_coverage_series(benchmark):
    rows = benchmark.pedantic(
        figure_2c_coverage,
        kwargs={"satellite_counts": COUNTS, "trials": 8, "seed": 42},
        rounds=1, iterations=1,
    )
    print_table(
        "Figure 2(c): coverage vs satellite count",
        rows, ["satellites", "union", "worst_case", "cluster"],
    )
    by_count = {row["satellites"]: row for row in rows}

    # Monotone growth of the union estimate (small trial-noise allowance).
    unions = [row["union"] for row in rows]
    for earlier, later in zip(unions[:-1], unions[1:]):
        assert later >= earlier - 0.02

    # Total-coverage-by-~50 claim (random placement approaches, and a
    # structured Walker fleet reaches, total coverage near this size; see
    # EXPERIMENTS.md).
    assert by_count[50]["union"] > 0.85
    assert by_count[60]["union"] > 0.90
    assert by_count[80]["union"] > 0.95

    # Redundancy claim: satellites beyond ~50 add little coverage.
    assert by_count[80]["union"] - by_count[50]["union"] < 0.10

    # A single satellite covers ~5% of the Earth at 780 km.
    assert 0.02 < by_count[1]["union"] < 0.10

    # Estimator ordering holds everywhere.
    for row in rows:
        assert row["cluster"] <= row["worst_case"] + 1e-9
        assert row["worst_case"] <= row["union"] + 0.05
