"""Ablation (paper Discussion Q2): runtime load-adaptive routing.

Paper claim: "peak loads at certain ground stations may necessitate
re-routing of traffic to a ground station that is further away but is
idle; in this case, a computation of the trade-off between longer routing
distance vs queuing and job completion times is necessary at runtime."

A burst of flows from one region hammers its nearest gateway; static
proactive routing keeps piling onto it while the load-adaptive router
diverts to farther idle gateways.  Flow completion time and gateway load
spread are the reported trade.
"""

from conftest import print_table

import numpy as np

from repro.core.interop import SizeClass
from repro.routing.adaptive import (
    LoadAdaptiveRouter,
    StaticNearestRouter,
    gateway_load_profile,
)
from repro.simulation.flowsim import FlowSimulator
from repro.simulation.scenario import Scenario
from repro.simulation.traffic import FlowSpec


def _hotspot_workload(count=40, size_mb=40.0):
    """A flash crowd: many users in one metro burst simultaneously."""
    return [
        FlowSpec(f"f{i}", f"user-{i % 8}", start_s=i * 0.05,
                 size_bytes=size_mb * 1e6)
        for i in range(count)
    ]


def _build_snapshot():
    scenario = Scenario(
        name="hotspot", satellite_count=66,
        operator_names=("op-a", "op-b"), size_mix=(SizeClass.MEDIUM,),
        user_count=8, seed=23,
    )
    network = scenario.build_network()
    population = scenario.build_population()
    # Cluster the users around Nairobi to create the hotspot.
    from repro.orbits.coordinates import GeodeticPoint
    rng = np.random.default_rng(23)
    for user in population.users:
        user.location = GeodeticPoint(
            -1.29 + float(rng.normal(0, 1.0)),
            36.82 + float(rng.normal(0, 1.0)),
        )
        user.min_elevation_deg = 10.0
    snap = network.snapshot(0.0, users=population.users)
    # Throttle ground links so the hotspot gateway saturates quickly.
    for u, v, data in snap.graph.edges(data=True):
        if data.get("kind") == "ground_link":
            data["capacity_bps"] = min(data["capacity_bps"], 150e6)
    return snap


def test_adaptive_vs_static_under_hotspot(benchmark):
    snap = _build_snapshot()
    flows = _hotspot_workload()

    def run_both():
        static = FlowSimulator(snap.graph, StaticNearestRouter()).run(flows)
        adaptive_router = LoadAdaptiveRouter()
        adaptive = FlowSimulator(snap.graph, adaptive_router).run(flows)
        return static, adaptive, adaptive_router

    static, adaptive, adaptive_router = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        {
            "router": "static-nearest",
            "mean_fct_s": static.mean_completion_time_s(),
            "mean_rate_mbps": static.mean_throughput_bps() / 1e6,
            "gateways_used": len(
                gateway_load_profile(static.completed, snap.graph)
            ),
        },
        {
            "router": "load-adaptive",
            "mean_fct_s": adaptive.mean_completion_time_s(),
            "mean_rate_mbps": adaptive.mean_throughput_bps() / 1e6,
            "gateways_used": len(
                gateway_load_profile(adaptive.completed, snap.graph)
            ),
        },
    ]
    print_table("Hotspot flash crowd: static vs load-adaptive routing",
                rows, ["router", "mean_fct_s", "mean_rate_mbps",
                       "gateways_used"])
    print(f"diversions to farther gateways: {adaptive_router.diversions}")

    # Both accept the workload.
    assert static.acceptance_ratio == 1.0
    assert adaptive.acceptance_ratio == 1.0
    # The paper's runtime trade-off pays off: adaptive completes flows
    # faster by spreading across more gateways.
    assert (adaptive.mean_completion_time_s()
            < static.mean_completion_time_s())
    assert rows[1]["gateways_used"] >= rows[0]["gateways_used"]
    assert adaptive_router.diversions > 0
