"""Ablation (paper §2): shared-spectrum coordination between operators.

Paper claim: interoperability "is challenging without access to shared
spectrum"; OpenSpace satellites of different owners transmit in common
bands, so co-channel coordination is a precondition for the whole
architecture.  This ablation overlaps two operators' shells and compares
coordinated channel assignment (public-topology graph coloring) against
uncoordinated random channel choice, at several band partitions.
"""

from conftest import print_table

import numpy as np

from repro.core.spectrum import SpectrumCoordinator
from repro.orbits.walker import (
    iridium_like,
    merge_constellations,
    random_constellation,
)


def _positions(seed=9):
    rng = np.random.default_rng(seed)
    merged = merge_constellations(
        [iridium_like(), random_constellation(66, rng)], "dual-shell"
    )
    return {f"sat{i}": p for i, p in enumerate(merged.positions_at(0.0))}


def test_spectrum_coordination(benchmark):
    positions = _positions()
    coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                      grid_resolution=16)

    def run():
        plan = coordinator.plan(positions)
        rows = []
        for slots in (plan.slot_count, plan.slot_count * 2,
                      plan.slot_count * 4):
            collisions = [
                coordinator.uncoordinated_collisions(
                    positions, slots, np.random.default_rng(100 + trial)
                )
                for trial in range(5)
            ]
            capped = coordinator.plan(positions, available_slots=slots)
            rows.append({
                "slots": slots,
                "coordinated_collisions": 0 if capped.is_conflict_free()
                else sum(
                    1 for a, b in capped.conflict_edges
                    if capped.assignments[a] == capped.assignments[b]
                ),
                "random_collisions_mean": float(np.mean(collisions)),
            })
        return plan, rows

    plan, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Shared-spectrum coordination ({len(plan.conflict_edges)} "
        f"conflicting pairs, {plan.slot_count} slots needed)",
        rows,
        ["slots", "coordinated_collisions", "random_collisions_mean"],
    )

    # The overlapped shells genuinely conflict.
    assert len(plan.conflict_edges) > 0
    # Coordination resolves every conflict within the chromatic slots.
    assert plan.is_conflict_free()
    # Random assignment keeps colliding even with the same slot budget.
    assert rows[0]["random_collisions_mean"] > 0.0
    assert rows[0]["coordinated_collisions"] == 0
    # More spectrum helps the uncoordinated case but does not fix it as
    # efficiently as coordination does.
    assert (rows[-1]["random_collisions_mean"]
            <= rows[0]["random_collisions_mean"])
