"""Ablation (paper §4/§5): operator fragmentation at fixed fleet size.

Paper claims: small firms individually "would simply have coverage for a
patchwork of regions ... rather than continuous global coverage on their
own", while interoperable collaboration makes the fragmented fleet
equivalent to a monolith; collaboration also divides the entry cost.
"""

from conftest import print_table

from repro.experiments.ablations import ablation_federation


def test_federation_fragmentation_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_federation,
        kwargs={"operator_counts": (1, 2, 3, 6), "satellite_count": 66,
                "seed": 19},
        rounds=1, iterations=1,
    )
    print_table(
        "Operator fragmentation at fixed 66-satellite fleet",
        rows,
        ["operators", "federated_reachability", "federated_latency_ms",
         "solo_reachability", "per_operator_capex_musd"],
    )

    # Interoperability thesis: federated service quality is independent of
    # how ownership is fragmented.
    federated = [row["federated_reachability"] for row in rows]
    assert max(federated) - min(federated) < 0.15
    assert min(federated) > 0.5

    # Without collaboration, fragmentation collapses solo reachability.
    by_count = {row["operators"]: row for row in rows}
    assert (by_count[6]["solo_reachability"]
            < by_count[1]["solo_reachability"])
    assert (by_count[6]["solo_reachability"]
            < by_count[6]["federated_reachability"])

    # Entry cost divides with the participant count.
    capex = [row["per_operator_capex_musd"] for row in rows]
    assert capex == sorted(capex, reverse=True)
    assert by_count[6]["per_operator_capex_musd"] < (
        by_count[1]["per_operator_capex_musd"] / 5.0
    )
