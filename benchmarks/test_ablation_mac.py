"""Ablation (paper §2.1): CSMA/CA vs TDMA for ISL channels.

Paper claim: "CSMA/CA allows for flexibility in synchronization between
satellites, however is prone to higher overhead and corresponding larger
latency due to Inter-Frame Spacing and backoff window requirements."
"""

from conftest import print_table

from repro.experiments.ablations import ablation_mac
from repro.mac.csma import CsmaCaConfig


def test_mac_contention_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_mac,
        kwargs={"station_counts": (2, 4, 8, 16), "arrival_rate_fps": 0.4,
                "duration_s": 400.0, "seed": 11},
        rounds=1, iterations=1,
    )
    print_table(
        "MAC comparison: CSMA/CA vs TDMA vs slotted ALOHA",
        rows,
        ["stations", "csma_delay_ms", "csma_delivery", "csma_goodput",
         "tdma_delay_ms", "tdma_delivery", "tdma_goodput",
         "aloha_delivery", "aloha_goodput"],
    )

    # The paper's overhead claim: CSMA/CA per-frame delay always exceeds
    # the raw frame airtime because of DIFS + backoff.
    frame_airtime_ms = (
        CsmaCaConfig().frame_slots * CsmaCaConfig().slot_time_s * 1000.0
    )
    for row in rows:
        assert row["csma_delay_ms"] > frame_airtime_ms

    # TDMA never collides, so its delivery holds up at every point.
    for row in rows:
        assert row["tdma_delivery"] > 0.9

    # CSMA/CA delay grows with contention.
    csma_delays = [row["csma_delay_ms"] for row in rows]
    assert csma_delays[-1] > csma_delays[0]

    # The synchronization trade: at high station counts TDMA's round-robin
    # wait dominates, which is exactly why the paper leaves better
    # real-time MACs to future work.
    last = rows[-1]
    assert last["tdma_delay_ms"] > rows[0]["tdma_delay_ms"]

    # Slotted ALOHA is the coordination-free floor: its goodput never
    # beats CSMA/CA's by more than noise at any contention level.
    for row in rows:
        assert row["aloha_goodput"] <= row["csma_goodput"] + 0.4
        assert row["aloha_delivery"] <= 1.0
