"""Benchmark harness for the vectorized/cached/parallel sweep stack.

Measures four things and writes them to ``BENCH_parallel.json``:

1. **Vectorization speedup** — scalar reference implementations (the
   pre-vectorization per-element loops, kept here as the honest
   baseline) against the broadcast paths for orbit propagation, relay
   mesh construction, and a Figure 2(b)-shaped sweep.
2. **Routing-backend speedup** — the networkx shortest-path stack
   against the compiled-sparse (CSR + batched multi-source Dijkstra)
   backend, for all-pairs proactive precompute and for the Figure 2(b)
   relay hot path.
3. **Snapshot-cache speedup** — repeated ``OpenSpaceNetwork.snapshot``
   queries with the LRU cache on vs off.
4. **Observability overhead** — an event-instrumented flow simulation
   with the recorder enabled vs disabled; gates the promise that a
   disabled recorder costs one attribute check per emit site.
5. **Determinism** — SHA-256 digests of each sweep's output at
   ``jobs=1`` vs ``jobs=2``, on the CSR vs networkx backend, and on the
   batched tensor engine vs the scalar walk; they must be identical.

Speedups are wall-clock *ratios* measured on the same machine in the
same run, so they transfer across hardware; ``--check`` gates the
current ratios against the committed ``BENCH_baseline.json`` with a
relative tolerance (default 25%) and fails on any digest divergence.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                  # measure
    PYTHONPATH=src python benchmarks/run_bench.py --check          # gate vs baseline
    PYTHONPATH=src python benchmarks/run_bench.py --write-baseline # refresh baseline
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time
from pathlib import Path

import networkx as nx
import numpy as np

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.figure2 import (
    DEFAULT_GATEWAY_SITE,
    DEFAULT_USER_SITE,
    _relay_latency_batch_s,
    _relay_latency_s,
    figure_2b_latency,
    figure_2c_coverage,
)
from repro.experiments.demand import demand_sweep
from repro.experiments.disrupted import disrupted_sweep
from repro.experiments.reliability import reliability_sweep
from repro.experiments.resilience_dynamic import dynamic_resilience_sweep
from repro.experiments.scale import plane_count_for, scale_sweep
from repro.ground.station import default_station_network
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.orbits.coordinates import ecef_to_eci
from repro.orbits.visibility import (
    elevation_angle,
    has_line_of_sight,
    slant_range,
)
from repro.orbits.walker import iridium_like, random_constellation, walker_delta
from repro.routing.csr import default_backend, set_default_backend
from repro.routing.proactive import ProactiveRouter
from repro.routing.timeexpanded import TimeExpandedRouter

HERE = Path(__file__).resolve().parent
DEFAULT_OUTPUT = HERE / "BENCH_parallel.json"
DEFAULT_BASELINE = HERE / "BENCH_baseline.json"


def _digest(value) -> str:
    """Canonical SHA-256 of a JSON-serializable result."""
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


#: ``--repeat N`` override: when set, every timed case runs N times and
#: reports the median instead of each case's own best-of-N default.
#: Median-of-N is robust to one-sided scheduler noise, which is what the
#: CI bench gate wants on shared runners.
_REPEAT_OVERRIDE = [None]


def _timeit(fn, repeat: int = 3) -> float:
    """Best-of-N wall clock; median-of-N under ``--repeat``."""
    override = _REPEAT_OVERRIDE[0]
    if override is not None:
        durations = []
        for _ in range(override):
            start = time.perf_counter()
            fn()
            durations.append(time.perf_counter() - start)
        return float(np.median(durations))
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- scalar reference implementations --------------------------------------
# These replicate the pre-vectorization code paths (per-element loops over
# `position_at` / `slant_range` / `has_line_of_sight`) so the speedup the
# harness reports is vectorized-vs-scalar on identical work.

def _scalar_positions(propagators, times):
    return np.array(
        [[prop.position_at(float(t)) for t in times] for prop in propagators]
    )


def _scalar_relay_latency_s(positions, user_eci, gateway_eci,
                            min_elevation_deg=0.0, max_isl_range_km=6000.0):
    count = positions.shape[0]
    mask_rad = math.radians(min_elevation_deg)
    graph = nx.Graph()
    graph.add_node("user")
    graph.add_node("gateway")
    for i in range(count):
        graph.add_node(i)
        if elevation_angle(user_eci, positions[i]) >= mask_rad:
            graph.add_edge("user", i,
                           delay_s=slant_range(user_eci, positions[i])
                           / SPEED_OF_LIGHT_KM_S)
        if elevation_angle(gateway_eci, positions[i]) >= mask_rad:
            graph.add_edge("gateway", i,
                           delay_s=slant_range(gateway_eci, positions[i])
                           / SPEED_OF_LIGHT_KM_S)
    for i in range(count):
        for j in range(i + 1, count):
            distance = slant_range(positions[i], positions[j])
            if distance > max_isl_range_km:
                continue
            if not has_line_of_sight(positions[i], positions[j]):
                continue
            graph.add_edge(i, j, delay_s=distance / SPEED_OF_LIGHT_KM_S)
    try:
        return nx.dijkstra_path_length(graph, "user", "gateway",
                                       weight="delay_s")
    except nx.NetworkXNoPath:
        return None


def _scalar_figure2b_sweep(counts, trials, epochs, seed):
    """The Figure 2(b) inner loop with every scalar path restored."""
    rng = np.random.default_rng(seed)
    epoch_times = np.linspace(0.0, 86400.0, epochs, endpoint=False)
    user_ecef = DEFAULT_USER_SITE.ecef()
    gateway_ecef = DEFAULT_GATEWAY_SITE.ecef()
    samples = []
    for count in counts:
        for _ in range(trials):
            constellation = random_constellation(count, rng)
            propagators = constellation.propagators()
            for t in epoch_times:
                positions = np.array(
                    [p.position_at(float(t)) for p in propagators]
                )
                latency = _scalar_relay_latency_s(
                    positions,
                    ecef_to_eci(user_ecef, float(t)),
                    ecef_to_eci(gateway_ecef, float(t)),
                )
                if latency is not None:
                    samples.append(latency)
    return samples


# -- benchmark cases -------------------------------------------------------

def bench_propagation() -> dict:
    """Whole-fleet propagation: scalar position_at loop vs batch_states."""
    constellation = iridium_like()
    propagators = constellation.propagators()
    times = np.linspace(0.0, 5400.0, 120)
    scalar_s = _timeit(lambda: _scalar_positions(propagators, times))
    vectorized_s = _timeit(lambda: constellation.positions_over(times))
    return {"scalar_s": scalar_s, "vectorized_s": vectorized_s,
            "speedup": scalar_s / vectorized_s}


def bench_relay_mesh() -> dict:
    """Relay-graph construction for one 70-satellite epoch."""
    rng = np.random.default_rng(7)
    positions = random_constellation(70, rng).positions_at(0.0)
    user_eci = ecef_to_eci(DEFAULT_USER_SITE.ecef(), 0.0)
    gateway_eci = ecef_to_eci(DEFAULT_GATEWAY_SITE.ecef(), 0.0)
    scalar_s = _timeit(lambda: _scalar_relay_latency_s(
        positions, user_eci, gateway_eci))
    vectorized_s = _timeit(lambda: _relay_latency_s(
        positions, user_eci, gateway_eci, min_elevation_deg=0.0))
    return {"scalar_s": scalar_s, "vectorized_s": vectorized_s,
            "speedup": scalar_s / vectorized_s}


def bench_figure2_sweep() -> dict:
    """A Figure 2(b)-shaped sweep: scalar reference vs the batched engine.

    This is the acceptance measurement for the tensor pipeline: the
    batched engine (flat epoch propagation, merged trial tensors, one
    block-diagonal Dijkstra per sweep point, no event loop) against the
    honest per-element scalar reference — on identical work, with the
    engine-equivalence digests proving identical output.
    """
    counts, trials, epochs, seed = (10, 25, 45, 70), 2, 6, 42
    scalar_s = _timeit(
        lambda: _scalar_figure2b_sweep(counts, trials, epochs, seed),
        repeat=2)
    optimized_s = _timeit(
        lambda: figure_2b_latency(satellite_counts=counts, trials=trials,
                                  epochs=epochs, seed=seed, jobs=1,
                                  engine="batched"),
        repeat=2)
    return {"scalar_s": scalar_s, "vectorized_s": optimized_s,
            "speedup": scalar_s / optimized_s}


def bench_routing_precompute() -> dict:
    """All-pairs proactive precompute: networkx vs the CSR backend.

    This is the acceptance measurement for the compiled-sparse routing
    backend: batched multi-source Dijkstra plus lazy route
    materialization must beat the eager per-source networkx loop by
    >= 5x on an all-pairs table at reference-fleet scale.
    """
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "bench", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    snapshots = [network.snapshot(t) for t in (0.0, 300.0)]

    def precompute(backend):
        table = ProactiveRouter(backend=backend).precompute(snapshots)
        return table.route_count

    counts = {backend: precompute(backend)
              for backend in ("networkx", "csr")}
    assert counts["networkx"] == counts["csr"], counts
    nx_s = _timeit(lambda: precompute("networkx"), repeat=2)
    csr_s = _timeit(lambda: precompute("csr"), repeat=2)
    return {"scalar_s": nx_s, "vectorized_s": csr_s,
            "speedup": nx_s / csr_s}


def bench_routing_relay() -> dict:
    """Figure 2(b) relay hot path: per-epoch networkx vs batched CSR.

    One trial's worth of epochs at the largest swept fleet size, with
    propagation excluded so the ratio isolates the shortest-path work
    the CSR backend replaces.
    """
    count, epochs = 70, 12
    rng = np.random.default_rng(7)
    times = np.linspace(0.0, 86400.0, epochs, endpoint=False)
    positions_all = random_constellation(count, rng).positions_over(times)
    user_ecis = np.stack([ecef_to_eci(DEFAULT_USER_SITE.ecef(), float(t))
                          for t in times])
    gateway_ecis = np.stack([ecef_to_eci(DEFAULT_GATEWAY_SITE.ecef(),
                                         float(t)) for t in times])

    def networkx_epochs():
        return [_relay_latency_s(positions_all[:, k, :], user_ecis[k],
                                 gateway_ecis[k])
                for k in range(epochs)]

    nx_s = _timeit(networkx_epochs)
    csr_s = _timeit(lambda: _relay_latency_batch_s(
        positions_all, user_ecis, gateway_ecis))
    return {"scalar_s": nx_s, "vectorized_s": csr_s,
            "speedup": nx_s / csr_s}


def bench_snapshot_cache() -> dict:
    """Repeated snapshot queries: LRU cache on vs off."""
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "bench", SizeClass.MEDIUM)
    times = [0.0, 60.0, 120.0, 180.0]
    rounds = 6

    def query(network):
        for _ in range(rounds):
            for t in times:
                network.snapshot(t)

    cold = OpenSpaceNetwork(fleet, stations, snapshot_cache_size=0)
    uncached_s = _timeit(lambda: query(cold), repeat=2)
    warm = OpenSpaceNetwork(fleet, stations)
    cached_s = _timeit(lambda: query(warm), repeat=2)
    return {"scalar_s": uncached_s, "vectorized_s": cached_s,
            "speedup": uncached_s / cached_s}


def bench_obs_overhead() -> dict:
    """Event-instrumented flow simulation: recorder on vs off.

    The observability contract says a disabled recorder costs one
    attribute check per emit site, so the off/on ratio is the gated
    quantity — ``scalar_s`` is the *enabled* run (flight recorder plus
    full event retention) and ``vectorized_s`` the disabled run.  A
    regression on the disabled fast path shrinks the ratio and trips
    the gate; the enabled path is allowed to cost whatever recording
    honestly costs.
    """
    from repro import obs as _obs
    from repro.simulation.flowsim import FlowSimulator
    from repro.simulation.traffic import FlowSpec

    hops = 12
    nodes = [f"n{i}" for i in range(hops + 1)]
    graph = nx.Graph()
    for u, v in zip(nodes[:-1], nodes[1:]):
        graph.add_edge(u, v, capacity_bps=100e6)
    flows = [
        FlowSpec(flow_id=f"f{i}", user_id=f"u{i % 7}",
                 start_s=float(i) * 0.25, size_bytes=2e6)
        for i in range(400)
    ]

    def route(graph_, spec, active):
        return nodes

    def run_disabled():
        return FlowSimulator(graph, route).run(flows)

    def run_enabled():
        recorder = _obs.Recorder()
        with _obs.use(recorder):
            result = FlowSimulator(graph, route).run(flows)
        return result, len(recorder.events)

    assert run_enabled()[1] == len(flows)
    enabled_s = _timeit(run_enabled)
    disabled_s = _timeit(run_disabled)
    return {"scalar_s": enabled_s, "vectorized_s": disabled_s,
            "speedup": enabled_s / disabled_s}


def _scalar_fluid_rates(demand, paths, graph):
    """Per-flow reference of the whole fluid evaluation (given routes).

    The honest pre-vectorization implementation: python loops and dicts
    over individual flows — edge interning, offered-load accumulation,
    and progressive-filling waterfill with the same semantics, edge
    indexing, and tie-breaking as ``repro.demand.fluid.run_fluid``
    (so the resulting rates match bitwise-close).
    """
    flows = len(demand)
    edge_slot = {}
    capacities = []
    flow_edge_slots = []
    offered = []
    for i, path in enumerate(paths):
        slots = []
        if path is not None and len(path) >= 2:
            for u, v in zip(path[:-1], path[1:]):
                key = (u, v) if u <= v else (v, u)
                slot = edge_slot.get(key)
                if slot is None:
                    slot = len(capacities)
                    edge_slot[key] = slot
                    capacities.append(float(
                        graph[u][v].get("capacity_bps", math.inf)
                    ))
                    offered.append(0.0)
                slots.append(slot)
                offered[slot] += demand[i]
        flow_edge_slots.append(slots)
    rates = [0.0] * flows
    residual = list(capacities)
    # Unrouted flows (no slots) freeze at rate 0, matching run_fluid's
    # zeroed effective demand for them.
    frozen = [demand[i] <= 0.0 or not flow_edge_slots[i]
              for i in range(flows)]
    while not all(frozen):
        counts = [0] * len(residual)
        for i in range(flows):
            if frozen[i]:
                continue
            for slot in flow_edge_slots[i]:
                counts[slot] += 1
        level = math.inf
        bottleneck = None
        for slot, count in enumerate(counts):
            if count == 0:
                continue
            share = max(residual[slot], 0.0) / count
            if share < level:
                level, bottleneck = share, slot
        if bottleneck is None:
            for i in range(flows):
                if not frozen[i]:
                    rates[i] = demand[i]
                    frozen[i] = True
            break
        newly = [i for i in range(flows)
                 if not frozen[i] and demand[i] <= level * (1.0 + 1e-12)]
        if newly:
            for i in newly:
                rates[i] = demand[i]
        else:
            newly = [i for i in range(flows)
                     if not frozen[i] and bottleneck in flow_edge_slots[i]]
            for i in newly:
                rates[i] = level
        for i in newly:
            frozen[i] = True
            for slot in flow_edge_slots[i]:
                residual[slot] -= rates[i]
    loads = [0.0] * len(capacities)
    for i in range(flows):
        for slot in flow_edge_slots[i]:
            loads[slot] += rates[i]
    return rates, loads


def bench_demand_fluid() -> dict:
    """The million-user fluid traffic plane: scalar loops vs array ops.

    This is the acceptance measurement for ``repro.demand``: one sweep
    point loads >= 1M modeled users (aggregated over ground cells) and
    the vectorized engine (incidence scatter-adds + whole-array
    waterfilling) must beat the faithful per-flow dict reference on the
    identical fixed point, with the fixed point converging.
    """
    from repro.demand import GridSpec, offered_load_bps, population_grid
    from repro.demand.fluid import map_cells_to_routes, run_fluid
    from repro.experiments.demand import PROVIDERS, scale_access_capacity

    total_users = 1_200_000
    grid = population_grid(total_users, np.random.default_rng(7),
                           GridSpec(bands=36, equator_columns=72))
    assert grid.total_users >= 1_000_000
    fleet = build_fleet(iridium_like(), "bench-fleet", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, default_station_network())
    terminals = grid.terminals(PROVIDERS, min_elevation_deg=10.0)
    graph = network.snapshot(72000.0, users=terminals).graph
    occupied = grid.occupied
    cell_ids = grid.cell_ids(occupied)
    scale_access_capacity(graph, {
        cell_id: int(grid.users[index])
        for cell_id, index in zip(cell_ids, occupied)
    })
    demand = offered_load_bps(grid.users[occupied], grid.lon_deg[occupied],
                              hour_utc=20.0)
    # Route mapping is shared setup (the CSR-vs-networkx benchmarks
    # already price the Dijkstra work); the ratio isolates the fluid
    # fixed point itself.
    paths = map_cells_to_routes(graph, cell_ids)

    result = run_fluid(graph, cell_ids, demand, paths=paths)
    assert result.converged, "fluid fixed point failed to converge"

    demand_list = [float(d) for d in demand]
    scalar_rates, _ = _scalar_fluid_rates(demand_list, paths, graph)
    assert np.allclose(scalar_rates, result.rate_bps, rtol=1e-9), \
        "scalar reference diverged from vectorized waterfill"

    scalar_s = _timeit(lambda: _scalar_fluid_rates(
        demand_list, paths, graph), repeat=2)
    vectorized_s = _timeit(lambda: run_fluid(
        graph, cell_ids, demand, paths=paths), repeat=2)
    return {"scalar_s": scalar_s, "vectorized_s": vectorized_s,
            "speedup": scalar_s / vectorized_s,
            "modeled_users": grid.total_users,
            "routed_cells": int(result.routed.sum()),
            "waterfill_iterations": int(result.iterations)}


def bench_dtn() -> dict:
    """Time-expanded earliest-arrival planning: networkx vs CSR.

    The DTN scheduler's hot path is one contact plan answering many
    earliest-arrival queries (every buffered bundle, at every epoch,
    against every candidate gateway).  The CSR backend builds the
    time-expanded adjacency once and memoizes one single-source run per
    distinct start node, so the ratio grows with the query count; the
    networkx reference re-runs Dijkstra per query.
    """
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "bench", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    snapshots = [network.snapshot(t) for t in
                 (0.0, 600.0, 1200.0, 1800.0, 2400.0, 3000.0)]
    sources = sorted(s.satellite_id for s in network.satellites)[:12]
    targets = sorted(st.station_id for st in stations)[:6]

    def plan(backend):
        router = TimeExpandedRouter(snapshots, backend=backend)
        return [router.earliest_arrival(source, target, 0.0)
                for source in sources for target in targets]

    def arrivals(routes):
        return [None if r is None else r.arrival_s for r in routes]

    nx_routes = arrivals(plan("networkx"))
    csr_routes = arrivals(plan("csr"))
    assert len(nx_routes) == len(csr_routes)
    assert all(
        (a is None) == (b is None)
        and (a is None or math.isclose(a, b, rel_tol=1e-9))
        for a, b in zip(nx_routes, csr_routes)
    ), "CSR earliest-arrival plans diverged from networkx"
    nx_s = _timeit(lambda: plan("networkx"), repeat=2)
    csr_s = _timeit(lambda: plan("csr"), repeat=2)
    return {"scalar_s": nx_s, "vectorized_s": csr_s,
            "speedup": nx_s / csr_s,
            "queries": len(nx_routes)}


#: Fleet size for the mega-constellation completion record inside
#: ``bench_scale``; ``--scale-satellites`` overrides it (the CI smoke
#: path runs a smaller fleet, the full gate runs the 10k default).
MEGA_SCALE_SATELLITES = 10_000


def bench_scale() -> dict:
    """Mega-constellation topology build: all-pairs vs grid-pruned.

    This is the acceptance measurement for the spatial index: one
    snapshot of a 2880-satellite Walker Delta fleet, candidate discovery
    via the full upper triangle vs the latitude/longitude grid, with the
    digests asserted byte-identical.  The case also proves the delta
    path (delta-built digests equal full rebuilds over an orbital
    period) and records that a ``MEGA_SCALE_SATELLITES``-satellite fleet
    completes one full orbital period through the delta path.
    """
    count = 2880
    fleet = build_fleet(walker_delta(count, plane_count_for(count)),
                        "bench-scale", SizeClass.MEDIUM)

    def snap(spatial):
        network = OpenSpaceNetwork(
            fleet, [], max_isl_range_km=3000.0, snapshot_cache_size=0,
            spatial_index=spatial, snapshot_delta=False,
        )
        return network.snapshot(0.0)

    assert snap(True).digest() == snap(False).digest(), \
        "grid-pruned snapshot diverged from all-pairs"
    allpairs_s = _timeit(lambda: snap(False), repeat=2)
    spatial_s = _timeit(lambda: snap(True), repeat=2)

    digest_rows = scale_sweep(satellite_counts=(360,), epochs=4,
                              compare_digests=True)
    assert all(row["digests_match"] for row in digest_rows), \
        "delta-built snapshot digest diverged from full rebuild"

    start = time.perf_counter()
    mega = scale_sweep(satellite_counts=(MEGA_SCALE_SATELLITES,),
                       epochs=4, compare_digests=False)[0]
    mega_s = time.perf_counter() - start
    return {
        "scalar_s": allpairs_s, "vectorized_s": spatial_s,
        "speedup": allpairs_s / spatial_s,
        "snapshot_satellites": count,
        "digest_satellites": 360,
        "digests_match": True,
        "mega": {
            "satellites": mega["satellites"],
            "planes": mega["planes"],
            "epochs": mega["epochs"],
            "period_s": mega["period_s"],
            "mean_isl_edges": mega["mean_isl_edges"],
            "mean_degree": mega["mean_degree"],
            "churn_mean": mega["churn_mean"],
            "delta_builds": mega["delta_builds"],
            "total_s": mega_s,
            "completed": True,
        },
    }


def bench_determinism(jobs: int) -> dict:
    """Digest each sweep at jobs=1 and jobs=N; they must agree."""
    cases = {}
    fig_kwargs = dict(satellite_counts=(10, 25, 45), trials=2, epochs=4,
                      seed=42)
    cases["figure2b"] = (
        _digest(figure_2b_latency(jobs=1, **fig_kwargs)),
        _digest(figure_2b_latency(jobs=jobs, **fig_kwargs)),
    )
    faults_kwargs = dict(mtbf_hours=(1.0, 3.0), horizon_s=1800.0, epochs=4)
    cases["faults"] = (
        _digest(dynamic_resilience_sweep(jobs=1, **faults_kwargs)),
        _digest(dynamic_resilience_sweep(jobs=jobs, **faults_kwargs)),
    )
    demand_kwargs = dict(satellite_counts=(24,), hours_utc=(4.0, 20.0),
                         total_users=200_000, bands=10, equator_columns=20)
    cases["demand"] = (
        _digest(demand_sweep(jobs=1, **demand_kwargs)),
        _digest(demand_sweep(jobs=jobs, **demand_kwargs)),
    )
    dtn_kwargs = dict(radii_km=(0.0, 1500.0), durations_s=(900.0,),
                      buffer_kb=(64.0,), horizon_s=3600.0, step_s=600.0,
                      loss=0.05, sensors=2, satellites=24,
                      bundle_interval_s=600.0, bundle_bytes=1024,
                      ttl_s=3600.0, seed=17)
    cases["dtn"] = (
        _digest(disrupted_sweep(jobs=1, **dtn_kwargs)),
        _digest(disrupted_sweep(jobs=jobs, **dtn_kwargs)),
    )
    return {
        name: {"serial": serial, "parallel": parallel,
               "match": serial == parallel}
        for name, (serial, parallel) in cases.items()
    }


def bench_backend_equivalence() -> dict:
    """Digest each seeded sweep on the CSR and networkx backends.

    The CSR backend must be a pure performance change: every sweep
    output is bitwise identical to the networkx reference.
    """

    def both(fn):
        original = default_backend()
        digests = {}
        try:
            for backend in ("csr", "networkx"):
                set_default_backend(backend)
                digests[backend] = _digest(fn())
        finally:
            set_default_backend(original)
        digests["match"] = digests["csr"] == digests["networkx"]
        return digests

    return {
        "figure2b": both(lambda: figure_2b_latency(
            satellite_counts=(10, 25), trials=2, epochs=3, seed=42,
            jobs=1)),
        "figure2c": both(lambda: figure_2c_coverage(
            satellite_counts=(4, 12), trials=2, seed=42, jobs=1)),
        "faults": both(lambda: dynamic_resilience_sweep(
            mtbf_hours=(1.0,), horizon_s=1200.0, epochs=3, jobs=1)),
        "reliability": both(lambda: reliability_sweep(
            loss_rates=(0.0, 0.2), flap_mtbf_hours=(0.0,),
            horizon_s=600.0, probes=2, jobs=1)),
    }


def bench_engine_equivalence(jobs: int) -> dict:
    """Digest the figure2/faults sweeps on the scalar vs batched engine.

    The batched tensor engine must be a pure performance change: sweep
    output is bitwise identical to the scalar walk, at every job count.
    """

    def both(fn) -> dict:
        digests = {
            "scalar": _digest(fn(engine="scalar", jobs=1)),
            "batched": _digest(fn(engine="batched", jobs=1)),
            "batched_parallel": _digest(fn(engine="batched", jobs=jobs)),
        }
        digests["match"] = (
            digests["scalar"] == digests["batched"] == digests["batched_parallel"]
        )
        return digests

    return {
        "figure2b": both(lambda **kw: figure_2b_latency(
            satellite_counts=(10, 25, 45), trials=2, epochs=4, seed=42,
            **kw)),
        "faults": both(lambda **kw: dynamic_resilience_sweep(
            mtbf_hours=(1.0, 3.0), horizon_s=1800.0, epochs=4, **kw)),
    }


BENCH_CASES = {
    "propagation": bench_propagation,
    "relay_mesh": bench_relay_mesh,
    "figure2_sweep": bench_figure2_sweep,
    "routing_precompute": bench_routing_precompute,
    "routing_relay": bench_routing_relay,
    "snapshot_cache": bench_snapshot_cache,
    "obs_overhead": bench_obs_overhead,
    "demand_fluid": bench_demand_fluid,
    "dtn": bench_dtn,
    "scale": bench_scale,
}


#: Digest-section pseudo-cases accepted by ``--only`` alongside the
#: timed cases in :data:`BENCH_CASES` (e.g. the CI smoke path pairs
#: ``figure2_sweep`` with ``engine_equivalence``).
SECTION_CASES = ("determinism", "backend_equivalence", "engine_equivalence")


def run_all(jobs: int, only=None) -> dict:
    """Run the harness; ``only`` restricts to the named benchmark cases.

    A filtered run (the CI smoke path) skips the digest sections unless
    named explicitly — it is a targeted measurement, not the full gate,
    and cannot be used with ``--check``.
    """
    if only:
        names = [name for name in only if name not in SECTION_CASES]
        sections = [name for name in only if name in SECTION_CASES]
    else:
        names = list(BENCH_CASES)
        sections = list(SECTION_CASES)
    unknown = [name for name in names if name not in BENCH_CASES]
    if unknown:
        raise SystemExit(
            f"unknown benchmark case(s) {unknown}; "
            f"expected names from {sorted(BENCH_CASES) + sorted(SECTION_CASES)}"
        )
    benchmarks = {name: BENCH_CASES[name]() for name in names}
    result = {
        "schema": 1,
        "jobs": jobs,
        "benchmarks": benchmarks,
    }
    result["determinism"] = (
        bench_determinism(jobs) if "determinism" in sections else {}
    )
    result["backend_equivalence"] = (
        bench_backend_equivalence() if "backend_equivalence" in sections else {}
    )
    result["engine_equivalence"] = (
        bench_engine_equivalence(jobs) if "engine_equivalence" in sections else {}
    )
    return result


def check(result: dict, baseline: dict, tolerance: float) -> list:
    """Regression findings for a result vs the committed baseline."""
    problems = []
    for name, case in result["determinism"].items():
        if not case["match"]:
            problems.append(
                f"determinism: {name} parallel digest diverges from serial"
            )
    for name, case in result.get("backend_equivalence", {}).items():
        if not case["match"]:
            problems.append(
                f"backend: {name} CSR digest diverges from networkx"
            )
    for name, case in result.get("engine_equivalence", {}).items():
        if not case["match"]:
            problems.append(
                f"engine: {name} batched digest diverges from scalar"
            )
    for name, base_case in baseline.get("benchmarks", {}).items():
        current = result["benchmarks"].get(name)
        if current is None:
            problems.append(f"benchmark missing from run: {name}")
            continue
        floor = base_case["speedup"] / (1.0 + tolerance)
        if current["speedup"] < floor:
            problems.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_case['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def main(argv=None) -> int:
    global MEGA_SCALE_SATELLITES
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the results JSON")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline to gate against")
    parser.add_argument("--check", action="store_true",
                        help="fail when speedups regress vs the baseline "
                             "or parallel digests diverge")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel job count for the determinism check")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="rerun every timed case N times and report "
                             "the median (default: per-case best-of-N)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="also write the measured ratios as the new "
                             "baseline")
    parser.add_argument("--only", nargs="+", metavar="NAME", default=None,
                        help="run only the named benchmark cases; digest "
                             "sections (determinism, backend_equivalence, "
                             "engine_equivalence) run only when named "
                             "(incompatible with --check)")
    parser.add_argument("--scale-satellites", type=int,
                        default=MEGA_SCALE_SATELLITES, metavar="N",
                        help="fleet size for the scale benchmark's "
                             "mega-constellation completion record")
    args = parser.parse_args(argv)
    MEGA_SCALE_SATELLITES = args.scale_satellites
    if args.repeat is not None:
        if args.repeat < 1:
            parser.error(f"--repeat must be >= 1, got {args.repeat}")
        _REPEAT_OVERRIDE[0] = args.repeat
    if args.only and (args.check or args.write_baseline):
        parser.error("--only cannot be combined with --check or "
                     "--write-baseline (partial runs are not a gate)")

    result = run_all(args.jobs, only=args.only)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {args.output}")
    for name, case in result["benchmarks"].items():
        print(f"  {name:>15}: {case['speedup']:6.2f}x "
              f"({case['scalar_s'] * 1000:.1f} ms -> "
              f"{case['vectorized_s'] * 1000:.1f} ms)")
    for name, case in result["determinism"].items():
        status = "ok" if case["match"] else "DIVERGED"
        print(f"  determinism {name}: {status}")
    for name, case in result["backend_equivalence"].items():
        status = "ok" if case["match"] else "DIVERGED"
        print(f"  backend {name}: {status}")
    for name, case in result["engine_equivalence"].items():
        status = "ok" if case["match"] else "DIVERGED"
        print(f"  engine {name}: {status}")

    if args.write_baseline:
        # Cache-hit ratios reach four digits and jitter wildly with
        # machine load; clamping the stored ratio keeps the 25% gate
        # meaningful (any real regression lands far below the clamp).
        # The 0.8 headroom absorbs cross-machine variance in the
        # numpy-vs-interpreter ratio so the gate trips on code
        # regressions, not on a different CPU.
        baseline = {
            "schema": 1,
            "tolerance": args.tolerance,
            "benchmarks": {
                name: {"speedup": min(case["speedup"], 20.0) * 0.8}
                for name, case in result["benchmarks"].items()
            },
        }
        args.baseline.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {args.baseline}")

    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run with "
                  f"--write-baseline first", file=sys.stderr)
            return 2
        baseline = json.loads(args.baseline.read_text())
        problems = check(result, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
