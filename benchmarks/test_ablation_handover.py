"""Ablation (paper §2.2): predictive handover vs re-authentication.

Paper claim: communicating the successor ahead of time "eliminates the
need [to] run authentication and association protocols again, ensuring a
smooth handoff."  Starlink's observed handover cadence (~15 s) is the
high-frequency reference point for what per-handover costs imply.
"""

from conftest import print_table

from repro.core.handover import STARLINK_HANDOVER_INTERVAL_S
from repro.experiments.ablations import ablation_handover


def test_handover_schemes(benchmark):
    result = benchmark.pedantic(
        ablation_handover,
        kwargs={"duration_s": 5400.0},
        rounds=1, iterations=1,
    )
    rows = [
        {"scheme": name, **result[name]}
        for name in ("predictive", "reauthenticate")
    ]
    print_table(
        f"Handover schemes over 90 min "
        f"({result['handover_count']} handovers)",
        rows,
        ["scheme", "total_interruption_s", "availability",
         "mean_interruption_ms"],
    )

    # The paper's claim: predictive wins, by a wide margin.
    assert (result["predictive"]["total_interruption_s"]
            < result["reauthenticate"]["total_interruption_s"])
    assert result["interruption_ratio"] > 2.0
    assert result["predictive"]["availability"] > 0.999

    # At Starlink cadence (handover every 15 s) a re-auth scheme's outage
    # budget explodes: scale the per-handover costs to that rate.
    per_reauth_s = (
        result["reauthenticate"]["total_interruption_s"]
        / max(1, result["handover_count"])
    )
    per_predictive_s = (
        result["predictive"]["total_interruption_s"]
        / max(1, result["handover_count"])
    )
    handovers_per_hour = 3600.0 / STARLINK_HANDOVER_INTERVAL_S
    reauth_outage = per_reauth_s * handovers_per_hour
    predictive_outage = per_predictive_s * handovers_per_hour
    print(f"\nAt Starlink cadence (every {STARLINK_HANDOVER_INTERVAL_S:.0f}s):"
          f" reauth outage {reauth_outage:.1f} s/hour vs predictive "
          f"{predictive_outage:.1f} s/hour")
    assert reauth_outage > predictive_outage
