"""Ablation (paper §2.1): beacon-period trade-off for discovery.

Paper claim: OpenSpace needs "a protocol to allow satellites to both
broadcast their presence, and share their ISL specifications" — but the
paper leaves the beacon cadence open.  This ablation sweeps it: short
periods discover neighbours fast at high channel/airtime cost; long
periods starve pairing and handover.
"""

from conftest import print_table

import numpy as np

from repro.core.discovery import BeaconDiscoverySimulator

PERIODS_S = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)


def test_beacon_period_sweep(benchmark):
    def sweep():
        simulator = BeaconDiscoverySimulator(
            satellite_count=12, beacon_duration_s=0.01,
            loss_probability=0.1, rng=np.random.default_rng(4),
        )
        return simulator.sweep(PERIODS_S, duration_s=600.0)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{
        "period_s": r.beacon_period_s,
        "first_discovery_s": r.first_discovery_s or float("nan"),
        "full_discovery_s": (r.full_discovery_s
                             if r.full_discovery_s is not None
                             else float("nan")),
        "airtime_pct": r.airtime_fraction * 100.0,
        "beacons": r.beacons_sent,
    } for r in results]
    print_table(
        "Beacon period sweep (12 neighbours, 10% loss)",
        rows,
        ["period_s", "first_discovery_s", "full_discovery_s",
         "airtime_pct", "beacons"],
    )

    by_period = {r.beacon_period_s: r for r in results}
    # Every period eventually discovers everyone within the 10 min run.
    assert all(r.discovered == 12 for r in results)
    # Airtime falls monotonically with the period.
    airtimes = [r.airtime_fraction for r in results]
    assert airtimes == sorted(airtimes, reverse=True)
    # Discovery latency grows with the period (allowing phase noise).
    assert (by_period[60.0].full_discovery_s
            > by_period[0.5].full_discovery_s)
    # The knee: a ~5 s period discovers a full neighbourhood within ~15 s
    # at ~2% airtime — the kind of operating point a real profile would
    # standardize (sub-second periods burn >20% of the channel for
    # marginal latency gains).
    assert by_period[5.0].full_discovery_s < 30.0
    assert by_period[5.0].airtime_fraction < 0.03
    assert by_period[0.5].airtime_fraction > 0.2
