"""Ablation (paper §3): ledger settlement, fraud detection, peering.

Paper claims: per-path volumes "tracked by all parties involved ...
create an easily cross-verifiable account"; symmetric interdependence
leads providers to peer; the BGP provider/customer hierarchy cannot
express the meshed paths OpenSpace produces.
"""

from conftest import print_table

import numpy as np

from repro.economics.bgp import AsRelationship, BgpEconomy, RelationshipKind
from repro.experiments.ablations import ablation_economics


def test_ledger_settlement_and_peering(benchmark):
    result = benchmark.pedantic(
        ablation_economics,
        kwargs={"transfer_count": 300, "seed": 3},
        rounds=1, iterations=1,
    )
    rows = [
        {"isp": isp, "net_usd": value}
        for isp, value in sorted(result["net_positions"].items())
    ]
    print_table("Ledger settlement: net positions", rows, ["isp", "net_usd"])
    print(f"fraud injected: {result['fraud_injected']}, "
          f"mismatches caught: {result['mismatches_caught']}, "
          f"peering recommended: {result['peering_recommended']}")

    # Cross-verification catches every fraudulent segment.
    assert result["mismatches_caught"] == result["fraud_injected"]
    assert result["fraud_injected"] > 0
    # Money is conserved across the settlement.
    assert abs(sum(result["net_positions"].values())) < 1e-9
    # The symmetric pair is recommended to peer.
    assert ("isp-a", "isp-b") in result["peering_recommended"]


def test_bgp_model_misfit(benchmark):
    """Quantify how badly valley-free BGP fits meshed satellite paths."""
    rng = np.random.default_rng(17)
    economy = BgpEconomy()
    isps = ["isp-a", "isp-b", "isp-c"]
    economy.add_relationship(AsRelationship(
        "isp-a", "isp-b", RelationshipKind.CUSTOMER_PROVIDER, 0.03))
    economy.add_relationship(AsRelationship(
        "isp-b", "isp-c", RelationshipKind.PEER))
    economy.add_relationship(AsRelationship(
        "isp-a", "isp-c", RelationshipKind.CUSTOMER_PROVIDER, 0.03))

    def meshed_paths():
        # Satellite paths weave between owners as the paper describes:
        # uniformly random owner sequences of length 3-6.
        paths = []
        for _ in range(400):
            length = int(rng.integers(3, 7))
            path = [isps[int(rng.integers(0, 3))]]
            while len(path) < length:
                nxt = isps[int(rng.integers(0, 3))]
                if nxt != path[-1]:
                    path.append(nxt)
            paths.append(path)
        return economy.valley_free_fraction(paths)

    fraction = benchmark.pedantic(meshed_paths, rounds=1, iterations=1)
    print(f"\nvalley-free fraction of meshed satellite paths: {fraction:.2f}")
    # The paper's misfit argument: most meshed paths violate the
    # hierarchical model.
    assert fraction < 0.5
