"""Performance benchmarks for the vectorized/cached/parallel sweep stack.

Companions to ``run_bench.py`` (the JSON-emitting CI gate): these run
under ``pytest benchmarks/ --benchmark-only`` and measure the batched
propagation path, the vectorized relay-mesh construction, warm
snapshot-cache queries, and the end-to-end Figure 2(b) sweep point.
Each also asserts the determinism contract where it applies, so a
broken parallel refactor fails here before it reaches the gate.
"""

import json
import hashlib

import numpy as np

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.figure2 import (
    DEFAULT_GATEWAY_SITE,
    DEFAULT_USER_SITE,
    _relay_latency_s,
    figure_2b_latency,
)
from repro.ground.station import default_station_network
from repro.orbits.coordinates import ecef_to_eci
from repro.orbits.walker import iridium_like, random_constellation
from repro.parallel import derive_seed, run_grid


def _digest(value) -> str:
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


def test_perf_batched_propagation(benchmark):
    constellation = iridium_like()
    times = np.linspace(0.0, 5400.0, 120)

    positions = benchmark(constellation.positions_over, times)
    assert positions.shape == (66, 120, 3)


def test_perf_vectorized_relay_mesh(benchmark):
    rng = np.random.default_rng(7)
    positions = random_constellation(70, rng).positions_at(0.0)
    user_eci = ecef_to_eci(DEFAULT_USER_SITE.ecef(), 0.0)
    gateway_eci = ecef_to_eci(DEFAULT_GATEWAY_SITE.ecef(), 0.0)

    latency = benchmark(_relay_latency_s, positions, user_eci, gateway_eci,
                        0.0)
    assert latency is None or latency > 0.0


def test_perf_snapshot_cache_warm(benchmark):
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "bench", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    first = network.snapshot(0.0)

    snap = benchmark(network.snapshot, 0.0)
    assert snap is first  # warm queries return the cached object


def test_perf_figure2b_sweep_point(benchmark):
    result = benchmark(figure_2b_latency, (10, 25, 45), 2, 4, 42)
    assert set(result) == {"series", "reachability"}


def test_perf_run_grid_dispatch_overhead(benchmark):
    points = [(derive_seed(42, "grid", i), i) for i in range(64)]

    rows = benchmark(run_grid, _square_point, points)
    assert rows == [seed % 97 + index for seed, index in points]


def _square_point(args):
    seed, index = args
    return seed % 97 + index


def test_parallel_sweep_matches_serial():
    kwargs = dict(satellite_counts=(10, 25), trials=2, epochs=3, seed=42)
    assert (_digest(figure_2b_latency(jobs=1, **kwargs))
            == _digest(figure_2b_latency(jobs=2, **kwargs)))
