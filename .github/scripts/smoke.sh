#!/usr/bin/env bash
# Seeded end-to-end smoke contract, shared by every smoke matrix case.
#
# Runs one `repro` sweep twice and proves the output byte-identical,
# then reruns it with extra flags (a different --jobs count or routing
# backend) and proves that changes nothing either.  With EVENTS=true the
# telemetry stream joins the contract: a double-run to the same
# --events-out path must match byte for byte (the manifest embeds the
# output path, so both runs share one), and the rerun's stream must
# match on everything but the manifest line.  Optionally finishes with a
# targeted benchmark case whose JSON the workflow uploads as an
# artifact.
#
# Inputs (environment):
#   SWEEP_CMD   repro subcommand + arguments (required)
#   RERUN_ARGS  extra flags for the rerun (required; e.g. "--jobs 2")
#   EVENTS      "true" to exercise --events-out determinism
#   BENCH_ONLY  run_bench.py case name(s) to run afterwards (optional)
#   BENCH_OUT   output JSON path for the benchmark run
#   BENCH_ARGS  extra run_bench.py flags (optional)
set -euo pipefail

: "${SWEEP_CMD:?SWEEP_CMD is required}"
: "${RERUN_ARGS:?RERUN_ARGS is required}"

run() {
  # shellcheck disable=SC2086
  PYTHONPATH=src python -m repro ${SWEEP_CMD} "$@"
}

if [ "${EVENTS:-}" = "true" ]; then
  run --events-out events.jsonl | tee stdout_1.txt
  cp events.jsonl events_first_run.jsonl
  run --events-out events.jsonl > stdout_2.txt
  cmp events_first_run.jsonl events.jsonl
  diff stdout_1.txt stdout_2.txt
  # shellcheck disable=SC2086
  run ${RERUN_ARGS} --events-out events_rerun.jsonl > /dev/null
  diff <(grep -v '"type": "manifest"' events.jsonl) \
       <(grep -v '"type": "manifest"' events_rerun.jsonl)
else
  run | tee stdout_1.txt
  run > stdout_2.txt
  diff stdout_1.txt stdout_2.txt
  # shellcheck disable=SC2086
  run ${RERUN_ARGS} > stdout_rerun.txt
  diff stdout_1.txt stdout_rerun.txt
fi

if [ -n "${BENCH_ONLY:-}" ]; then
  : "${BENCH_OUT:?BENCH_OUT is required when BENCH_ONLY is set}"
  # shellcheck disable=SC2086
  PYTHONPATH=src python benchmarks/run_bench.py \
    --only ${BENCH_ONLY} --output "${BENCH_OUT}" ${BENCH_ARGS:-}
fi
