"""Phase profiler for experiment stages.

Experiment drivers run in coarse stages — build constellation, snapshot
topology, precompute routes, simulate flows, aggregate.  The profiler
answers "where did the wall-clock go" at that granularity: each phase is
a named accumulator of (calls, total seconds), cheap enough to wrap
every sweep point.

Unlike spans (which record every instance), a phase keeps only the
aggregate, so a 10,000-point sweep costs 10,000 perf_counter pairs but
O(phases) memory.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PhaseProfiler:
    """Accumulates wall-clock per named phase."""

    def __init__(self) -> None:
        self._phases: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the ``with`` block's wall-clock to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            row = self._phases.get(name)
            if row is None:
                row = self._phases[name] = {
                    "calls": 0, "total_s": 0.0, "max_s": 0.0,
                }
            row["calls"] += 1
            row["total_s"] += elapsed
            row["max_s"] = max(row["max_s"], elapsed)

    @property
    def phase_count(self) -> int:
        return len(self._phases)

    def total_s(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 when never entered)."""
        row = self._phases.get(name)
        return row["total_s"] if row else 0.0

    def calls(self, name: str) -> int:
        row = self._phases.get(name)
        return int(row["calls"]) if row else 0

    def rows(self) -> List[Dict]:
        """Export rows sorted by descending total time."""
        rows = [
            {"type": "phase", "name": name, "calls": int(row["calls"]),
             "total_s": row["total_s"], "max_s": row["max_s"]}
            for name, row in self._phases.items()
        ]
        rows.sort(key=lambda r: (-r["total_s"], r["name"]))
        return rows

    def report(self) -> str:
        """Human-readable table, slowest phase first."""
        rows = self.rows()
        if not rows:
            return "no phases recorded"
        width = max(len(r["name"]) for r in rows)
        lines = [f"{'phase':<{width}}  {'calls':>7}  {'total_s':>10}  "
                 f"{'max_s':>10}"]
        for row in rows:
            lines.append(
                f"{row['name']:<{width}}  {row['calls']:>7d}  "
                f"{row['total_s']:>10.4f}  {row['max_s']:>10.4f}"
            )
        return "\n".join(lines)
