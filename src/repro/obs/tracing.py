"""Span-based tracing for the simulation stack.

A span is one timed region of work — a route precomputation, one sweep
point of an experiment, a flow-simulation run.  Spans nest: the tracer
keeps an open-span stack, so a span opened inside another records its
parent and the export reconstructs the call tree.

Timing uses :func:`time.perf_counter` (monotonic, unaffected by wall
clock steps); each span additionally records attributes supplied at open
time (satellite counts, seeds, snapshot counts) so a trace line is
self-describing.  Span ids are sequential per tracer, which keeps JSONL
exports diff-able across runs — only the duration fields differ.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One finished (or still open) traced region.

    Attributes:
        span_id: Sequential id, unique per tracer.
        parent_id: Enclosing span's id (None at the root).
        name: Dotted span name, e.g. ``"routing.proactive.precompute"``.
        start_s: ``perf_counter`` timestamp at open.
        end_s: ``perf_counter`` timestamp at close (None while open).
        attrs: Caller-supplied attributes.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return float("nan")
        return self.end_s - self.start_s

    def as_row(self) -> Dict:
        return {
            "type": "span", "span_id": self.span_id,
            "parent_id": self.parent_id, "name": self.name,
            "duration_s": self.duration_s, "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans for one run.

    Single-threaded by design (the simulation stack is synchronous); the
    open-span stack is plain list state, no contextvars needed.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block."""
        opened = self.start_span(name, **attrs)
        try:
            yield opened
        finally:
            self.end_span(opened)

    def start_span(self, name: str, **attrs) -> Span:
        """Open a span explicitly (prefer the :meth:`span` manager)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, name=name,
                    start_s=time.perf_counter(), attrs=attrs)
        self._next_id += 1
        self._stack.append(span)
        self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close an open span (and anything opened inside and left open)."""
        span.end_s = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            if top.span_id == span.span_id:
                break
            if top.end_s is None:
                top.end_s = span.end_s

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def by_name(self) -> Dict[str, Dict]:
        """Aggregate closed spans: name -> {count, total_s, max_s}."""
        aggregated: Dict[str, Dict] = {}
        for span in self.spans:
            if span.end_s is None:
                continue
            row = aggregated.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += span.duration_s
            row["max_s"] = max(row["max_s"], span.duration_s)
        return aggregated

    def rows(self) -> List[Dict]:
        """Closed spans as export rows, in open order."""
        return [s.as_row() for s in self.spans if s.end_s is not None]
