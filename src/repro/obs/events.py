"""The structured event bus and the flight recorder.

Where the metrics registry aggregates (a counter tells you *how many*
handovers happened), the event log keeps the *timeline*: every discrete
network-state change — link up/down, handover, fault inject/recover,
circuit-breaker transition, route invalidation, retransmission, session
admit/drop — as one typed, timestamped record in emission order.

Determinism is the design constraint.  Events carry **simulated** time
only (never wall clock) and a monotone sequence number assigned at
emission, so two same-seed runs produce byte-identical event streams —
the property the export layer, the parallel sweep runner, and the CI
determinism diff all rely on.

Two retention surfaces share one log:

* the **flight recorder** — a bounded ring buffer of the last
  ``capacity`` events, always on, dumped to stderr when a CLI run dies
  (and available on demand via :meth:`EventLog.tail`);
* the full stream — every event since the run started, retained when
  ``retain_all`` is set (the default for CLI-installed recorders) and
  exported by :func:`repro.obs.export.write_events_jsonl`.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical event kinds.  Emit sites may mint new kinds freely (the log
#: is schemaless past these four fields), but everything in-repo uses
#: these so downstream tooling can group reliably.
LINK_UP = "link.up"
LINK_DOWN = "link.down"
HANDOVER = "handover"
FAULT_INJECT = "fault.inject"
FAULT_RECOVER = "fault.recover"
BREAKER_TRANSITION = "breaker.transition"
ROUTE_INVALIDATED = "route.invalidated"
RETRANSMISSION = "retransmission"
SESSION_ADMIT = "session.admit"
SESSION_DROP = "session.drop"
#: Bundle lifecycle (the disruption-tolerant data plane, repro.dtn):
#: creation at a sensor, hop-by-hop forwarding, terminal delivery, a
#: buffer-policy drop, and a TTL expiry.
BUNDLE_CREATE = "bundle.create"
BUNDLE_FORWARD = "bundle.forward"
BUNDLE_DELIVER = "bundle.deliver"
BUNDLE_DROP = "bundle.drop"
BUNDLE_EXPIRE = "bundle.expire"
#: Custody-transfer outcomes: the next hop acknowledged custody, or the
#: retry budget ran out and the sender re-queued the bundle.
CUSTODY_ACCEPT = "custody.accept"
CUSTODY_TIMEOUT = "custody.timeout"

KINDS: Tuple[str, ...] = (
    LINK_UP, LINK_DOWN, HANDOVER, FAULT_INJECT, FAULT_RECOVER,
    BREAKER_TRANSITION, ROUTE_INVALIDATED, RETRANSMISSION,
    SESSION_ADMIT, SESSION_DROP,
    BUNDLE_CREATE, BUNDLE_FORWARD, BUNDLE_DELIVER, BUNDLE_DROP,
    BUNDLE_EXPIRE, CUSTODY_ACCEPT, CUSTODY_TIMEOUT,
)

#: Default flight-recorder depth: enough to reconstruct the lead-up to a
#: crash without holding a long run's full history twice.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class Event:
    """One timeline record.

    Attributes:
        seq: Monotone emission index within the run (0-based).
        time_s: Simulated time of the state change.
        kind: Event type (see the module constants).
        subject: The element this happened to — a link key, satellite id,
            fault id, user id — used for "noisiest subject" rollups.
        attrs: Extra fields, sorted by key for stable serialization.
    """

    seq: int
    time_s: float
    kind: str
    subject: str = ""
    attrs: Tuple[Tuple[str, object], ...] = ()

    def as_row(self) -> Dict:
        """The event as a flat export record (``type: "event"``)."""
        return {
            "type": "event",
            "seq": self.seq,
            "t": self.time_s,
            "kind": self.kind,
            "subject": self.subject,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """Owns a run's event timeline: full stream plus flight-recorder ring.

    Args:
        capacity: Flight-recorder depth (last N events kept regardless of
            ``retain_all``).
        retain_all: Keep the complete stream for export.  Off, only the
            ring survives — the mode for long-lived services that stream
            events out as they happen instead of dumping at exit.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 retain_all: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retain_all = retain_all
        self._ring: "deque[Event]" = deque(maxlen=capacity)
        self._all: List[Event] = []
        self._seq = 0
        self._kind_counts: "_Counter[str]" = _Counter()

    def __len__(self) -> int:
        return self._seq

    @property
    def next_seq(self) -> int:
        """Sequence number the next emitted event will get."""
        return self._seq

    def emit(self, kind: str, time_s: float, subject: str = "",
             **attrs) -> Event:
        """Append one event; returns it."""
        event = Event(
            seq=self._seq,
            time_s=float(time_s),
            kind=kind,
            subject=subject,
            attrs=tuple(sorted(attrs.items())),
        )
        self._seq += 1
        self._kind_counts[kind] += 1
        self._ring.append(event)
        if self.retain_all:
            self._all.append(event)
        return event

    @property
    def events(self) -> List[Event]:
        """The retained stream (full when ``retain_all``, else the ring)."""
        if self.retain_all:
            return list(self._all)
        return list(self._ring)

    def tail(self, count: Optional[int] = None) -> List[Event]:
        """The flight recorder's last ``count`` events (all, by default)."""
        if count is None or count >= len(self._ring):
            return list(self._ring)
        if count <= 0:
            return []
        return list(self._ring)[-count:]

    def count_of(self, kind: str) -> int:
        """Total emitted of one kind (whole run, not just retained)."""
        return self._kind_counts[kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """Total emitted per kind (whole run, not just retained events)."""
        return {kind: self._kind_counts[kind]
                for kind in sorted(self._kind_counts)}

    def noisiest_subjects(self, top: int = 10,
                          kinds: Optional[Sequence[str]] = None,
                          ) -> List[Tuple[str, int]]:
        """Subjects with the most retained events, descending.

        Args:
            top: Row cap.
            kinds: Restrict the rollup to these kinds (None = all).
        """
        wanted = None if kinds is None else set(kinds)
        counts: "_Counter[str]" = _Counter()
        for event in (self._all if self.retain_all else self._ring):
            if not event.subject:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            counts[event.subject] += 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    def rows(self) -> List[Dict]:
        """Every retained event as an export record, in emission order."""
        return [event.as_row() for event in self.events]

    def replay_rows(self, rows: Iterable[Dict]) -> int:
        """Re-emit previously exported event rows into this log.

        The merge path for parallel sweeps: worker processes capture
        events in a local log, ship them back as rows, and the parent
        replays them in point order — re-sequencing so the merged stream
        is indistinguishable from a serial run.

        Returns:
            The number of events replayed.
        """
        replayed = 0
        for row in rows:
            if row.get("type") != "event":
                continue
            self.emit(
                str(row.get("kind", "?")),
                float(row.get("t", 0.0)),
                subject=str(row.get("subject", "")),
                **dict(row.get("attrs") or {}),
            )
            replayed += 1
        return replayed


def format_events(events: Sequence[Event]) -> str:
    """Human-readable one-line-per-event rendering (flight-recorder dump)."""
    if not events:
        return "(no events recorded)"
    lines = []
    for event in events:
        attrs = " ".join(
            f"{key}={value}" for key, value in event.attrs
        )
        subject = f" {event.subject}" if event.subject else ""
        lines.append(
            f"#{event.seq:<6} t={event.time_s:12.3f}  "
            f"{event.kind:<20}{subject}{('  ' + attrs) if attrs else ''}"
        )
    return "\n".join(lines)
