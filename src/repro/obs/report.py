"""Self-contained HTML timeline/health report.

``repro obs report run.jsonl --out run.html`` turns an exported event
stream (:func:`repro.obs.export.write_events_jsonl`, or a combined
trace) into a single HTML file with zero external dependencies: inline
CSS, server-side-rendered SVG — no JavaScript, no CDN fetches — so the
artifact archives cleanly in CI and opens anywhere.

Sections:

* run header (command, seed, config hash, totals);
* an SVG **timeline** of the event stream, one swim-lane per event kind,
  each mark carrying a hover tooltip with the event's subject and attrs;
* **health sparklines** over the sampled epochs (links up, route churn,
  active faults);
* the **lowest-availability links** table from the health plane;
* event counts by kind.

Rendering is deterministic: same records in, byte-identical HTML out.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Swim-lane mark colors per event kind (unknown kinds get the fallback).
_KIND_COLORS = {
    "link.up": "#2a9d3a",
    "link.down": "#d62728",
    "handover": "#1f77b4",
    "fault.inject": "#b01515",
    "fault.recover": "#62b56f",
    "breaker.transition": "#ff7f0e",
    "route.invalidated": "#9467bd",
    "retransmission": "#e8b417",
    "session.admit": "#17becf",
    "session.drop": "#8c564b",
}
_FALLBACK_COLOR = "#7f7f7f"

#: Marks drawn per lane before down-sampling (keeps the SVG bounded).
_MAX_MARKS_PER_LANE = 600

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 1080px; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: left; }
th { background: #f0f0f5; }
.meta { color: #555; font-size: 0.92em; }
.lane-label { font-size: 11px; fill: #333; }
.axis { stroke: #999; stroke-width: 1; }
.axis-label { font-size: 10px; fill: #666; }
.spark { stroke-width: 1.5; fill: none; }
.note { color: #777; font-size: 0.85em; }
"""


def _svg_timeline(events: Sequence[Dict], width: int = 1000) -> str:
    """The event swim-lane SVG (empty string when there are no events)."""
    if not events:
        return ""
    times = [float(row.get("t", 0.0)) for row in events]
    t_min, t_max = min(times), max(times)
    t_span = (t_max - t_min) or 1.0
    kinds = sorted({str(row.get("kind", "?")) for row in events})
    lane_h = 26
    left = 170
    top = 18
    height = top + lane_h * len(kinds) + 30
    plot_w = width - left - 20

    def x_of(t: float) -> float:
        return left + (t - t_min) / t_span * plot_w

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img" aria-label="event timeline">',
    ]
    lane_of = {kind: index for index, kind in enumerate(kinds)}
    for kind, lane in lane_of.items():
        y = top + lane * lane_h
        parts.append(
            f'<text class="lane-label" x="4" y="{y + lane_h - 9}">'
            f"{escape(kind)}</text>"
        )
        parts.append(
            f'<line class="axis" x1="{left}" y1="{y + lane_h - 5}" '
            f'x2="{width - 20}" y2="{y + lane_h - 5}" opacity="0.35"/>'
        )
    # Down-sample per lane so a million-event run still renders.
    per_lane: Dict[str, List[Dict]] = {kind: [] for kind in kinds}
    for row in events:
        per_lane[str(row.get("kind", "?"))].append(row)
    dropped = 0
    for kind, rows in per_lane.items():
        if len(rows) > _MAX_MARKS_PER_LANE:
            stride = len(rows) / _MAX_MARKS_PER_LANE
            kept = [rows[int(index * stride)]
                    for index in range(_MAX_MARKS_PER_LANE)]
            dropped += len(rows) - len(kept)
            rows = kept
        color = _KIND_COLORS.get(kind, _FALLBACK_COLOR)
        y = top + lane_of[kind] * lane_h + lane_h - 13
        for row in rows:
            cx = x_of(float(row.get("t", 0.0)))
            attrs = row.get("attrs") or {}
            tip = (
                f"#{row.get('seq', '?')} t={float(row.get('t', 0.0)):g}s "
                f"{kind} {row.get('subject', '')}"
            )
            if attrs:
                tip += " " + " ".join(
                    f"{key}={attrs[key]}" for key in sorted(attrs)
                )
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{y}" r="3.2" fill="{color}" '
                f'opacity="0.8"><title>{escape(tip)}</title></circle>'
            )
    axis_y = top + lane_h * len(kinds) + 8
    parts.append(
        f'<line class="axis" x1="{left}" y1="{axis_y}" '
        f'x2="{width - 20}" y2="{axis_y}"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t_min + frac * t_span
        parts.append(
            f'<text class="axis-label" x="{x_of(t):.1f}" y="{axis_y + 14}" '
            f'text-anchor="middle">{t:g}s</text>'
        )
    parts.append("</svg>")
    if dropped:
        parts.append(
            f'<p class="note">timeline down-sampled: {dropped} of '
            f"{len(events)} events not drawn</p>"
        )
    return "\n".join(parts)


def _svg_sparkline(times: Sequence[float], values: Sequence[float],
                   color: str, label: str, width: int = 1000,
                   height: int = 56) -> str:
    """One health series as an inline SVG polyline."""
    if not times:
        return ""
    t_min, t_max = min(times), max(times)
    t_span = (t_max - t_min) or 1.0
    v_min, v_max = min(values), max(values)
    v_span = (v_max - v_min) or 1.0
    left, right, pad = 170, 20, 8
    plot_w = width - left - right
    points = " ".join(
        f"{left + (t - t_min) / t_span * plot_w:.1f},"
        f"{height - pad - (v - v_min) / v_span * (height - 2 * pad):.1f}"
        for t, v in zip(times, values)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="{escape(label)}">'
        f'<text class="lane-label" x="4" y="{height // 2 + 4}">'
        f"{escape(label)}</text>"
        f'<polyline class="spark" stroke="{color}" points="{points}"/>'
        f'<text class="axis-label" x="{width - right}" y="{pad + 4}" '
        f'text-anchor="end">max {v_max:g}</text>'
        f'<text class="axis-label" x="{width - right}" y="{height - 2}" '
        f'text-anchor="end">min {v_min:g}</text>'
        f"</svg>"
    )


def render_report(records: Sequence[Dict], title: str = "repro run",
                  top: int = 15) -> str:
    """Render parsed JSONL records into the standalone HTML report."""
    by_type: Dict[str, List[Dict]] = {}
    for record in records:
        by_type.setdefault(str(record.get("type", "?")), []).append(record)
    events = by_type.get("event", [])
    manifest = (by_type.get("manifest") or [{}])[0]
    epochs = (by_type.get("health_epochs") or [{}])[0]
    links = (by_type.get("health_links") or [{}])[0]

    body: List[str] = [f"<h1>{escape(title)}</h1>"]

    meta_bits = []
    if manifest.get("command"):
        meta_bits.append(f"command <code>{escape(str(manifest['command']))}</code>")
    if manifest.get("seed") is not None:
        meta_bits.append(f"seed {escape(str(manifest['seed']))}")
    if manifest.get("config_hash"):
        meta_bits.append(f"config {escape(str(manifest['config_hash']))}")
    totals = manifest.get("totals") or {}
    for key in sorted(totals):
        meta_bits.append(f"{escape(key)} {totals[key]:g}")
    if meta_bits:
        body.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')

    body.append("<h2>Event timeline</h2>")
    if events:
        body.append(_svg_timeline(events))
    else:
        body.append('<p class="note">no events in this file</p>')

    epoch_times = [float(t) for t in epochs.get("t", [])]
    if epoch_times:
        body.append("<h2>Health plane</h2>")
        for column, color, label in (
            ("links_up", "#1f77b4", "links up"),
            ("route_churn", "#9467bd", "route churn"),
            ("faults_active", "#d62728", "active faults"),
        ):
            values = [float(v) for v in epochs.get(column, [])]
            if values:
                body.append(
                    _svg_sparkline(epoch_times, values, color, label)
                )
        ids = links.get("ids", [])
        present = links.get("present_epochs", [])
        if ids and epoch_times:
            ranked = sorted(zip(ids, present),
                            key=lambda item: (item[1], item[0]))
            body.append(
                f"<h2>Lowest-availability links ({len(ids)} tracked)</h2>"
            )
            body.append("<table><tr><th>link</th><th>availability</th>"
                        "<th>epochs up</th></tr>")
            for link_id, count in ranked[:top]:
                body.append(
                    f"<tr><td><code>{escape(str(link_id))}</code></td>"
                    f"<td>{int(count) / len(epoch_times):.1%}</td>"
                    f"<td>{int(count)}/{len(epoch_times)}</td></tr>"
                )
            body.append("</table>")

    if events:
        kind_counts: Dict[str, int] = {}
        for row in events:
            kind = str(row.get("kind", "?"))
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        body.append(f"<h2>Events by kind ({len(events)} total)</h2>")
        body.append("<table><tr><th>kind</th><th>count</th></tr>")
        for kind in sorted(kind_counts):
            body.append(f"<tr><td><code>{escape(kind)}</code></td>"
                        f"<td>{kind_counts[kind]}</td></tr>")
        body.append("</table>")

    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def write_report(records: Sequence[Dict], path: Union[str, Path],
                 title: str = "repro run", top: int = 15) -> int:
    """Render and atomically write the report; returns bytes written."""
    from repro.obs.export import atomic_write

    html = render_report(records, title=title, top=top)
    with atomic_write(path) as handle:
        handle.write(html)
    return len(html.encode())


def report_file(trace_path: Union[str, Path],
                out_path: Union[str, Path],
                title: Optional[str] = None, top: int = 15) -> int:
    """``repro obs report`` backend: JSONL in, HTML out."""
    from repro.obs.export import read_jsonl

    records = read_jsonl(trace_path)
    return write_report(records, out_path,
                        title=title or f"repro run — {trace_path}", top=top)
