"""repro.obs — unified tracing, metrics, and profiling.

One recorder object owns the three telemetry surfaces of a run:

* a :class:`~repro.obs.registry.MetricsRegistry` of labeled counters,
  gauges, and histograms;
* a :class:`~repro.obs.tracing.Tracer` of timed spans;
* a :class:`~repro.obs.profile.PhaseProfiler` of experiment stages.

The module-level **active recorder** defaults to a :class:`NullRecorder`
whose every operation is a no-op — instrumented hot paths pay one
module-function call and one attribute check when observability is off,
which keeps the default path within benchmark noise of uninstrumented
code (see ``benchmarks/test_perf_primitives.py``).

Usage, instrumented module side::

    from repro import obs

    rec = obs.active()
    if rec.enabled:
        rec.count("flowsim.rejected")
    with obs.span("routing.proactive.precompute", snapshots=n):
        ...

Usage, driver side::

    recorder = obs.Recorder()
    with obs.use(recorder):
        run_experiment()
    obs_export.write_trace_jsonl(recorder, "out.jsonl")

The CLI wires this for every subcommand via ``--trace`` /
``--metrics-out`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.obs.events import DEFAULT_CAPACITY, Event, EventLog, format_events
from repro.obs.events import ROUTE_INVALIDATED as _ROUTE_INVALIDATED
from repro.obs.health import HealthPlane
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span", "Tracer",
    "PhaseProfiler", "Recorder", "NullRecorder", "ObsConfig",
    "Event", "EventLog", "HealthPlane", "format_events",
    "DEFAULT_SIZE_BUCKETS", "DEFAULT_TIME_BUCKETS_S",
    "active", "install", "reset", "use", "span", "phase", "count",
    "observe", "gauge", "event", "sample_health",
]


class ObsConfig:
    """Recorder options.

    Attributes:
        time_events: Opt-in per-event wall-clock timing in the simulation
            engine.  Off by default even when a recorder is active —
            calling ``perf_counter`` twice per event is the one
            instrument whose cost is visible at engine scale.
        queue_sample_interval: The engine samples queue depth every Nth
            processed event (1 = every event).
        flight_recorder_size: Ring-buffer depth of the event-timeline
            flight recorder (the last N events dumped on a crash).
        retain_events: Keep the complete event stream for export; off,
            only the flight-recorder ring survives.
    """

    def __init__(self, time_events: bool = False,
                 queue_sample_interval: int = 64,
                 flight_recorder_size: int = DEFAULT_CAPACITY,
                 retain_events: bool = True):
        if queue_sample_interval < 1:
            raise ValueError(
                f"queue_sample_interval must be >= 1, got "
                f"{queue_sample_interval}"
            )
        if flight_recorder_size < 1:
            raise ValueError(
                f"flight_recorder_size must be >= 1, got "
                f"{flight_recorder_size}"
            )
        self.time_events = time_events
        self.queue_sample_interval = queue_sample_interval
        self.flight_recorder_size = flight_recorder_size
        self.retain_events = retain_events


class Recorder:
    """A live telemetry sink: metrics + tracer + profiler + timeline."""

    enabled = True

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profiler = PhaseProfiler()
        self.events = EventLog(capacity=self.config.flight_recorder_size,
                               retain_all=self.config.retain_events)
        self.health = HealthPlane()
        self._churn_seen = 0

    # -- convenience forwarding (the instrumented-code surface) --------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def phase(self, name: str):
        return self.profiler.phase(name)

    def count(self, name: str, amount: float = 1.0, label: str = "") -> None:
        self.metrics.counter(name, label).inc(amount)

    def gauge(self, name: str, value: float, label: str = "") -> None:
        self.metrics.gauge(name, label).set(value)

    def observe(self, name: str, value: float, label: str = "",
                buckets: Optional[Sequence[float]] = None) -> None:
        self.metrics.histogram(name, label, buckets=buckets).observe(value)

    def event(self, kind: str, time_s: float, subject: str = "",
              **attrs) -> None:
        """Append one timeline event (see :mod:`repro.obs.events`)."""
        self.events.emit(kind, time_s, subject=subject, **attrs)

    def sample_health(self, time_s: float, graph,
                      utilization: Optional[Dict[Tuple[str, str],
                                                 float]] = None,
                      faults_active: int = 0, reset: bool = False) -> None:
        """Record one health-plane epoch from a snapshot graph.

        Route churn is derived from the ``route.invalidated`` events
        emitted since the previous sample, and link-set changes since the
        previous sample become ``link.up`` / ``link.down`` events
        (suppressed on the baseline sample of a series — pass
        ``reset=True`` at each scenario start).
        """
        invalidations = self.events.count_of(_ROUTE_INVALIDATED)
        churn = invalidations - self._churn_seen
        self._churn_seen = invalidations
        appeared, vanished = self.health.sample(
            time_s, graph, utilization=utilization, route_churn=churn,
            faults_active=faults_active, reset=reset,
        )
        for link_id in appeared:
            self.events.emit("link.up", time_s, subject=link_id)
        for link_id in vanished:
            self.events.emit("link.down", time_s, subject=link_id)


@contextmanager
def _null_context() -> Iterator[None]:
    yield None


class NullRecorder:
    """The default sink: every operation is a no-op.

    ``enabled`` is False, so hot paths that guard their instrumentation
    with ``if rec.enabled:`` skip even argument construction; the
    context-manager surface still works so un-guarded ``with obs.span``
    blocks run unchanged.
    """

    enabled = False

    def span(self, name: str, **attrs):
        return _null_context()

    def phase(self, name: str):
        return _null_context()

    def count(self, name: str, amount: float = 1.0, label: str = "") -> None:
        pass

    def gauge(self, name: str, value: float, label: str = "") -> None:
        pass

    def observe(self, name: str, value: float, label: str = "",
                buckets: Optional[Sequence[float]] = None) -> None:
        pass

    def event(self, kind: str, time_s: float, subject: str = "",
              **attrs) -> None:
        pass

    def sample_health(self, time_s: float, graph,
                      utilization: Optional[Dict[Tuple[str, str],
                                                 float]] = None,
                      faults_active: int = 0, reset: bool = False) -> None:
        pass


NULL_RECORDER = NullRecorder()

_active: "Recorder | NullRecorder" = NULL_RECORDER


def active() -> "Recorder | NullRecorder":
    """The currently installed recorder (the NullRecorder by default)."""
    return _active


def install(recorder: "Recorder | NullRecorder") -> None:
    """Make ``recorder`` the process-wide active recorder."""
    global _active
    _active = recorder


def reset() -> None:
    """Restore the no-op default."""
    install(NULL_RECORDER)


@contextmanager
def use(recorder: "Recorder | NullRecorder") -> Iterator["Recorder | NullRecorder"]:
    """Scoped install: active inside the block, previous sink restored after."""
    previous = _active
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


# -- module-level forwarding to the active recorder --------------------
# Non-hot-path call sites use these directly; hot loops should fetch
# ``obs.active()`` once and guard on ``.enabled``.

def span(name: str, **attrs):
    """Open a span on the active recorder (no-op context when disabled)."""
    return _active.span(name, **attrs)


def phase(name: str):
    """Charge a phase on the active recorder (no-op context when disabled)."""
    return _active.phase(name)


def count(name: str, amount: float = 1.0, label: str = "") -> None:
    _active.count(name, amount, label)


def gauge(name: str, value: float, label: str = "") -> None:
    _active.gauge(name, value, label)


def observe(name: str, value: float, label: str = "",
            buckets: Optional[Sequence[float]] = None) -> None:
    _active.observe(name, value, label, buckets)


def event(kind: str, time_s: float, subject: str = "", **attrs) -> None:
    """Append a timeline event on the active recorder."""
    _active.event(kind, time_s, subject, **attrs)


def sample_health(time_s: float, graph,
                  utilization: Optional[Dict[Tuple[str, str], float]] = None,
                  faults_active: int = 0, reset: bool = False) -> None:
    """Record a health-plane epoch on the active recorder."""
    _active.sample_health(time_s, graph, utilization=utilization,
                          faults_active=faults_active, reset=reset)
