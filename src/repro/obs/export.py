"""Trace/metric exporters and the run manifest.

The on-disk format is JSON Lines: one self-describing record per line,
discriminated by a ``type`` field —

* ``manifest`` — run identity: config hash, seed, package versions;
* ``counter`` / ``gauge`` / ``histogram`` — registry instruments;
* ``phase`` — profiler aggregates;
* ``span`` — individual trace spans (open order, parent links).

Records are emitted with sorted keys and metric rows in sorted
``(type, name, label)`` order, so two same-seed runs differ only in the
wall-clock duration fields — the metric *values* are byte-identical.
A flat CSV of the metric instruments is available for spreadsheet use.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import platform
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs import Recorder


@contextmanager
def atomic_write(path: Union[str, Path], newline: Optional[str] = None):
    """Open ``path`` for writing via a temp file + atomic rename.

    The destination is only ever replaced by a fully written file: a
    crash (or any exception) mid-write leaves the previous contents
    intact and removes the temp file.  The temp file lives next to the
    destination so the final ``os.replace`` stays on one filesystem.
    """
    target = Path(path)
    temp = target.with_name(target.name + ".tmp")
    handle = open(temp, "w", newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            temp.unlink()
        except OSError:
            pass
        raise
    handle.close()
    os.replace(temp, target)


def config_hash(config: Dict) -> str:
    """Stable short hash of a run configuration dict.

    Non-JSON-serializable values are stringified, so argparse namespaces
    converted with ``vars()`` hash cleanly.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_manifest(config: Optional[Dict] = None,
                 seed: Optional[int] = None,
                 command: Optional[str] = None) -> Dict:
    """The run-identity record written first in every trace file."""
    import networkx
    import numpy

    from repro import __version__

    config = dict(config or {})
    return {
        "type": "manifest",
        "command": command or "",
        "config": {k: config[k] for k in sorted(config, key=str)},
        "config_hash": config_hash(config),
        "seed": seed,
        "versions": {
            "python": platform.python_version(),
            "repro": __version__,
            "numpy": numpy.__version__,
            "networkx": networkx.__version__,
        },
    }


def trace_rows(recorder: Recorder, manifest: Optional[Dict] = None) -> List[Dict]:
    """Every export record of one run, manifest first."""
    rows: List[Dict] = [manifest or run_manifest()]
    rows += recorder.metrics.rows()
    rows += recorder.profiler.rows()
    rows += recorder.tracer.rows()
    return rows


def write_trace_jsonl(recorder: Recorder, path: Union[str, Path],
                      manifest: Optional[Dict] = None) -> int:
    """Write the full trace (manifest, metrics, phases, spans) as JSONL.

    Returns:
        Number of records written.
    """
    rows = trace_rows(recorder, manifest)
    with atomic_write(path) as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=str))
            handle.write("\n")
    return len(rows)


def write_metrics_csv(recorder: Recorder, path: Union[str, Path]) -> int:
    """Write the metric instruments as a flat CSV.

    Counters/gauges carry ``value``; histograms carry count/mean and the
    reservoir percentiles.  Bucket vectors stay in the JSONL export.

    Returns:
        Number of data rows written.
    """
    columns = ["type", "name", "label", "value", "count", "total", "mean",
               "min", "max", "p50", "p95", "p99", "calls", "total_s"]
    rows = recorder.metrics.rows() + recorder.profiler.rows()
    with atomic_write(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Parse a trace file back into records.

    Raises:
        ValueError: On a line that is not a JSON object.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            records.append(record)
    return records


def summarize_records(records: Sequence[Dict], top: int = 10) -> str:
    """Human-readable summary of a trace: manifest, top spans, counters.

    Args:
        records: Parsed JSONL records (any mix of types).
        top: Row cap per section.
    """
    by_type: Dict[str, List[Dict]] = {}
    for record in records:
        by_type.setdefault(str(record.get("type", "?")), []).append(record)
    lines: List[str] = []

    for manifest in by_type.get("manifest", [])[:1]:
        versions = manifest.get("versions", {})
        lines.append(
            f"run: command={manifest.get('command') or '-'} "
            f"config_hash={manifest.get('config_hash', '-')} "
            f"seed={manifest.get('seed')}"
        )
        lines.append(
            "versions: " + " ".join(
                f"{k}={versions[k]}" for k in sorted(versions)
            )
        )

    spans = by_type.get("span", [])
    if spans:
        aggregated: Dict[str, Dict[str, float]] = {}
        for row in spans:
            agg = aggregated.setdefault(
                str(row["name"]), {"count": 0, "total_s": 0.0}
            )
            agg["count"] += 1
            agg["total_s"] += float(row.get("duration_s", 0.0))
        ranked = sorted(aggregated.items(),
                        key=lambda item: (-item[1]["total_s"], item[0]))
        lines.append("")
        lines.append(f"top spans ({len(spans)} total):")
        for name, agg in ranked[:top]:
            lines.append(
                f"  {name:<44} x{int(agg['count']):<6} "
                f"{agg['total_s']:.4f} s"
            )

    phases = by_type.get("phase", [])
    if phases:
        lines.append("")
        lines.append("phases:")
        for row in phases[:top]:
            lines.append(
                f"  {row['name']:<44} x{int(row['calls']):<6} "
                f"{float(row['total_s']):.4f} s"
            )

    counters = by_type.get("counter", [])
    if counters:
        ranked = sorted(counters,
                        key=lambda r: (-float(r["value"]), r["name"],
                                       r.get("label", "")))
        lines.append("")
        lines.append(f"top counters ({len(counters)} total):")
        for row in ranked[:top]:
            label = f"{{{row['label']}}}" if row.get("label") else ""
            lines.append(f"  {row['name']}{label:<24} "
                         f"{float(row['value']):g}")

    histograms = by_type.get("histogram", [])
    if histograms:
        lines.append("")
        lines.append(f"histograms ({len(histograms)} total):")
        for row in histograms[:top]:
            label = f"{{{row['label']}}}" if row.get("label") else ""
            lines.append(
                f"  {row['name']}{label} n={row['count']} "
                f"mean={float(row['mean']):.4g} p50={float(row['p50']):.4g} "
                f"p95={float(row['p95']):.4g} max={float(row['max']):.4g}"
            )

    if not lines:
        return "empty trace"
    return "\n".join(lines)


def summarize_file(path: Union[str, Path], top: int = 10) -> str:
    """Summarize a trace file (the ``repro obs summarize`` backend)."""
    return summarize_records(read_jsonl(path), top=top)
