"""Trace/metric/event exporters and the run manifest.

The on-disk format is JSON Lines: one self-describing record per line,
discriminated by a ``type`` field —

* ``manifest`` — run identity: config hash, seed, package versions, and
  run totals (event count, health epochs, snapshot-cache hits/misses);
* ``counter`` / ``gauge`` / ``histogram`` — registry instruments;
* ``phase`` — profiler aggregates;
* ``span`` — individual trace spans (open order, parent links);
* ``event`` — timeline events (:mod:`repro.obs.events`);
* ``health_epochs`` / ``health_links`` / ``health_nodes`` — the columnar
  health plane (:mod:`repro.obs.health`).

Records are emitted with sorted keys and metric rows in sorted
``(type, name, label)`` order, so two same-seed runs differ only in the
wall-clock duration fields — the metric *values* are byte-identical, and
the event stream (which carries simulated time only) is byte-identical
wholesale.  A flat CSV of the metric instruments and a Prometheus text
exposition are available for spreadsheets and scrapers.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import platform
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs import Recorder


@contextmanager
def atomic_write(path: Union[str, Path], newline: Optional[str] = None):
    """Open ``path`` for writing via a temp file + atomic rename.

    The destination is only ever replaced by a fully written file: a
    crash (or any exception) mid-write leaves the previous contents
    intact and removes the temp file.  The temp file lives next to the
    destination so the final ``os.replace`` stays on one filesystem.
    """
    target = Path(path)
    temp = target.with_name(target.name + ".tmp")
    handle = open(temp, "w", newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            temp.unlink()
        except OSError:
            pass
        raise
    handle.close()
    os.replace(temp, target)


def config_hash(config: Dict) -> str:
    """Stable short hash of a run configuration dict.

    Non-JSON-serializable values are stringified, so argparse namespaces
    converted with ``vars()`` hash cleanly.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_manifest(config: Optional[Dict] = None,
                 seed: Optional[int] = None,
                 command: Optional[str] = None) -> Dict:
    """The run-identity record written first in every trace file."""
    import networkx
    import numpy

    from repro import __version__

    config = dict(config or {})
    return {
        "type": "manifest",
        "command": command or "",
        "config": {k: config[k] for k in sorted(config, key=str)},
        "config_hash": config_hash(config),
        "seed": seed,
        "versions": {
            "python": platform.python_version(),
            "repro": __version__,
            "numpy": numpy.__version__,
            "networkx": networkx.__version__,
        },
    }


def manifest_totals(recorder: Recorder) -> Dict:
    """Run totals folded into the manifest at export time.

    Reads counters without creating them (a totals pass must not change
    the instrument set it is summarizing).
    """
    metrics = recorder.metrics
    return {
        "events": len(recorder.events),
        "health_epochs": len(recorder.health),
        "snapshot_cache_hits":
            metrics.counter_value("network.snapshot_cache.hit") or 0.0,
        "snapshot_cache_misses":
            metrics.counter_value("network.snapshot_cache.miss") or 0.0,
    }


def _with_totals(recorder: Recorder, manifest: Optional[Dict]) -> Dict:
    manifest = dict(manifest or run_manifest())
    manifest["totals"] = manifest_totals(recorder)
    return manifest


def trace_rows(recorder: Recorder, manifest: Optional[Dict] = None) -> List[Dict]:
    """Every export record of one run, manifest first."""
    rows: List[Dict] = [_with_totals(recorder, manifest)]
    rows += recorder.metrics.rows()
    rows += recorder.profiler.rows()
    rows += recorder.tracer.rows()
    return rows


def _write_jsonl(rows: List[Dict], path: Union[str, Path]) -> int:
    with atomic_write(path) as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=str))
            handle.write("\n")
    return len(rows)


def write_trace_jsonl(recorder: Recorder, path: Union[str, Path],
                      manifest: Optional[Dict] = None) -> int:
    """Write the full trace (manifest, metrics, phases, spans) as JSONL.

    Returns:
        Number of records written.
    """
    return _write_jsonl(trace_rows(recorder, manifest), path)


def event_rows(recorder: Recorder, manifest: Optional[Dict] = None) -> List[Dict]:
    """The event-stream export: manifest, health plane, then events.

    Every field is derived from seeded simulation state (event times are
    simulated, ordering is emission order), so same-seed runs produce
    byte-identical streams.
    """
    rows: List[Dict] = [_with_totals(recorder, manifest)]
    rows += recorder.health.rows()
    rows += recorder.events.rows()
    return rows


def write_events_jsonl(recorder: Recorder, path: Union[str, Path],
                       manifest: Optional[Dict] = None) -> int:
    """Write the event stream + health plane as JSONL (atomic).

    Returns:
        Number of records written.
    """
    return _write_jsonl(event_rows(recorder, manifest), path)


def write_metrics_csv(recorder: Recorder, path: Union[str, Path]) -> int:
    """Write the metric instruments as a flat CSV.

    Counters/gauges carry ``value``; histograms carry count/mean and the
    reservoir percentiles.  Bucket vectors stay in the JSONL export.

    Returns:
        Number of data rows written.
    """
    columns = ["type", "name", "label", "value", "count", "total", "mean",
               "min", "max", "p50", "p95", "p99", "calls", "total_s"]
    rows = recorder.metrics.rows() + recorder.profiler.rows()
    with atomic_write(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def _prom_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a dotted metric name into Prometheus form."""
    flat = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{namespace}_{flat}" if namespace else flat


def _prom_labels(label: str) -> str:
    if not label:
        return ""
    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
    return f'{{label="{escaped}"}}'


def prometheus_text(recorder: Recorder, namespace: str = "repro") -> str:
    """The metric registry as Prometheus text exposition format.

    Counters export as ``*_total``, gauges as-is, histograms as the
    conventional ``*_bucket{le=...}`` / ``*_sum`` / ``*_count`` series.
    Output order is the registry's sorted row order, so same-seed runs
    produce identical expositions.
    """
    lines: List[str] = []
    typed: set = set()

    def header(prom: str, kind: str) -> None:
        if prom not in typed:
            typed.add(prom)
            lines.append(f"# TYPE {prom} {kind}")

    for row in recorder.metrics.rows():
        kind = row["type"]
        labels = _prom_labels(row.get("label", ""))
        if kind == "counter":
            prom = _prom_name(row["name"], namespace) + "_total"
            header(prom, "counter")
            lines.append(f"{prom}{labels} {row['value']:g}")
        elif kind == "gauge":
            prom = _prom_name(row["name"], namespace)
            header(prom, "gauge")
            lines.append(f"{prom}{labels} {row['value']:g}")
        elif kind == "histogram":
            prom = _prom_name(row["name"], namespace)
            header(prom, "histogram")
            label = row.get("label", "")
            cumulative = 0
            for bound, count in zip(row["bounds"], row["bucket_counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket{_prom_bucket(label, bound)} {cumulative}"
                )
            lines.append(
                f"{prom}_bucket{_prom_bucket(label, 'inf')} {row['count']}"
            )
            lines.append(f"{prom}_sum{labels} {row['total']:g}")
            lines.append(f"{prom}_count{labels} {row['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_bucket(label: str, bound) -> str:
    le = "+Inf" if bound == "inf" else f"{float(bound):g}"
    if label:
        escaped = label.replace("\\", "\\\\").replace('"', '\\"')
        return f'{{label="{escaped}",le="{le}"}}'
    return f'{{le="{le}"}}'


def write_prometheus_text(recorder: Recorder, path: Union[str, Path],
                          namespace: str = "repro") -> int:
    """Write the Prometheus exposition atomically; returns line count."""
    text = prometheus_text(recorder, namespace)
    with atomic_write(path) as handle:
        handle.write(text)
    return text.count("\n")


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Parse a trace file back into records.

    Raises:
        ValueError: On a line that is not a JSON object.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            records.append(record)
    return records


def summarize_records(records: Sequence[Dict], top: int = 10) -> str:
    """Human-readable summary of a trace: manifest, top spans, counters.

    Args:
        records: Parsed JSONL records (any mix of types).
        top: Row cap per section.
    """
    by_type: Dict[str, List[Dict]] = {}
    for record in records:
        by_type.setdefault(str(record.get("type", "?")), []).append(record)
    lines: List[str] = []

    for manifest in by_type.get("manifest", [])[:1]:
        versions = manifest.get("versions", {})
        lines.append(
            f"run: command={manifest.get('command') or '-'} "
            f"config_hash={manifest.get('config_hash', '-')} "
            f"seed={manifest.get('seed')}"
        )
        lines.append(
            "versions: " + " ".join(
                f"{k}={versions[k]}" for k in sorted(versions)
            )
        )
        totals = manifest.get("totals")
        if totals:
            lines.append(
                "totals: " + " ".join(
                    f"{k}={totals[k]:g}" for k in sorted(totals)
                )
            )

    spans = by_type.get("span", [])
    if spans:
        aggregated: Dict[str, Dict[str, float]] = {}
        for row in spans:
            agg = aggregated.setdefault(
                str(row["name"]), {"count": 0, "total_s": 0.0}
            )
            agg["count"] += 1
            agg["total_s"] += float(row.get("duration_s", 0.0))
        ranked = sorted(aggregated.items(),
                        key=lambda item: (-item[1]["total_s"], item[0]))
        lines.append("")
        lines.append(f"top spans ({len(spans)} total):")
        for name, agg in ranked[:top]:
            lines.append(
                f"  {name:<44} x{int(agg['count']):<6} "
                f"{agg['total_s']:.4f} s"
            )

    phases = by_type.get("phase", [])
    if phases:
        lines.append("")
        lines.append("phases:")
        for row in phases[:top]:
            lines.append(
                f"  {row['name']:<44} x{int(row['calls']):<6} "
                f"{float(row['total_s']):.4f} s"
            )

    counters = by_type.get("counter", [])
    if counters:
        ranked = sorted(counters,
                        key=lambda r: (-float(r["value"]), r["name"],
                                       r.get("label", "")))
        lines.append("")
        lines.append(f"top counters ({len(counters)} total):")
        for row in ranked[:top]:
            label = f"{{{row['label']}}}" if row.get("label") else ""
            lines.append(f"  {row['name']}{label:<24} "
                         f"{float(row['value']):g}")

    events = by_type.get("event", [])
    if events:
        kind_counts: Dict[str, int] = {}
        subject_counts: Dict[str, int] = {}
        for row in events:
            kind_counts[str(row.get("kind", "?"))] = (
                kind_counts.get(str(row.get("kind", "?")), 0) + 1
            )
            subject = str(row.get("subject", ""))
            if subject:
                subject_counts[subject] = subject_counts.get(subject, 0) + 1
        lines.append("")
        lines.append(f"events ({len(events)} total):")
        for kind in sorted(kind_counts):
            lines.append(f"  {kind:<24} {kind_counts[kind]}")
        if subject_counts:
            noisiest = sorted(subject_counts.items(),
                              key=lambda item: (-item[1], item[0]))
            lines.append("")
            lines.append("noisiest subjects:")
            for subject, count in noisiest[:top]:
                lines.append(f"  {subject:<44} {count}")

    for row in by_type.get("health_epochs", [])[:1]:
        times = row.get("t", [])
        if not times:
            continue
        links_up = row.get("links_up", [])
        churn = row.get("route_churn", [])
        lines.append("")
        lines.append(
            f"health: {len(times)} epochs over "
            f"t=[{times[0]:g}, {times[-1]:g}] s, "
            f"links_up min={min(links_up)} max={max(links_up)}, "
            f"route_churn total={sum(churn):g}"
        )

    for row in by_type.get("health_links", [])[:1]:
        ids = row.get("ids", [])
        present = row.get("present_epochs", [])
        epochs = max(
            (len(e.get("t", [])) for e in by_type.get("health_epochs", [])),
            default=0,
        )
        if not ids or not epochs:
            continue
        flappiest = sorted(
            zip(ids, present), key=lambda item: (item[1], item[0])
        )
        lines.append("")
        lines.append(f"lowest-availability links ({len(ids)} tracked):")
        for link_id, count in flappiest[:top]:
            lines.append(
                f"  {link_id:<44} {count / epochs:.1%} "
                f"({count}/{epochs} epochs)"
            )

    histograms = by_type.get("histogram", [])
    if histograms:
        lines.append("")
        lines.append(f"histograms ({len(histograms)} total):")
        for row in histograms[:top]:
            label = f"{{{row['label']}}}" if row.get("label") else ""
            lines.append(
                f"  {row['name']}{label} n={row['count']} "
                f"mean={float(row['mean']):.4g} p50={float(row['p50']):.4g} "
                f"p95={float(row['p95']):.4g} max={float(row['max']):.4g}"
            )

    if not lines:
        return "empty trace"
    return "\n".join(lines)


def summarize_file(path: Union[str, Path], top: int = 10) -> str:
    """Summarize a trace file (the ``repro obs summarize`` backend)."""
    return summarize_records(read_jsonl(path), top=top)
