"""Labeled metric instruments and their registry.

Three instrument kinds cover everything the simulation stack needs to
report:

* :class:`Counter` — monotonically increasing totals (events processed,
  flows rejected, control messages).
* :class:`Gauge` — last-written values with min/max tracking (queue
  depth, cache size).
* :class:`Histogram` — distributions, recorded twice: into fixed buckets
  (cheap, mergeable) and into a bounded reservoir for percentile queries.

Every instrument is keyed by ``(name, label)`` so one metric name can
fan out across labels (per-event-label counts, per-scheme handover
interruptions) without pre-declaring the label set.

Determinism: reservoir down-sampling uses a private :class:`random.Random`
seeded from the instrument's key, so two runs that observe the same value
sequence report identical percentiles — a requirement for telemetry that
sits next to seeded experiment results.
"""

from __future__ import annotations

import bisect
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets for durations in seconds (1 µs .. 100 s).
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
) + (100.0,)

#: Default buckets for dimensionless sizes (queue depths, hop counts).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0,
    2_500.0, 5_000.0, 10_000.0, 100_000.0,
)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    label: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0.0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def as_row(self) -> Dict:
        return {"type": "counter", "name": self.name, "label": self.label,
                "value": self.value}


@dataclass
class Gauge:
    """A last-value instrument with min/max envelope."""

    name: str
    label: str = ""
    value: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.minimum = min(self.minimum, self.value)
        self.maximum = max(self.maximum, self.value)
        self.updates += 1

    def as_row(self) -> Dict:
        return {
            "type": "gauge", "name": self.name, "label": self.label,
            "value": self.value,
            "min": self.minimum if self.updates else 0.0,
            "max": self.maximum if self.updates else 0.0,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket histogram with a deterministic percentile reservoir.

    Args:
        name: Metric name.
        label: Instrument label.
        buckets: Ascending bucket upper bounds; an implicit +inf bucket
            catches overflow.
        reservoir_size: Cap on retained samples for percentile queries;
            beyond it, Vitter's Algorithm R down-samples uniformly with a
            key-seeded RNG (deterministic per observation sequence).
    """

    def __init__(self, name: str, label: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 reservoir_size: int = 1024):
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir size must be >= 1, got {reservoir_size}"
            )
        bounds = tuple(buckets) if buckets else DEFAULT_TIME_BUCKETS_S
        if any(b >= a for a, b in zip(bounds[1:], bounds[:-1])):
            raise ValueError("histogram buckets must be strictly ascending")
        self.name = name
        self.label = label
        self.bounds: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(zlib.crc32(f"{name}|{label}".encode()))

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Reservoir percentile ``q`` in [0, 100]; NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        rank = q / 100.0 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def as_row(self) -> Dict:
        empty = self.count == 0
        return {
            "type": "histogram", "name": self.name, "label": self.label,
            "count": self.count, "total": self.total,
            "min": 0.0 if empty else self.minimum,
            "max": 0.0 if empty else self.maximum,
            "mean": 0.0 if empty else self.mean,
            "p50": self.percentile(50.0) if not empty else 0.0,
            "p95": self.percentile(95.0) if not empty else 0.0,
            "p99": self.percentile(99.0) if not empty else 0.0,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Owns every instrument of one run, keyed by ``(name, label)``.

    Lookups create on first use, so instrumented code never declares
    metrics up front; repeated lookups return the same instrument.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    def counter(self, name: str, label: str = "") -> Counter:
        key = (name, label)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, label)
        return instrument

    def gauge(self, name: str, label: str = "") -> Gauge:
        key = (name, label)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, label)
        return instrument

    def histogram(self, name: str, label: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        key = (name, label)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, label, buckets=buckets
            )
        return instrument

    def counter_value(self, name: str, label: str = "") -> Optional[float]:
        """The value of an existing counter, or None — never creates.

        The read path for summaries (e.g. folding cache hit/miss totals
        into the run manifest) that must not change the export's
        instrument set by looking.
        """
        instrument = self._counters.get((name, label))
        return None if instrument is None else instrument.value

    def counter_total(self, name: str) -> float:
        """Sum of an existing counter across all labels (0.0 if absent)."""
        return sum(
            instrument.value
            for (counter_name, _), instrument in self._counters.items()
            if counter_name == name
        )

    @property
    def instrument_count(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def rows(self) -> List[Dict]:
        """Every instrument as a plain row, sorted by (type, name, label).

        Sorted output is what makes same-seed runs byte-identical on
        export regardless of instrument creation order.
        """
        rows = (
            [c.as_row() for c in self._counters.values()]
            + [g.as_row() for g in self._gauges.values()]
            + [h.as_row() for h in self._histograms.values()]
        )
        rows.sort(key=lambda r: (r["type"], r["name"], r["label"]))
        return rows
