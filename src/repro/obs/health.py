"""The per-link / per-node health plane.

Samples the network's state once per epoch into compact columnar arrays
(:mod:`array` typecodes, not Python object lists): per-epoch aggregates
(links up, nodes up, route churn, active faults), per-link utilization
samples, and per-node ISL-count samples.  Link and node ids are interned
to integer indices so a long run stores each id string once.

The plane also diffs consecutive samples: :meth:`HealthPlane.sample`
returns the link ids that appeared and vanished since the previous
sample, which the recorder turns into ``link.up`` / ``link.down``
timeline events.  A sample taken with ``reset=True`` starts a fresh
series — the first epoch of a scenario establishes a baseline instead of
reporting every link as newly up (and keeps serial sweeps, where one
plane spans many scenarios, byte-identical to parallel sweeps, where
each worker starts fresh).

Export is columnar too: :meth:`HealthPlane.rows` yields three
self-describing records (``health_epochs``, ``health_links``,
``health_nodes``) whose fields are parallel arrays, and
:meth:`HealthPlane.replay_rows` merges such records back — the parallel
sweep runner ships worker planes to the parent this way.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple


def link_key(node_a: str, node_b: str) -> str:
    """Canonical order-independent id for an undirected link."""
    if node_b < node_a:
        node_a, node_b = node_b, node_a
    return f"{node_a}--{node_b}"


class HealthPlane:
    """Columnar per-epoch network health samples."""

    def __init__(self):
        # Per-epoch aggregates (parallel arrays, one entry per sample).
        self.epoch_t = array("d")
        self.links_up = array("l")
        self.nodes_up = array("l")
        self.route_churn = array("l")
        self.faults_active = array("l")
        # Per-link utilization samples: (epoch idx, link idx, utilization).
        self._link_epoch = array("l")
        self._link_index = array("l")
        self._link_util = array("d")
        # Per-node ISL-count samples: (epoch idx, node idx, isl count).
        self._node_epoch = array("l")
        self._node_index = array("l")
        self._node_isls = array("l")
        # Id interning and presence bookkeeping.
        self._link_ids: List[str] = []
        self._link_slot: Dict[str, int] = {}
        self._link_present = array("l")  # epochs each link was up
        self._node_ids: List[str] = []
        self._node_slot: Dict[str, int] = {}
        self._previous_links: Optional[frozenset] = None

    def __len__(self) -> int:
        """Number of epochs sampled."""
        return len(self.epoch_t)

    def _link(self, link_id: str) -> int:
        slot = self._link_slot.get(link_id)
        if slot is None:
            slot = len(self._link_ids)
            self._link_slot[link_id] = slot
            self._link_ids.append(link_id)
            self._link_present.append(0)
        return slot

    def _node(self, node_id: str) -> int:
        slot = self._node_slot.get(node_id)
        if slot is None:
            slot = len(self._node_ids)
            self._node_slot[node_id] = slot
            self._node_ids.append(node_id)
        return slot

    def sample(self, time_s: float, graph,
               utilization: Optional[Dict[Tuple[str, str], float]] = None,
               route_churn: int = 0, faults_active: int = 0,
               reset: bool = False) -> Tuple[List[str], List[str]]:
        """Record one epoch from a snapshot graph.

        Args:
            time_s: Simulated sample time.
            graph: A ``networkx.Graph`` snapshot (nodes carry ``kind``).
            utilization: Optional ``(u, v) -> load fraction`` for links
                with known utilization (unlisted links sample as 0 and
                are omitted from the per-link columns).
            route_churn: Routes invalidated since the previous sample.
            faults_active: Faults in effect at this epoch.
            reset: Start a fresh diff series (no up/down reported).

        Returns:
            ``(appeared, vanished)`` — sorted link ids that changed state
            since the previous sample; both empty on a baseline sample.
        """
        epoch = len(self.epoch_t)
        links = frozenset(
            link_key(u, v) for u, v in graph.edges()
        )
        self.epoch_t.append(float(time_s))
        self.links_up.append(len(links))
        self.nodes_up.append(graph.number_of_nodes())
        self.route_churn.append(int(route_churn))
        self.faults_active.append(int(faults_active))

        # Sorted interning: set iteration order varies with string-hash
        # randomization across processes, and id order is part of the
        # byte-identical export contract.
        for link_id in sorted(links):
            self._link_present[self._link(link_id)] += 1
        if utilization:
            for (u, v), load in sorted(utilization.items()):
                self._link_epoch.append(epoch)
                self._link_index.append(self._link(link_key(u, v)))
                self._link_util.append(float(load))

        kinds = {
            node: data.get("kind") for node, data in graph.nodes(data=True)
        }
        for node in sorted(graph.nodes()):
            if kinds.get(node) != "satellite":
                continue
            isls = sum(
                1 for neighbor in graph.neighbors(node)
                if kinds.get(neighbor) == "satellite"
            )
            self._node_epoch.append(epoch)
            self._node_index.append(self._node(node))
            self._node_isls.append(isls)

        previous = self._previous_links
        self._previous_links = links
        if reset or previous is None:
            return [], []
        return sorted(links - previous), sorted(previous - links)

    def link_availability(self) -> Dict[str, float]:
        """Fraction of sampled epochs each known link was up."""
        epochs = len(self.epoch_t)
        if epochs == 0:
            return {}
        return {
            link_id: self._link_present[slot] / epochs
            for link_id, slot in sorted(self._link_slot.items())
        }

    def worst_links(self, top: int = 10) -> List[Tuple[str, float]]:
        """Links with the lowest availability, ascending."""
        ranked = sorted(self.link_availability().items(),
                        key=lambda item: (item[1], item[0]))
        return ranked[:top]

    def rows(self) -> List[Dict]:
        """The plane as three columnar export records (empty plane: [])."""
        if not self.epoch_t:
            return []
        return [
            {
                "type": "health_epochs",
                "t": list(self.epoch_t),
                "links_up": list(self.links_up),
                "nodes_up": list(self.nodes_up),
                "route_churn": list(self.route_churn),
                "faults_active": list(self.faults_active),
            },
            {
                "type": "health_links",
                "ids": list(self._link_ids),
                "present_epochs": list(self._link_present),
                "epoch": list(self._link_epoch),
                "link": list(self._link_index),
                "utilization": list(self._link_util),
            },
            {
                "type": "health_nodes",
                "ids": list(self._node_ids),
                "epoch": list(self._node_epoch),
                "node": list(self._node_index),
                "isl_count": list(self._node_isls),
            },
        ]

    def replay_rows(self, rows: Iterable[Dict]) -> int:
        """Merge exported health records into this plane.

        Worker epochs append after this plane's current epochs; link and
        node indices are remapped through this plane's intern tables.
        Presence counts accumulate, so :meth:`link_availability` over the
        merged plane equals the serial equivalent.

        Returns:
            The number of epochs merged.
        """
        rows = list(rows)
        offset = len(self.epoch_t)
        merged = 0
        for row in rows:
            if row.get("type") != "health_epochs":
                continue
            for column, target in (
                ("t", self.epoch_t), ("links_up", self.links_up),
                ("nodes_up", self.nodes_up),
                ("route_churn", self.route_churn),
                ("faults_active", self.faults_active),
            ):
                target.extend(row.get(column, []))
            merged += len(row.get("t", []))
        for row in rows:
            kind = row.get("type")
            if kind == "health_links":
                remap = [self._link(link_id) for link_id in row["ids"]]
                for slot, present in zip(remap, row["present_epochs"]):
                    self._link_present[slot] += int(present)
                for epoch, link, util in zip(
                    row["epoch"], row["link"], row["utilization"]
                ):
                    self._link_epoch.append(int(epoch) + offset)
                    self._link_index.append(remap[int(link)])
                    self._link_util.append(float(util))
            elif kind == "health_nodes":
                remap = [self._node(node_id) for node_id in row["ids"]]
                for epoch, node, isls in zip(
                    row["epoch"], row["node"], row["isl_count"]
                ):
                    self._node_epoch.append(int(epoch) + offset)
                    self._node_index.append(remap[int(node)])
                    self._node_isls.append(int(isls))
        # A merged series is a fresh diff baseline, not a continuation.
        self._previous_links = None
        return merged
