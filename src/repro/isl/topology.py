"""Time-varying ISL topology construction.

Builds the snapshot graphs that routing consumes.  At each instant the
builder evaluates geometric feasibility (line of sight above the
atmosphere, range limit), picks the best mutually supported technology per
pair, and greedily assigns links nearest-first while respecting each
spacecraft's ISL-degree ceiling — the power constraint the paper calls out
for heterogeneous fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.isl.link import IslLink, Terminal, best_link_between
from repro.orbits.visibility import line_of_sight_mask

#: Fleets at least this large use the spatial grid for candidate
#: discovery when the builder's ``spatial_index`` is left on auto.  Below
#: this the vectorized all-pairs scan wins (the grid's per-cell Python
#: loop costs more than the extra geometry it avoids); measured crossover
#: on a Walker Delta sweep sits between ~1000 and ~1400 satellites.
SPATIAL_AUTO_THRESHOLD = 1024


@dataclass
class IslNode:
    """What the topology builder needs to know about one spacecraft.

    Attributes:
        node_id: Stable identifier (also the graph node key).
        terminals: ISL-capable terminals the spacecraft carries.
        max_degree: Maximum simultaneous ISLs (power/thermal ceiling).
        allow_optical: False when the power budget currently cannot afford
            laser pointing; RF candidates are still considered.
        owner: Operator identifier (used by routing/economics layers).
    """

    node_id: str
    terminals: Sequence[Terminal]
    max_degree: int = 2
    allow_optical: bool = True
    owner: str = "unknown"


@dataclass
class TopologySnapshot:
    """The ISL graph at one instant.

    Attributes:
        time_s: Snapshot timestamp.
        graph: Undirected graph; nodes are spacecraft ids, each edge holds
            its :class:`IslLink` under the ``"link"`` attribute plus
            ``"delay_s"`` and ``"capacity_bps"`` convenience attributes.
        positions: Node id -> ECI position (km) at the snapshot time.
    """

    time_s: float
    graph: nx.Graph
    positions: Dict[str, np.ndarray] = field(default_factory=dict)

    def link_between(self, node_a: str, node_b: str) -> Optional[IslLink]:
        """The ISL between two nodes, or None when absent."""
        data = self.graph.get_edge_data(node_a, node_b)
        return data["link"] if data else None

    @property
    def link_count(self) -> int:
        return self.graph.number_of_edges()

    def degree_of(self, node_id: str) -> int:
        return self.graph.degree(node_id) if node_id in self.graph else 0

    def edge_set(self) -> frozenset:
        """The snapshot's edges as canonical ``(min_id, max_id)`` pairs."""
        return frozenset(
            (a, b) if a <= b else (b, a) for a, b in self.graph.edges
        )


@dataclass(frozen=True)
class TopologyDelta:
    """Edge-set difference between two consecutive topology snapshots.

    Pairs are canonical ``(min_id, max_id)`` tuples, each list sorted, so
    deltas are deterministic regardless of graph iteration order.

    Attributes:
        appeared: Edges present now but not previously.
        disappeared: Edges present previously but gone now.
        persisted: Edges present in both snapshots (their link objects
            are still re-evaluated — the distance moved).
        full_rebuild: True when there was no comparable previous snapshot
            (first epoch, or the participating node set changed), in
            which case ``appeared`` holds every edge.
    """

    appeared: Tuple[Tuple[str, str], ...]
    disappeared: Tuple[Tuple[str, str], ...]
    persisted: Tuple[Tuple[str, str], ...]
    full_rebuild: bool = False

    @property
    def changed_count(self) -> int:
        return len(self.appeared) + len(self.disappeared)

    @property
    def churn_fraction(self) -> float:
        """Changed edges over total edges involved (0 for identical sets)."""
        total = self.changed_count + len(self.persisted)
        return self.changed_count / total if total else 0.0


class IslTopologyBuilder:
    """Builds :class:`TopologySnapshot` objects from nodes + positions.

    Args:
        nodes: The participating spacecraft.
        max_range_km: Hard range limit for any ISL (beyond it, link budgets
            will not close anyway; the limit prunes the pair search).
        grazing_altitude_km: Minimum ray altitude for line of sight.
        spatial_index: ``True`` forces grid-pruned candidate discovery,
            ``False`` forces the all-pairs scan, ``None`` (default)
            switches to the grid at ``SPATIAL_AUTO_THRESHOLD`` nodes.
            Both paths produce byte-identical snapshots — the grid only
            prunes pairs that can never be in range.
        spatial_cell_deg: Grid cell size for the spatial index.
    """

    def __init__(self, nodes: Sequence[IslNode], max_range_km: float = 6000.0,
                 grazing_altitude_km: float = 80.0,
                 spatial_index: Optional[bool] = None,
                 spatial_cell_deg: float = 8.0):
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in topology builder")
        self.nodes = list(nodes)
        self.max_range_km = max_range_km
        self.grazing_altitude_km = grazing_altitude_km
        self.spatial_index = spatial_index
        self.spatial_cell_deg = spatial_cell_deg
        self._by_id = {node.node_id: node for node in self.nodes}

    def _use_spatial(self, count: int) -> bool:
        if self.spatial_index is not None:
            return self.spatial_index
        return count >= SPATIAL_AUTO_THRESHOLD

    def _candidate_index_pairs(self, pos_matrix: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate ``(i, j)`` pairs, ``i < j``, lexicographically sorted.

        The all-pairs path walks the upper triangle row-major; the grid
        path returns a superset of every within-range pair in the same
        order, so after range/line-of-sight masking both paths yield the
        identical feasible sequence.
        """
        count = pos_matrix.shape[0]
        if self._use_spatial(count):
            # Imported lazily: repro.core.__init__ imports interop which
            # imports this module, so a top-level import would cycle.
            from repro.core.spatial import SpatialGridIndex

            index = SpatialGridIndex(pos_matrix, self.spatial_cell_deg)
            return index.candidate_pairs(self.max_range_km)
        rows, cols = np.triu_indices(count, k=1)
        return rows.astype(np.int64), cols.astype(np.int64)

    def node(self, node_id: str) -> IslNode:
        """Look up a node by id (raises KeyError for unknown ids)."""
        return self._by_id[node_id]

    def snapshot(self, time_s: float,
                 positions: Dict[str, np.ndarray],
                 exclude: Optional[Sequence[str]] = None) -> TopologySnapshot:
        """Build the ISL graph for one instant.

        Candidate pairs are sorted nearest-first and accepted greedily while
        both endpoints have spare ISL degree — shorter links close at higher
        MODCODs, so nearest-first maximizes fleet capacity under the degree
        caps.

        Args:
            time_s: Snapshot timestamp (stored on the result).
            positions: ECI position per node id; every participating node
                must appear.
            exclude: Node ids to leave out entirely (failed satellites):
                they take no graph node, no candidate pair, and no degree
                slot, so the result is identical to building from the
                surviving fleet alone.
        """
        excluded = frozenset(exclude or ())
        nodes = [n for n in self.nodes if n.node_id not in excluded]
        missing = [n.node_id for n in nodes if n.node_id not in positions]
        if missing:
            raise ValueError(f"positions missing for nodes: {missing}")
        graph = nx.Graph()
        for node in nodes:
            graph.add_node(node.node_id, owner=node.owner)

        # Candidate discovery is fully vectorized and (above the auto
        # threshold) grid-pruned: distances and line-of-sight run only
        # over candidate pairs instead of an (N, N) matrix.  Candidates
        # are walked in upper-triangle row-major order either way, so
        # ties in the stable sort break exactly as the all-pairs
        # enumeration did and pruning never changes the result.  The
        # sorted sequence stays as flat lists (never a tuple per pair):
        # at mega-constellation scale the degree caps exhaust long
        # before the candidate tail, so the greedy loop's early exit
        # must not pay for candidates it will never look at.
        cand_rows: List[int] = []
        cand_cols: List[int] = []
        cand_dist: List[float] = []
        if len(nodes) >= 2:
            pos_matrix = np.stack(
                [np.asarray(positions[n.node_id], dtype=float) for n in nodes]
            )
            rows, cols = self._candidate_index_pairs(pos_matrix)
            if rows.size:
                delta = pos_matrix[rows] - pos_matrix[cols]
                distances = np.sqrt((delta * delta).sum(axis=-1))
                feasible = (distances <= self.max_range_km) & line_of_sight_mask(
                    pos_matrix[rows], pos_matrix[cols],
                    self.grazing_altitude_km,
                )
                rows, cols = rows[feasible], cols[feasible]
                distances = distances[feasible]
                order = np.argsort(distances, kind="stable")
                cand_rows = rows[order].tolist()
                cand_cols = cols[order].tolist()
                cand_dist = distances[order].tolist()

        degree: Dict[str, int] = {node.node_id: 0 for node in nodes}
        # Nodes with spare ISL capacity; once fewer than two remain no
        # further candidate can be accepted, so the scan stops early.
        open_nodes = sum(1 for node in nodes if node.max_degree > 0)
        for distance, row, col in zip(cand_dist, cand_rows, cand_cols):
            if open_nodes < 2:
                break
            node_a = nodes[row]
            node_b = nodes[col]
            if degree[node_a.node_id] >= node_a.max_degree:
                continue
            if degree[node_b.node_id] >= node_b.max_degree:
                continue
            link = best_link_between(
                node_a.node_id, node_a.terminals,
                node_b.node_id, node_b.terminals,
                distance,
                prefer_optical=node_a.allow_optical and node_b.allow_optical,
            )
            if link is None:
                continue
            graph.add_edge(
                node_a.node_id,
                node_b.node_id,
                link=link,
                delay_s=link.propagation_delay_s,
                capacity_bps=link.capacity_bps,
            )
            degree[node_a.node_id] += 1
            degree[node_b.node_id] += 1
            if degree[node_a.node_id] >= node_a.max_degree:
                open_nodes -= 1
            if degree[node_b.node_id] >= node_b.max_degree:
                open_nodes -= 1

        return TopologySnapshot(
            time_s=time_s,
            graph=graph,
            positions={k: np.asarray(v, dtype=float) for k, v in positions.items()},
        )

    def snapshot_delta(self, time_s: float,
                       positions: Dict[str, np.ndarray],
                       exclude: Optional[Sequence[str]] = None,
                       previous: Optional[TopologySnapshot] = None,
                       ) -> Tuple[TopologySnapshot, TopologyDelta]:
        """Build a snapshot plus its edge delta against a previous one.

        The new snapshot is always an honest rebuild (greedy assignment
        over freshly evaluated geometry — persisting a link requires
        re-evaluating its budget at the new distance anyway), so the
        result is byte-identical to :meth:`snapshot`.  The delta tells
        incremental consumers (graph overlays, CSR structure reuse,
        route invalidation) exactly which edges changed.

        Args:
            time_s: Snapshot timestamp.
            positions: ECI position per node id.
            exclude: Node ids to leave out (failed satellites).
            previous: The prior epoch's snapshot; ``None`` (or a snapshot
                over a different node set) yields a full-rebuild delta.
        """
        snap = self.snapshot(time_s, positions, exclude=exclude)
        new_edges = snap.edge_set()
        if previous is None or set(previous.graph.nodes) != set(snap.graph.nodes):
            delta = TopologyDelta(
                appeared=tuple(sorted(new_edges)),
                disappeared=(),
                persisted=(),
                full_rebuild=True,
            )
            return snap, delta
        prev_edges = previous.edge_set()
        delta = TopologyDelta(
            appeared=tuple(sorted(new_edges - prev_edges)),
            disappeared=tuple(sorted(prev_edges - new_edges)),
            persisted=tuple(sorted(new_edges & prev_edges)),
        )
        return snap, delta

    def snapshots(self, times_s: Sequence[float],
                  positions_at) -> List[TopologySnapshot]:
        """Snapshots over a time series.

        Args:
            times_s: Timestamps to evaluate.
            positions_at: Callable ``time_s -> {node_id: position}``.
        """
        return [self.snapshot(t, positions_at(t)) for t in times_s]
