"""Time-varying ISL topology construction.

Builds the snapshot graphs that routing consumes.  At each instant the
builder evaluates geometric feasibility (line of sight above the
atmosphere, range limit), picks the best mutually supported technology per
pair, and greedily assigns links nearest-first while respecting each
spacecraft's ISL-degree ceiling — the power constraint the paper calls out
for heterogeneous fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.isl.link import IslLink, Terminal, best_link_between
from repro.orbits.visibility import (
    pairwise_line_of_sight,
    pairwise_slant_ranges,
)


@dataclass
class IslNode:
    """What the topology builder needs to know about one spacecraft.

    Attributes:
        node_id: Stable identifier (also the graph node key).
        terminals: ISL-capable terminals the spacecraft carries.
        max_degree: Maximum simultaneous ISLs (power/thermal ceiling).
        allow_optical: False when the power budget currently cannot afford
            laser pointing; RF candidates are still considered.
        owner: Operator identifier (used by routing/economics layers).
    """

    node_id: str
    terminals: Sequence[Terminal]
    max_degree: int = 2
    allow_optical: bool = True
    owner: str = "unknown"


@dataclass
class TopologySnapshot:
    """The ISL graph at one instant.

    Attributes:
        time_s: Snapshot timestamp.
        graph: Undirected graph; nodes are spacecraft ids, each edge holds
            its :class:`IslLink` under the ``"link"`` attribute plus
            ``"delay_s"`` and ``"capacity_bps"`` convenience attributes.
        positions: Node id -> ECI position (km) at the snapshot time.
    """

    time_s: float
    graph: nx.Graph
    positions: Dict[str, np.ndarray] = field(default_factory=dict)

    def link_between(self, node_a: str, node_b: str) -> Optional[IslLink]:
        """The ISL between two nodes, or None when absent."""
        data = self.graph.get_edge_data(node_a, node_b)
        return data["link"] if data else None

    @property
    def link_count(self) -> int:
        return self.graph.number_of_edges()

    def degree_of(self, node_id: str) -> int:
        return self.graph.degree(node_id) if node_id in self.graph else 0


class IslTopologyBuilder:
    """Builds :class:`TopologySnapshot` objects from nodes + positions.

    Args:
        nodes: The participating spacecraft.
        max_range_km: Hard range limit for any ISL (beyond it, link budgets
            will not close anyway; the limit prunes the pair search).
        grazing_altitude_km: Minimum ray altitude for line of sight.
    """

    def __init__(self, nodes: Sequence[IslNode], max_range_km: float = 6000.0,
                 grazing_altitude_km: float = 80.0):
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in topology builder")
        self.nodes = list(nodes)
        self.max_range_km = max_range_km
        self.grazing_altitude_km = grazing_altitude_km
        self._by_id = {node.node_id: node for node in self.nodes}

    def node(self, node_id: str) -> IslNode:
        """Look up a node by id (raises KeyError for unknown ids)."""
        return self._by_id[node_id]

    def snapshot(self, time_s: float,
                 positions: Dict[str, np.ndarray],
                 exclude: Optional[Sequence[str]] = None) -> TopologySnapshot:
        """Build the ISL graph for one instant.

        Candidate pairs are sorted nearest-first and accepted greedily while
        both endpoints have spare ISL degree — shorter links close at higher
        MODCODs, so nearest-first maximizes fleet capacity under the degree
        caps.

        Args:
            time_s: Snapshot timestamp (stored on the result).
            positions: ECI position per node id; every participating node
                must appear.
            exclude: Node ids to leave out entirely (failed satellites):
                they take no graph node, no candidate pair, and no degree
                slot, so the result is identical to building from the
                surviving fleet alone.
        """
        excluded = frozenset(exclude or ())
        nodes = [n for n in self.nodes if n.node_id not in excluded]
        missing = [n.node_id for n in nodes if n.node_id not in positions]
        if missing:
            raise ValueError(f"positions missing for nodes: {missing}")
        graph = nx.Graph()
        for node in nodes:
            graph.add_node(node.node_id, owner=node.owner)

        # Candidate discovery is fully vectorized: one (N, N) distance
        # matrix plus one line-of-sight mask replace the scalar pair
        # loop.  Upper-triangle indices are walked row-major, so ties in
        # the stable sort break exactly as the scalar enumeration did.
        candidates: List[tuple] = []
        if len(nodes) >= 2:
            pos_matrix = np.stack(
                [np.asarray(positions[n.node_id], dtype=float) for n in nodes]
            )
            distances = pairwise_slant_ranges(pos_matrix)
            feasible = (distances <= self.max_range_km) & pairwise_line_of_sight(
                pos_matrix, self.grazing_altitude_km
            )
            rows, cols = np.triu_indices(len(nodes), k=1)
            keep = feasible[rows, cols]
            rows, cols = rows[keep], cols[keep]
            order = np.argsort(distances[rows, cols], kind="stable")
            candidates = [
                (float(distances[rows[k], cols[k]]),
                 nodes[int(rows[k])], nodes[int(cols[k])])
                for k in order
            ]

        degree: Dict[str, int] = {node.node_id: 0 for node in nodes}
        for distance, node_a, node_b in candidates:
            if degree[node_a.node_id] >= node_a.max_degree:
                continue
            if degree[node_b.node_id] >= node_b.max_degree:
                continue
            link = best_link_between(
                node_a.node_id, node_a.terminals,
                node_b.node_id, node_b.terminals,
                distance,
                prefer_optical=node_a.allow_optical and node_b.allow_optical,
            )
            if link is None:
                continue
            graph.add_edge(
                node_a.node_id,
                node_b.node_id,
                link=link,
                delay_s=link.propagation_delay_s,
                capacity_bps=link.capacity_bps,
            )
            degree[node_a.node_id] += 1
            degree[node_b.node_id] += 1

        return TopologySnapshot(
            time_s=time_s,
            graph=graph,
            positions={k: np.asarray(v, dtype=float) for k, v in positions.items()},
        )

    def snapshots(self, times_s: Sequence[float],
                  positions_at) -> List[TopologySnapshot]:
        """Snapshots over a time series.

        Args:
            times_s: Timestamps to evaluate.
            positions_at: Callable ``time_s -> {node_id: position}``.
        """
        return [self.snapshot(t, positions_at(t)) for t in times_s]
