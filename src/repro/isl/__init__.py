"""Inter-satellite link substrate.

Models the links themselves (RF minimum / optional laser, per the OpenSpace
interoperability profile), the power economics of establishing them (the
paper notes "the power cost of executing rotations for ISLs and
establishing those links" limits how many ISLs a satellite can run), and
the time-varying ISL topology built from propagated orbital state.
"""

from repro.isl.link import (
    IslLink,
    LinkTechnology,
    best_link_between,
)
from repro.isl.power import PowerBudget, SlewModel
from repro.isl.topology import IslTopologyBuilder, TopologySnapshot

__all__ = [
    "IslLink",
    "LinkTechnology",
    "best_link_between",
    "PowerBudget",
    "SlewModel",
    "IslTopologyBuilder",
    "TopologySnapshot",
]
