"""Spacecraft power and slew budgets for ISL establishment.

The paper: "given the power cost of executing rotations for ISLs and
establishing those links, satellites may have power consumption constraints
that limit the number of ISLs they can establish and the size of data
transfers they can facilitate."  This module models that constraint: an
energy budget replenished by solar generation and drained by terminal
operation and attitude slews, plus a slew-time model used by the pairing
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PowerBudget:
    """A spacecraft's electrical power state.

    Attributes:
        battery_capacity_wh: Usable battery capacity.
        charge_wh: Current stored energy.
        solar_generation_w: Orbit-average generation (eclipse-averaged).
        bus_load_w: Constant housekeeping load.
        max_concurrent_isls: Hard limit on simultaneously active ISLs
            (thermal/power ceiling); small spacecraft typically 2, large 4+.
    """

    battery_capacity_wh: float
    solar_generation_w: float
    bus_load_w: float = 20.0
    max_concurrent_isls: int = 2
    charge_wh: float = field(default=-1.0)
    _active_isls: Dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.battery_capacity_wh <= 0.0:
            raise ValueError(
                f"battery capacity must be positive, got {self.battery_capacity_wh}"
            )
        if self.max_concurrent_isls < 0:
            raise ValueError(
                f"max concurrent ISLs must be >= 0, got {self.max_concurrent_isls}"
            )
        if self.charge_wh < 0.0:
            self.charge_wh = self.battery_capacity_wh

    @property
    def active_isl_count(self) -> int:
        return len(self._active_isls)

    @property
    def isl_load_w(self) -> float:
        """Power drawn by currently active ISL terminals."""
        return sum(self._active_isls.values())

    def can_activate_isl(self, draw_w: float) -> bool:
        """Whether another ISL of the given draw fits in the budget.

        An ISL fits when the concurrency ceiling is not hit and the total
        load stays within what generation plus a 20%-depth battery assist
        can sustain.
        """
        if self.active_isl_count >= self.max_concurrent_isls:
            return False
        sustainable_w = self.solar_generation_w + (
            0.2 * self.battery_capacity_wh
        )  # Wh treated as a one-hour assist rate
        return self.bus_load_w + self.isl_load_w + draw_w <= sustainable_w

    def activate_isl(self, link_id: str, draw_w: float) -> None:
        """Register an active ISL's power draw.

        Raises:
            RuntimeError: When the budget cannot host the link (callers
                should have checked :meth:`can_activate_isl`).
        """
        if link_id in self._active_isls:
            return
        if not self.can_activate_isl(draw_w):
            raise RuntimeError(
                f"power budget exhausted: {self.active_isl_count} active ISLs, "
                f"load {self.isl_load_w:.0f} W, cannot add {draw_w:.0f} W"
            )
        self._active_isls[link_id] = draw_w

    def deactivate_isl(self, link_id: str) -> None:
        """Drop an ISL's draw; unknown ids are ignored (idempotent teardown)."""
        self._active_isls.pop(link_id, None)

    def step(self, dt_s: float) -> None:
        """Advance the battery state by ``dt_s`` seconds of operation."""
        if dt_s < 0.0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        net_w = self.solar_generation_w - self.bus_load_w - self.isl_load_w
        self.charge_wh = min(
            self.battery_capacity_wh,
            max(0.0, self.charge_wh + net_w * dt_s / 3600.0),
        )

    @property
    def depleted(self) -> bool:
        """True when the battery has run flat (ISLs must shed load)."""
        return self.charge_wh <= 0.0


@dataclass(frozen=True)
class SlewModel:
    """Attitude-slew timing and energy for (re)pointing a laser terminal.

    "Laser-links between satellites, even if available, are directional,
    which means that the satellites once paired, can re-orient (i.e., spin)
    to maintain a reliable link."

    Attributes:
        max_rate_deg_s: Peak slew rate.
        acceleration_deg_s2: Angular acceleration (bang-bang profile).
        power_w: Reaction-wheel/gimbal power while slewing.
    """

    max_rate_deg_s: float = 1.0
    acceleration_deg_s2: float = 0.1
    power_w: float = 15.0

    def slew_time_s(self, angle_deg: float) -> float:
        """Time for a rest-to-rest slew through ``angle_deg`` (bang-bang)."""
        if angle_deg < 0.0:
            raise ValueError(f"angle must be >= 0, got {angle_deg}")
        if angle_deg == 0.0:
            return 0.0
        # Distance covered accelerating to (and braking from) peak rate.
        ramp_angle = self.max_rate_deg_s**2 / self.acceleration_deg_s2
        if angle_deg <= ramp_angle:
            return 2.0 * math.sqrt(angle_deg / self.acceleration_deg_s2)
        ramp_time = 2.0 * self.max_rate_deg_s / self.acceleration_deg_s2
        cruise_time = (angle_deg - ramp_angle) / self.max_rate_deg_s
        return ramp_time + cruise_time

    def slew_energy_wh(self, angle_deg: float) -> float:
        """Energy consumed by a slew through ``angle_deg``."""
        return self.power_w * self.slew_time_s(angle_deg) / 3600.0


def smallsat_power_budget() -> PowerBudget:
    """A 6U-cubesat-class budget: RF ISLs only, tight margins."""
    return PowerBudget(
        battery_capacity_wh=80.0,
        solar_generation_w=40.0,
        bus_load_w=12.0,
        max_concurrent_isls=2,
    )


def midsat_power_budget() -> PowerBudget:
    """A smallsat-bus budget able to host one laser terminal."""
    return PowerBudget(
        battery_capacity_wh=600.0,
        solar_generation_w=300.0,
        bus_load_w=60.0,
        max_concurrent_isls=3,
    )


def largesat_power_budget() -> PowerBudget:
    """A Starlink-class bus: multiple laser ISLs."""
    return PowerBudget(
        battery_capacity_wh=3000.0,
        solar_generation_w=2000.0,
        bus_load_w=250.0,
        max_concurrent_isls=5,
    )
