"""The inter-satellite link abstraction.

An :class:`IslLink` binds two spacecraft terminals of a mutually supported
technology at a given range, and exposes the capacity, latency, and power
figures the routing and economics layers consume.  Per the OpenSpace
profile, "satellites should be able to communicate through either RF
signals or laser technology, depending on the specifications and current
load of the spacecraft involved" — :func:`best_link_between` implements
that selection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.phy.linkbudget import LinkBudget
from repro.phy.modulation import achievable_rate_bps
from repro.phy.optical import OpticalTerminal, optical_link_budget
from repro.phy.rf import RFTerminal, rf_link_budget

Terminal = Union[RFTerminal, OpticalTerminal]


class LinkTechnology(enum.Enum):
    """ISL technology classes in the OpenSpace interoperability profile."""

    RF_UHF = "rf_uhf"
    RF_SBAND = "rf_sband"
    OPTICAL = "optical"

    @property
    def is_rf(self) -> bool:
        return self in (LinkTechnology.RF_UHF, LinkTechnology.RF_SBAND)


_BAND_TO_TECH = {"uhf": LinkTechnology.RF_UHF, "s_band": LinkTechnology.RF_SBAND}


def technology_of(terminal: Terminal) -> Optional[LinkTechnology]:
    """Classify a terminal as an ISL technology (None for ground bands)."""
    if isinstance(terminal, OpticalTerminal):
        return LinkTechnology.OPTICAL
    return _BAND_TO_TECH.get(terminal.band_name)


@dataclass(frozen=True)
class IslLink:
    """One established (or candidate) inter-satellite link.

    Attributes:
        node_a: Identifier of one endpoint (satellite id).
        node_b: Identifier of the other endpoint.
        technology: Selected link technology.
        distance_km: Slant range at evaluation time.
        budget: Full link-budget detail.
        capacity_bps: MODCOD-limited data rate (0 when the link does not
            close; such links are filtered out by the topology builder).
    """

    node_a: str
    node_b: str
    technology: LinkTechnology
    distance_km: float
    budget: LinkBudget
    capacity_bps: float

    @property
    def propagation_delay_s(self) -> float:
        """One-way speed-of-light delay across the link."""
        return self.distance_km / SPEED_OF_LIGHT_KM_S

    @property
    def usable(self) -> bool:
        """True when the link closes with nonzero capacity."""
        return self.capacity_bps > 0.0

    def serialization_delay_s(self, frame_bits: float = 12_000.0) -> float:
        """Time to clock one frame onto the link (infinite when unusable)."""
        if not self.usable:
            return float("inf")
        return frame_bits / self.capacity_bps


def _evaluate(node_a: str, node_b: str, tech: LinkTechnology,
              term_a: Terminal, term_b: Terminal,
              distance_km: float) -> IslLink:
    """Build an :class:`IslLink` for one concrete terminal pairing."""
    if tech is LinkTechnology.OPTICAL:
        budget = optical_link_budget(term_a, term_b, distance_km)
        # Optical capacity: Shannon-limited but clipped to the terminal's
        # electrical bandwidth at a practical 2 bps/Hz.
        capacity = min(
            budget.shannon_capacity_bps,
            2.0 * min(term_a.data_bandwidth_hz, term_b.data_bandwidth_hz),
        )
        if budget.snr_db < 3.0:
            capacity = 0.0
    else:
        budget = rf_link_budget(term_a, term_b, distance_km)
        capacity = achievable_rate_bps(budget.snr_db, budget.bandwidth_hz)
    return IslLink(
        node_a=node_a,
        node_b=node_b,
        technology=tech,
        distance_km=distance_km,
        budget=budget,
        capacity_bps=capacity,
    )


def candidate_links(node_a: str, terminals_a: Sequence[Terminal],
                    node_b: str, terminals_b: Sequence[Terminal],
                    distance_km: float) -> Iterable[IslLink]:
    """Every mutually supported technology pairing between two spacecraft."""
    by_tech_a = {}
    by_tech_b = {}
    for terminal in terminals_a:
        tech = technology_of(terminal)
        if tech is not None:
            by_tech_a.setdefault(tech, terminal)
    for terminal in terminals_b:
        tech = technology_of(terminal)
        if tech is not None:
            by_tech_b.setdefault(tech, terminal)
    for tech in by_tech_a.keys() & by_tech_b.keys():
        yield _evaluate(
            node_a, node_b, tech, by_tech_a[tech], by_tech_b[tech], distance_km
        )


def best_link_between(node_a: str, terminals_a: Sequence[Terminal],
                      node_b: str, terminals_b: Sequence[Terminal],
                      distance_km: float,
                      prefer_optical: bool = True) -> Optional[IslLink]:
    """Pick the best usable link between two spacecraft.

    "Satellites must permit RF-based communication links at a minimum and
    optionally also support standardized laser-based links" — so the best
    link is the highest-capacity usable candidate, which in practice means
    optical when both sides carry (and can afford) a laser terminal, and
    the best RF band otherwise.

    Args:
        node_a: Identifier of one endpoint.
        terminals_a: Its ISL-capable terminals.
        node_b: Identifier of the other endpoint.
        terminals_b: Its ISL-capable terminals.
        distance_km: Slant range.
        prefer_optical: When False, optical candidates are skipped — used
            when a spacecraft's power budget cannot afford laser pointing.

    Returns:
        The selected :class:`IslLink`, or None when no candidate closes.
    """
    best: Optional[IslLink] = None
    for link in candidate_links(node_a, terminals_a, node_b, terminals_b,
                                distance_km):
        if not prefer_optical and link.technology is LinkTechnology.OPTICAL:
            continue
        if not link.usable:
            continue
        if best is None or link.capacity_bps > best.capacity_bps:
            best = link
    return best
