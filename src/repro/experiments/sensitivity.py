"""Sensitivity sweeps over the unspecified parameters of Figure 2.

The paper does not state its elevation masks, user/gateway coordinates, or
altitude.  These sweeps quantify how the reproduced curves move with each
assumption, so readers can judge whether the headline shapes are robust to
our documented defaults (they are).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.figure2 import (
    DEFAULT_GATEWAY_SITE,
    DEFAULT_USER_SITE,
    figure_2b_latency,
)
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.visibility import coverage_fraction
from repro.orbits.walker import random_constellation


def coverage_mask_sensitivity(masks_deg: Sequence[float] = (0.0, 10.0, 25.0),
                              satellite_count: int = 50,
                              trials: int = 4,
                              altitude_km: float = 780.0,
                              seed: int = 13) -> List[Dict]:
    """Coverage at fixed fleet size vs user elevation mask.

    Higher masks shrink footprints, so the fleet size needed for "total
    coverage" grows — quantifying how much the paper's 50-satellite figure
    depends on the (unstated) mask.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for mask in masks_deg:
        values = []
        for _ in range(trials):
            constellation = random_constellation(satellite_count, rng,
                                                 altitude_km=altitude_km)
            values.append(coverage_fraction(
                constellation.positions_at(0.0), altitude_km,
                min_elevation_deg=mask,
            ))
        rows.append({
            "mask_deg": mask,
            "coverage": float(np.mean(values)),
        })
    return rows


def coverage_altitude_sensitivity(altitudes_km: Sequence[float] = (
                                      400.0, 780.0, 1200.0),
                                  satellite_count: int = 50,
                                  trials: int = 4,
                                  seed: int = 13) -> List[Dict]:
    """Coverage at fixed fleet size vs constellation altitude.

    Higher shells see more of the Earth per satellite, so the critical
    mass falls with altitude (at the price of latency and launch cost).
    """
    rng = np.random.default_rng(seed)
    rows = []
    for altitude in altitudes_km:
        values = []
        for _ in range(trials):
            constellation = random_constellation(satellite_count, rng,
                                                 altitude_km=altitude)
            values.append(coverage_fraction(
                constellation.positions_at(0.0), altitude,
            ))
        rows.append({
            "altitude_km": altitude,
            "coverage": float(np.mean(values)),
        })
    return rows


def latency_site_sensitivity(sites: Sequence = None, satellite_count: int = 70,
                             trials: int = 3, epochs: int = 6,
                             seed: int = 13) -> List[Dict]:
    """Figure 2(b) plateau latency vs user/gateway site pair.

    The plateau scales with the user-gateway great-circle distance; this
    sweep shows the 30 ms figure is a property of the (unstated) site
    pair, not of the constellation.
    """
    if sites is None:
        sites = [
            ("nairobi->frankfurt", DEFAULT_USER_SITE, DEFAULT_GATEWAY_SITE),
            ("nairobi->nairobi-gw", DEFAULT_USER_SITE,
             GeodeticPoint(-1.29, 36.0)),
            ("sydney->frankfurt", GeodeticPoint(-33.87, 151.21),
             DEFAULT_GATEWAY_SITE),
        ]
    rows = []
    for name, user_site, gateway_site in sites:
        result = figure_2b_latency(
            satellite_counts=[satellite_count], trials=trials, epochs=epochs,
            seed=seed, user_site=user_site, gateway_site=gateway_site,
        )
        series = result["series"]
        rows.append({
            "sites": name,
            "latency_mean_ms": series[0]["mean"] if series else float("nan"),
            "reachability": result["reachability"][satellite_count],
        })
    return rows
