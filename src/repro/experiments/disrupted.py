"""Disrupted communications: evacuating IoT telemetry from a blackout.

ROADMAP item 4(b)'s workload, end to end: sensors inside a region whose
terrestrial backhaul has collapsed keep producing telemetry; a regional
blackout (``faults.regional_blackout_event``) takes every gateway within
the radius down for a correlated interval; the :mod:`repro.dtn` plane
carries the bundles out — over the surviving gateways while the region
is dark, and through the drained backlog after repair.

Every grid point is a pure function of ``(seed, point coordinates)``:
the channel seed comes from :func:`repro.parallel.derive_seed`, sensor
placement from a base-seed-only derivation shared across points (so
rows differ only in the swept knobs).  ``repro dtn sweep --jobs N``
therefore prints byte-identical rows, events, and health samples at
every job count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs as _obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.dtn import Bundle, CustodyTransfer, DtnScheduler
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultSchedule
from repro.faults.schedule import regional_blackout_event, stations_within
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import walker_delta
from repro.parallel import derive_seed, run_grid
from repro.reliability.channel import LossyControlChannel
from repro.reliability.exchange import RetryPolicy
from repro.simulation.engine import SimulationEngine

#: Provider name the sweep's fleet and sensors share.
PROVIDER = "dtn"

#: Blackout epicenter: Nairobi — the default gateway network's only
#: East-African site, so a 1500 km footprint takes down exactly one
#: gateway while the rest of the world stays up.
REGION_LAT_DEG = -1.3
REGION_LON_DEG = 36.8

#: Blackout onset as a fraction of the horizon (bundles exist before,
#: during, and after the outage).
BLACKOUT_START_FRACTION = 0.25


def _make_sensors(count: int, seed: int,
                  spread_deg: float = 2.0) -> List[UserTerminal]:
    """IoT sensors jittered around the region center (seeded placement)."""
    rng = np.random.default_rng(seed)
    sensors = []
    for index in range(count):
        lat = float(np.clip(REGION_LAT_DEG + rng.normal(0.0, spread_deg),
                            -85.0, 85.0))
        lon = float(REGION_LON_DEG + rng.normal(0.0, spread_deg))
        sensors.append(UserTerminal(
            f"sensor-{index:02d}", GeodeticPoint(lat, lon, 0.0),
            PROVIDER, min_elevation_deg=10.0,
        ))
    return sensors


def _make_bundles(sensors: Sequence[UserTerminal], horizon_s: float,
                  interval_s: float, size_bytes: int,
                  ttl_s: float) -> List[Bundle]:
    """Periodic telemetry: one bundle per sensor per interval, priority
    cycling through the three QoS classes."""
    bundles = []
    for sensor_index, sensor in enumerate(sensors):
        emission = 0
        clock = 0.0
        while clock < horizon_s:
            bundles.append(Bundle(
                bundle_id=f"b-{sensor_index:02d}-{emission:03d}",
                source=sensor.user_id,
                destination="",
                size_bytes=size_bytes,
                priority=(sensor_index + emission) % 3,
                ttl_s=ttl_s,
                created_s=clock,
            ))
            emission += 1
            clock += interval_s
    return bundles


def run_disrupted_scenario(network: OpenSpaceNetwork,
                           sensors: Sequence[UserTerminal],
                           schedule: FaultSchedule,
                           epoch_times: Sequence[float],
                           buffer_bytes: float,
                           bundles: Sequence[Bundle],
                           loss: float = 0.0,
                           channel_seed: int = 0,
                           max_attempts: int = 4,
                           timeout_s: float = 0.5,
                           backend: Optional[str] = None) -> Dict:
    """Run one blackout scenario through the DTN plane.

    Args:
        network: Network under test (fault state is reset around the run).
        sensors: Bundle-originating terminals.
        schedule: Faults to inject (typically one regional blackout).
        epoch_times: Scheduler step instants / contact-plan epochs.
        buffer_bytes: Per-node custody budget.
        bundles: The telemetry to evacuate.
        loss: Per-hop control-frame loss rate of the custody channel.
        channel_seed: Seed of the channel's delivery draws.
        max_attempts: Custody retransmission bound.
        timeout_s: Per-attempt custody timeout, seconds.
        backend: Routing backend override.

    Returns:
        Aggregate row (delivery ratio/delay, custody retransmissions,
        buffer drops, TTL expiries, replans, remaining backlog).
    """
    network.clear_fault_state()
    channel = LossyControlChannel(loss_scale=loss, base_loss=loss,
                                  seed=channel_seed, network=network)
    custody = CustodyTransfer(
        channel,
        policy=RetryPolicy(max_attempts=max_attempts, timeout_s=timeout_s),
    )
    scheduler = DtnScheduler(network, sensors, custody, epoch_times,
                             buffer_bytes=buffer_bytes, backend=backend)
    for bundle in bundles:
        scheduler.submit(bundle)
    injector = FaultInjector(network, channel=channel)
    engine = SimulationEngine()
    with _obs.active().span("experiment.disrupted.run",
                            faults=len(schedule), bundles=len(bundles),
                            horizon_s=scheduler.horizon_s):
        # Injector first: equal-time fault transitions must apply before
        # the scheduler step that observes them.
        injector.schedule_on(engine, schedule, until_s=scheduler.horizon_s)
        result = scheduler.run(engine)
    network.clear_fault_state()
    return {
        "created": result.created,
        "delivered": result.delivered,
        "delivery_ratio": result.delivery_ratio,
        "mean_delay_s": result.mean_delay_s,
        "max_delay_s": result.max_delay_s,
        "custody_retx": result.custody_retransmissions,
        "custody_failures": result.custody_failures,
        "buffer_drops": result.dropped,
        "ttl_expired": result.expired,
        "replans": result.replans,
        "backlog": result.buffered,
        "faults_injected": injector.applied_count,
    }


def _disrupted_point(args: tuple) -> Dict:
    """One grid point, self-contained for process-pool execution.

    Rebuilds the fleet, gateway network, and sensors from the point
    alone; the channel seed is point-derived via :func:`derive_seed`
    while sensor placement derives from the base seed only, so every
    row shares one sensor field and rows are identical at any job count.
    """
    (radius_km, duration_s, buffer_kb, horizon_s, step_s, loss,
     sensor_count, satellite_count, interval_s, size_bytes, ttl_s,
     seed) = args
    stations = default_station_network()
    fleet = build_fleet(
        walker_delta(satellite_count, 6, phasing=1, altitude_km=780.0,
                     inclination_deg=66.0),
        PROVIDER, SizeClass.MEDIUM,
    )
    network = OpenSpaceNetwork(fleet, stations)
    sensors = _make_sensors(sensor_count,
                            seed=derive_seed(seed, "disrupted-sensors"))
    epoch_times = [float(t) for t in
                   np.arange(0.0, horizon_s, step_s)]
    bundles = _make_bundles(sensors, horizon_s, interval_s, size_bytes,
                            ttl_s)
    start_s = BLACKOUT_START_FRACTION * horizon_s
    down = stations_within(stations, REGION_LAT_DEG, REGION_LON_DEG,
                           radius_km)
    if down:
        schedule = FaultSchedule(
            events=[regional_blackout_event(
                stations, REGION_LAT_DEG, REGION_LON_DEG, radius_km,
                start_s=start_s, duration_s=duration_s,
            )],
            horizon_s=horizon_s,
        )
    else:
        schedule = FaultSchedule(horizon_s=horizon_s)
    row = run_disrupted_scenario(
        network, sensors, schedule, epoch_times,
        buffer_bytes=buffer_kb * 1024.0, bundles=bundles, loss=loss,
        channel_seed=derive_seed(seed, "disrupted", radius_km,
                                 duration_s, buffer_kb),
    )
    return {
        "radius_km": float(radius_km),
        "blackout_s": float(duration_s),
        "buffer_kb": float(buffer_kb),
        "stations_down": len(down),
        **row,
    }


def disrupted_sweep(radii_km: Sequence[float] = (0.0, 1500.0, 3500.0),
                    durations_s: Sequence[float] = (3600.0,),
                    buffer_kb: Sequence[float] = (8.0, 64.0),
                    horizon_s: float = 7200.0,
                    step_s: float = 600.0,
                    loss: float = 0.05,
                    sensors: int = 6,
                    satellites: int = 24,
                    bundle_interval_s: float = 900.0,
                    bundle_bytes: int = 4096,
                    ttl_s: float = 7200.0,
                    seed: int = 17,
                    jobs: int = 1) -> List[Dict]:
    """Delivery ratio/delay vs blackout radius, duration, buffer budget.

    Each row blacks out every gateway within ``radius_km`` of the
    Nairobi region center for ``duration_s`` (starting a quarter into
    the horizon) and evacuates the region's periodic IoT telemetry
    through the DTN plane under the given per-node buffer budget.

    Args:
        radii_km: Blackout radii to sweep (``0`` = no blackout control).
        durations_s: Blackout durations, seconds.
        buffer_kb: Per-node custody budgets, KiB.
        horizon_s: Simulated period per point.
        step_s: Scheduler epoch length.
        loss: Per-hop control-frame loss rate.
        sensors: IoT sensors in the region.
        satellites: Walker-Delta fleet size (6 planes).
        bundle_interval_s: Telemetry period per sensor.
        bundle_bytes: Bundle payload size.
        ttl_s: Bundle lifetime.
        seed: Root seed.
        jobs: Worker processes; every job count yields identical rows.

    Returns:
        One row dict per grid point, in ``radii_km`` x ``durations_s``
        x ``buffer_kb`` order.
    """
    for radius in radii_km:
        if radius < 0.0:
            raise ValueError(f"radius must be >= 0, got {radius}")
    for duration in durations_s:
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
    for budget in buffer_kb:
        if budget <= 0.0:
            raise ValueError(f"buffer budget must be positive, got {budget}")
    if horizon_s <= 0.0 or step_s <= 0.0 or step_s > horizon_s:
        raise ValueError(
            f"need 0 < step ({step_s}) <= horizon ({horizon_s})"
        )
    if sensors < 1:
        raise ValueError(f"need at least one sensor, got {sensors}")
    if bundle_interval_s <= 0.0:
        raise ValueError(
            f"bundle interval must be positive, got {bundle_interval_s}"
        )

    points = [
        (float(radius), float(duration), float(budget), float(horizon_s),
         float(step_s), float(loss), int(sensors), int(satellites),
         float(bundle_interval_s), int(bundle_bytes), float(ttl_s),
         int(seed))
        for radius in radii_km
        for duration in durations_s
        for budget in buffer_kb
    ]
    with _obs.active().span("experiment.disrupted.sweep",
                            points=len(points)):
        return run_grid(_disrupted_point, points, jobs=jobs, label="dtn")
