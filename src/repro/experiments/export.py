"""CSV export for experiment results.

Every driver returns plain row dicts; these helpers write them as CSV so
users can plot with whatever they like.  Stdlib ``csv`` only.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.obs.export import atomic_write


def rows_to_csv(rows: Sequence[Dict], path: Union[str, Path],
                columns: Sequence[str] = None) -> int:
    """Write experiment rows to a CSV file.

    Args:
        rows: Row dicts (as returned by the experiment drivers).
        path: Output file.
        columns: Column order; defaults to the union of keys in first-seen
            order.

    Returns:
        Number of data rows written.

    Raises:
        ValueError: On empty input (an empty export usually means a wiring
            bug upstream).
    """
    if not rows:
        raise ValueError("no rows to export")
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with atomic_write(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns),
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def figure_2b_to_csv(result: Dict, path: Union[str, Path]) -> int:
    """Flatten a :func:`figure_2b_latency` result into a CSV."""
    rows: List[Dict] = []
    series = {row["x"]: row for row in result["series"]}
    for count, reachability in sorted(result["reachability"].items()):
        row = {"satellites": count, "reachability": reachability}
        if count in series:
            row.update({
                "latency_mean_ms": series[count]["mean"],
                "latency_p50_ms": series[count]["p50"],
                "latency_p95_ms": series[count]["p95"],
                "samples": series[count]["n"],
            })
        rows.append(row)
    return rows_to_csv(rows, path, columns=[
        "satellites", "reachability", "latency_mean_ms", "latency_p50_ms",
        "latency_p95_ms", "samples",
    ])
