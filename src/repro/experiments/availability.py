"""Availability and resilience experiments (paper §4).

Two claims beyond the Figure 2 curves:

* "the critical mass needed for such a system to achieve global coverage
  and **reliable performance**" — :func:`availability_sweep` measures the
  fraction of time sample users actually have a service path, vs fleet
  size;
* "additional satellites ensure redundancy, such that **operational
  failures**, load balancing, and range cutoffs ... can be handled
  efficiently" (Figure 2(c) caption) — :func:`resilience_sweep` kills a
  growing fraction of the fleet and measures how service degrades, with
  and without the redundancy margin.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like, random_constellation

#: Sample users spanning latitudes (equator to polar).
SAMPLE_SITES = [
    ("equatorial", GeodeticPoint(-1.29, 36.82)),
    ("mid-latitude", GeodeticPoint(45.0, 10.0)),
    ("high-latitude", GeodeticPoint(65.0, -20.0)),
]


def _service_availability(network: OpenSpaceNetwork, user: UserTerminal,
                          times_s: Sequence[float]) -> float:
    """Fraction of sampled instants the user can reach any gateway."""
    served = 0
    for time_s in times_s:
        snap = network.snapshot(float(time_s), users=[user])
        if snap.nearest_ground_station_route(user.user_id) is not None:
            served += 1
    return served / len(times_s)


def availability_sweep(fleet_sizes: Sequence[int] = (12, 24, 40, 55, 66),
                       epochs: int = 8,
                       seed: int = 37,
                       include_structured: bool = True) -> List[Dict]:
    """Service availability vs fleet size for the sample users.

    Fleets are random constellations (the paper's methodology); each is
    sampled at ``epochs`` instants over one orbital period plus Earth
    rotation.  A final row evaluates the *structured* Walker Star fleet at
    66 satellites — quantifying how much deliberate constellation design
    buys over random placement at the same size.

    Returns:
        Rows of ``{"satellites", "layout", "<site>_availability"...,
        "mean"}``.
    """
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    rng = np.random.default_rng(seed)
    stations = default_station_network()
    times = np.linspace(0.0, 7200.0, epochs, endpoint=False)
    rows = []

    def evaluate(constellation, size, layout):
        fleet = build_fleet(constellation, "avail", SizeClass.MEDIUM)
        network = OpenSpaceNetwork(fleet, stations)
        row: Dict = {"satellites": size, "layout": layout}
        values = []
        for name, site in SAMPLE_SITES:
            user = UserTerminal(f"u-{name}", site, "avail",
                                min_elevation_deg=10.0)
            availability = _service_availability(network, user, times)
            row[f"{name}_availability"] = availability
            values.append(availability)
        row["mean"] = float(np.mean(values))
        return row

    for size in fleet_sizes:
        rows.append(evaluate(random_constellation(size, rng), size, "random"))
    if include_structured:
        rows.append(evaluate(iridium_like(), 66, "walker-star"))
    return rows


def resilience_sweep(failure_fractions: Sequence[float] = (
                         0.0, 0.1, 0.2, 0.3, 0.5),
                     epochs: int = 4,
                     seed: int = 41) -> List[Dict]:
    """Graceful degradation under satellite failures (Fig 2(c) caption).

    Starts from the 66-satellite reference fleet (which carries
    redundancy beyond bare coverage) and fails a random fraction;
    availability at the sample sites shows how much failure the margin
    absorbs before service collapses.

    This is the *static* mode of the :mod:`repro.faults` machinery: each
    fraction becomes one permanent, correlated satellite outage applied
    at t=0 through a :class:`~repro.faults.inject.FaultInjector`, so the
    network under test is the full fleet with a fault mask rather than a
    pre-pruned copy.  The failed-index draws are unchanged from the
    original implementation, so seeded results carry over exactly.  For
    failures arriving *during* the run (with repair), see
    :func:`repro.experiments.resilience_dynamic.dynamic_resilience_sweep`.

    Returns:
        Rows of ``{"failed_fraction", "surviving", "mean_availability"}``.
    """
    from repro.faults.inject import FaultInjector
    from repro.faults.schedule import satellite_outage_event

    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    rng = np.random.default_rng(seed)
    stations = default_station_network()
    constellation = iridium_like()
    full_fleet = build_fleet(constellation, "resil", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(full_fleet, stations)
    times = np.linspace(0.0, 7200.0, epochs, endpoint=False)
    rows = []
    for fraction in failure_fractions:
        if not 0.0 <= fraction < 1.0:
            raise ValueError(
                f"failure fraction must be in [0, 1), got {fraction}"
            )
        failed_count = int(round(fraction * len(full_fleet)))
        failed = set(
            rng.choice(len(full_fleet), size=failed_count, replace=False)
        ) if failed_count else set()
        network.clear_fault_state()
        injector = FaultInjector(network)
        if failed:
            injector.apply(satellite_outage_event(
                [full_fleet[int(index)].satellite_id
                 for index in sorted(failed)],
                fault_id=f"static-loss-{fraction:g}",
            ))
        values = []
        for name, site in SAMPLE_SITES:
            user = UserTerminal(f"u-{name}", site, "resil",
                                min_elevation_deg=10.0)
            values.append(_service_availability(network, user, times))
        rows.append({
            "failed_fraction": fraction,
            "surviving": len(full_fleet) - len(failed),
            "mean_availability": float(np.mean(values)),
        })
    network.clear_fault_state()
    return rows
