"""Provider-mix experiment (paper Discussion, Q1).

"What is the precise mix of small and big satellite players that are
needed to realize OpenSpace?  Defining these parameters requires
simulating the different kinds of satellites that could be deployed as
part of this system, including their technical diversity and hypothetical
formations, and modelling a potential user base along with potential user
traffic patterns.  This would require extensive simulation tools not
explored in this paper."

This driver is that simulation tool: it sweeps fleet compositions (how
many small RF-only operators vs medium laser-equipped operators), builds
the federated network, generates a heterogeneous traffic workload from a
modelled user base, pushes it through the flow simulator with QoS-aware
admission, and reports the service each mix can actually sell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.interop import SizeClass
from repro.economics.capex import constellation_budget
from repro.routing.qos import QosRequirement, QosRouter
from repro.simulation.flowsim import FlowSimulator
from repro.simulation.scenario import Scenario
from repro.simulation.traffic import PoissonFlowGenerator

#: QoS classes a provider advertises, mapped to per-link requirements.
QOS_CLASSES: Dict[str, QosRequirement] = {
    "best_effort": QosRequirement(),
    "standard": QosRequirement(min_bandwidth_bps=2e6),
    "premium": QosRequirement(min_bandwidth_bps=50e6),
}


@dataclass(frozen=True)
class MixResult:
    """Outcome for one fleet composition.

    Attributes:
        mix_name: Label, e.g. ``"2 small + 1 medium"``.
        small_operators / medium_operators: Composition.
        admission_by_class: QoS class -> admitted fraction of its flows.
        mean_fct_s: Mean completion time of admitted flows.
        capex_musd: Whole-fleet capital cost.
        premium_capacity_per_musd: Premium admission per capex $M — the
            cost-effectiveness figure a prospective entrant cares about.
    """

    mix_name: str
    small_operators: int
    medium_operators: int
    admission_by_class: Dict[str, float]
    mean_fct_s: float
    capex_musd: float
    premium_capacity_per_musd: float


def _qos_route_fn(snapshot_graph, qos_router: QosRouter):
    """A flowsim route_fn that admits flows per their QoS class."""
    def route(graph, flow, _active):
        requirement = QOS_CLASSES.get(flow.qos_class, QosRequirement())
        gateways = [
            node for node, data in graph.nodes(data=True)
            if data.get("kind") == "ground_station"
        ]
        best = None
        for gateway in gateways:
            result = qos_router.route(graph, flow.user_id, gateway,
                                      requirement)
            if not result.admitted:
                continue
            if (best is None
                    or result.metrics.total_delay_s < best.total_delay_s):
                best = result.metrics
        return best.path if best is not None else None
    return route


def provider_mix_sweep(mixes: Sequence[Tuple[int, int]] = ((3, 0), (2, 1),
                                                           (1, 2), (0, 3)),
                       satellite_count: int = 66,
                       flow_count: int = 60,
                       seed: int = 29) -> List[MixResult]:
    """Sweep small/medium operator compositions at fixed fleet size.

    Args:
        mixes: ``(small_operator_count, medium_operator_count)`` tuples;
            the fleet is split evenly among all operators, each operator's
            satellites matching its class (small = RF-only craft).
        satellite_count: Total federated fleet size.
        flow_count: Flows in the generated workload.
        seed: Root seed.

    Returns:
        One :class:`MixResult` per composition.
    """
    results = []
    for small, medium in mixes:
        operator_total = small + medium
        if operator_total < 1:
            raise ValueError("each mix needs at least one operator")
        names = tuple(
            [f"small-{i}" for i in range(small)]
            + [f"medium-{i}" for i in range(medium)]
        )
        sizes = tuple(
            [SizeClass.SMALL] * small + [SizeClass.MEDIUM] * medium
        )
        scenario = Scenario(
            name=f"mix-{small}s-{medium}m",
            satellite_count=satellite_count,
            operator_names=names,
            size_mix=sizes,
            user_count=12,
            seed=seed,
        )
        network = scenario.build_network()
        population = scenario.build_population()
        snap = network.snapshot(0.0, users=population.users)

        rng = np.random.default_rng(seed + small * 10 + medium)
        generator = PoissonFlowGenerator(
            population, arrival_rate_per_s=flow_count / 60.0, rng=rng,
            mean_flow_mb=8.0,
        )
        flows = generator.generate(60.0)[:flow_count]

        qos_router = QosRouter()
        sim = FlowSimulator(snap.graph, _qos_route_fn(snap.graph, qos_router))
        outcome = sim.run(flows)

        admitted_by_class: Dict[str, List[int]] = {}
        for record in outcome.completed:
            admitted_by_class.setdefault(record.spec.qos_class, []).append(1)
        for record in outcome.rejected:
            admitted_by_class.setdefault(record.spec.qos_class, []).append(0)
        admission = {
            qos: float(np.mean(flags))
            for qos, flags in sorted(admitted_by_class.items())
        }
        budget = constellation_budget(network.satellites)
        capex_musd = budget.total_usd / 1e6
        premium_rate = admission.get("premium", 0.0)
        results.append(MixResult(
            mix_name=f"{small} small + {medium} medium",
            small_operators=small,
            medium_operators=medium,
            admission_by_class=admission,
            mean_fct_s=outcome.mean_completion_time_s(),
            capex_musd=capex_musd,
            premium_capacity_per_musd=premium_rate / capex_musd * 1000.0,
        ))
    return results
