"""Figure 2 regeneration (the paper's entire quantitative evaluation).

* **2(a)** — the simulated OpenSpace constellation: an Iridium-like Walker
  Star (66 satellites, 780 km, 6 near-polar planes) "achiev[ing] global
  coverage while maintaining inter-satellite distances and trajectories
  that allow for simple and sustained ISLs."
* **2(b)** — propagation latency vs constellation size: latency falls
  sharply up to ~25 satellites then plateaus around 30 ms; about four
  satellites are the minimum for any connectivity.
* **2(c)** — coverage vs constellation size: total earth coverage around
  50 satellites; extra satellites buy redundancy.

Methodology follows the paper: fixed user and ground-station coordinates,
randomly distributed satellite orbital paths, shortest path between the
pickup satellite and the relay satellite, path length -> latency, and the
worst-case overlap rule for coverage (with the union estimate reported
alongside; see EXPERIMENTS.md for the estimator discussion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro import obs as _obs
from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.constants import (
    IRIDIUM_ALTITUDE_KM,
    SPEED_OF_LIGHT_KM_S,
)
from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.visibility import (
    cluster_coverage_fraction,
    coverage_fraction,
    elevation_angles,
    line_of_sight_mask,
    pairwise_line_of_sight,
    pairwise_slant_ranges,
    worst_case_coverage_fraction,
)
from repro.orbits.walker import iridium_like, random_constellation
from repro.parallel import derive_seed, run_grid
from repro.phy.rf import standard_sband_isl_terminal
from repro.routing.csr import BACKEND_CSR, resolve_backend
from repro.simulation.batched import ground_eci_track, merge_trial_epochs
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import SeriesCollector

#: Engine names accepted by the figure-2(b) driver.
ENGINES = ("scalar", "batched")

#: The paper's fixed endpoints: a user in an underserved region and a
#: gateway on another continent (exact coordinates are not given in the
#: paper; these choices are documented in EXPERIMENTS.md).
DEFAULT_USER_SITE = GeodeticPoint(-1.29, 36.82, 0.0)      # Nairobi
DEFAULT_GATEWAY_SITE = GeodeticPoint(50.11, 8.68, 0.0)    # Frankfurt


@dataclass
class ConstellationReport:
    """Figure 2(a): the reference constellation's headline properties.

    Attributes:
        name: Constellation label.
        satellite_count: Total satellites.
        plane_count: Orbital planes.
        altitude_km: Constellation altitude.
        inclination_deg: Plane inclination.
        isl_count: Established ISLs at epoch.
        mean_isl_distance_km: Mean established-ISL slant range.
        max_isl_distance_km: Longest established ISL.
        connected: Whether the ISL graph is a single component.
        coverage_union: Footprint-union coverage fraction.
        coverage_worst_case: Paper-rule (pairwise overlap) coverage.
    """

    name: str
    satellite_count: int
    plane_count: int
    altitude_km: float
    inclination_deg: float
    isl_count: int
    mean_isl_distance_km: float
    max_isl_distance_km: float
    connected: bool
    coverage_union: float
    coverage_worst_case: float


def figure_2a_constellation(time_s: float = 0.0) -> ConstellationReport:
    """Build and characterize the paper's reference constellation."""
    with _obs.span("experiment.figure2a", time_s=time_s):
        return _figure_2a_constellation(time_s)


def _figure_2a_constellation(time_s: float) -> ConstellationReport:
    constellation = iridium_like()
    positions = constellation.positions_at(time_s)
    ids = [f"sat{i}" for i in range(len(constellation))]
    nodes = [
        IslNode(ids[i], [standard_sband_isl_terminal()], max_degree=4)
        for i in range(len(constellation))
    ]
    builder = IslTopologyBuilder(nodes)
    snap = builder.snapshot(time_s, dict(zip(ids, positions)))
    distances = [
        data["link"].distance_km for _, _, data in snap.graph.edges(data=True)
    ]
    elements = constellation.elements[0]
    return ConstellationReport(
        name=constellation.name,
        satellite_count=len(constellation),
        plane_count=constellation.plane_count,
        altitude_km=elements.altitude_km,
        inclination_deg=math.degrees(elements.inclination_rad),
        isl_count=snap.link_count,
        mean_isl_distance_km=float(np.mean(distances)) if distances else 0.0,
        max_isl_distance_km=float(np.max(distances)) if distances else 0.0,
        connected=nx.is_connected(snap.graph),
        coverage_union=coverage_fraction(positions, elements.altitude_km),
        coverage_worst_case=worst_case_coverage_fraction(
            positions, elements.altitude_km
        ),
    )


def _relay_latency_s(positions: np.ndarray, user_eci: np.ndarray,
                     gateway_eci: np.ndarray,
                     min_elevation_deg: float = 10.0,
                     max_isl_range_km: float = 6000.0) -> Optional[float]:
    """The paper's Figure 2(b) measurement for one constellation state.

    Shortest propagation path: user -> pickup satellite -> (ISLs) ->
    relay satellite -> ground station.  Pure geometry — every
    line-of-sight pair within ISL range is a usable relay hop, matching
    the paper's "simplified simulation".

    Returns None when the user or gateway sees no satellite, or the relay
    graph does not connect them.
    """
    count = positions.shape[0]
    mask_rad = math.radians(min_elevation_deg)
    graph = nx.Graph()
    graph.add_node("user")
    graph.add_node("gateway")
    graph.add_nodes_from(range(count))
    # Access edges and the full relay mesh come from vectorized
    # elevation/range/line-of-sight passes; only graph assembly loops.
    for endpoint, ground_eci in (("user", user_eci), ("gateway", gateway_eci)):
        elevations = elevation_angles(ground_eci, positions)
        deltas = positions - np.asarray(ground_eci, dtype=float)
        ranges = np.sqrt((deltas * deltas).sum(axis=-1))
        for i in np.nonzero(elevations >= mask_rad)[0]:
            graph.add_edge(endpoint, int(i),
                           delay_s=float(ranges[i]) / SPEED_OF_LIGHT_KM_S)
    if count >= 2:
        distances = pairwise_slant_ranges(positions)
        feasible = (
            (distances <= max_isl_range_km)
            & pairwise_line_of_sight(positions)
        )
        rows_idx, cols_idx = np.triu_indices(count, k=1)
        keep = feasible[rows_idx, cols_idx]
        for i, j in zip(rows_idx[keep], cols_idx[keep]):
            graph.add_edge(int(i), int(j),
                           delay_s=float(distances[i, j]) / SPEED_OF_LIGHT_KM_S)
    with _obs.span("routing.relay.shortest_path",
                   nodes=graph.number_of_nodes(),
                   edges=graph.number_of_edges()):
        try:
            return nx.dijkstra_path_length(graph, "user", "gateway",
                                           weight="delay_s")
        except nx.NetworkXNoPath:
            return None


def _relay_latency_batch_s(positions_all: np.ndarray,
                           user_ecis: np.ndarray,
                           gateway_ecis: np.ndarray,
                           min_elevation_deg: float = 10.0,
                           max_isl_range_km: float = 6000.0) -> np.ndarray:
    """All epochs of one trial's relay measurement in one csgraph call.

    Builds a block-diagonal CSR matrix — one disjoint relay graph per
    epoch, ``N + 2`` nodes each (satellites, user, gateway) — straight
    from the vectorized elevation/range/line-of-sight masks, with no
    intermediate ``networkx`` graph, then answers every epoch's
    user→gateway distance with one multi-source Dijkstra.  Per-edge
    weights are elementwise ``range / c`` divisions of the same float64
    values the scalar path uses, so distances are bit-identical to
    :func:`_relay_latency_s`.

    Args:
        positions_all: ``(N, K, 3)`` satellite ECI positions over epochs.
        user_ecis: ``(K, 3)`` user ECI positions per epoch.
        gateway_ecis: ``(K, 3)`` gateway positions per epoch.

    Returns:
        ``(K,)`` one-way latencies in seconds; ``inf`` where unreachable.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    count, epochs = positions_all.shape[0], positions_all.shape[1]
    stride = count + 2
    mask_rad = math.radians(min_elevation_deg)
    # (K, N, 3) with the epoch axis leading; every geometry pass below
    # broadcasts over it, so no Python work scales with epoch count.
    pts = np.ascontiguousarray(positions_all.transpose(1, 0, 2))
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    data: List[np.ndarray] = []
    for offset, ground_ecis in ((count, user_ecis), (count + 1, gateway_ecis)):
        ground = np.asarray(ground_ecis, dtype=float)[:, None, :]
        elevations = elevation_angles(ground, pts)
        deltas = pts - ground
        ranges = np.sqrt((deltas * deltas).sum(axis=-1))
        vis_epoch, vis_sat = np.nonzero(elevations >= mask_rad)
        if vis_epoch.size == 0:
            continue
        ground_nodes = vis_epoch * stride + offset
        sat_nodes = vis_epoch * stride + vis_sat
        weights = ranges[vis_epoch, vis_sat] / SPEED_OF_LIGHT_KM_S
        rows.extend((ground_nodes, sat_nodes))
        cols.extend((sat_nodes, ground_nodes))
        data.extend((weights, weights))
    if count >= 2:
        # Candidate pairs: upper triangle only, with the line-of-sight
        # test (the expensive segment geometry) restricted to pairs that
        # already pass the range gate.  Same elementwise float ops on the
        # same values as the per-epoch scalar path, so same bits.
        rows_idx, cols_idx = np.triu_indices(count, k=1)
        diff = pts[:, rows_idx, :] - pts[:, cols_idx, :]
        distances = np.sqrt((diff * diff).sum(axis=-1))
        in_epoch, in_pair = np.nonzero(distances <= max_isl_range_km)
        clear = line_of_sight_mask(pts[in_epoch, rows_idx[in_pair]],
                                   pts[in_epoch, cols_idx[in_pair]])
        keep_epoch, keep_pair = in_epoch[clear], in_pair[clear]
        isl_rows = keep_epoch * stride + rows_idx[keep_pair]
        isl_cols = keep_epoch * stride + cols_idx[keep_pair]
        weights = distances[keep_epoch, keep_pair] / SPEED_OF_LIGHT_KM_S
        rows.extend((isl_rows, isl_cols))
        cols.extend((isl_cols, isl_rows))
        data.extend((weights, weights))
    size = epochs * stride
    if rows:
        row_arr = np.concatenate(rows)
        col_arr = np.concatenate(cols)
        data_arr = np.concatenate(data).astype(np.float64)
    else:
        row_arr = col_arr = np.empty(0, dtype=np.int64)
        data_arr = np.empty(0, dtype=np.float64)
    matrix = csr_matrix((data_arr, (row_arr, col_arr)), shape=(size, size))
    sources = np.arange(epochs) * stride + count
    with _obs.span("routing.relay.shortest_path_batch",
                   epochs=epochs, nodes=size, edges=int(data_arr.size // 2)):
        dist = _csgraph_dijkstra(matrix, directed=True, indices=sources)
    return dist[np.arange(epochs), sources + 1]


def _figure_2b_point(args: tuple) -> Dict:
    """One Figure 2(b) sweep point: all trials/epochs for one count.

    Module-level so :func:`repro.parallel.run_grid` can pickle it into
    worker processes; all randomness comes from the point's derived
    seed, so results are identical at any job count.
    """
    (count, trials, epochs, point_seed, altitude_km,
     user_site, gateway_site, backend, engine) = args
    rng = np.random.default_rng(point_seed)
    epoch_times = np.linspace(0.0, 86400.0, epochs, endpoint=False)
    recorder = _obs.active()
    samples: List[float] = []
    reached = 0
    total = 0

    if engine == "batched":
        # The pure tensor pipeline: draw every trial's constellation (same
        # RNG call order as the scalar walk), stack all trials' epoch
        # tensors along the epoch axis, and answer every (trial, epoch)
        # relay measurement with ONE block-diagonal csgraph call.  No
        # discrete-event engine runs; samples land in the same
        # trial-major, epoch-ascending order the event loop would emit,
        # and every float is bit-identical to the scalar engine's.
        with recorder.span("experiment.figure2b.sweep_point",
                           satellites=count, trials=trials, epochs=epochs,
                           backend=backend, engine=engine):
            trial_tensors = []
            for _ in range(trials):
                constellation = random_constellation(count, rng,
                                                     altitude_km=altitude_km)
                with recorder.phase("figure2b.propagate"):
                    trial_tensors.append(
                        constellation.positions_over(epoch_times)
                    )
            positions_merged = merge_trial_epochs(trial_tensors)
            user_track = ground_eci_track(user_site, epoch_times)
            gateway_track = ground_eci_track(gateway_site, epoch_times)
            with recorder.phase("figure2b.relay_path"):
                latencies = _relay_latency_batch_s(
                    positions_merged,
                    np.tile(user_track, (trials, 1)),
                    np.tile(gateway_track, (trials, 1)),
                    min_elevation_deg=0.0,
                )
            for value in latencies:
                total += 1
                latency = float(value)
                if math.isfinite(latency):
                    samples.append(latency * 1000.0)
                    reached += 1
                    if recorder.enabled:
                        recorder.observe("figure2b.latency_ms",
                                         latency * 1000.0, label=str(count))
        return {"count": count, "samples": samples,
                "reached": reached, "total": total}

    def sample_epoch(positions: np.ndarray, time_s: float,
                     precomputed_s: Optional[float] = None) -> None:
        """Evaluate one (constellation, epoch) relay measurement."""
        nonlocal reached, total
        total += 1
        if precomputed_s is not None:
            # CSR backend: this epoch's latency came from the trial's
            # batched csgraph call; the event just records it.
            latency = precomputed_s if math.isfinite(precomputed_s) else None
        else:
            user_eci = ecef_to_eci(user_site.ecef(), time_s)
            gateway_eci = ecef_to_eci(gateway_site.ecef(), time_s)
            with recorder.phase("figure2b.relay_path"):
                latency = _relay_latency_s(positions, user_eci, gateway_eci,
                                           min_elevation_deg=0.0)
        if latency is not None:
            samples.append(latency * 1000.0)
            reached += 1
            if recorder.enabled:
                recorder.observe("figure2b.latency_ms",
                                 latency * 1000.0, label=str(count))

    use_csr = backend == BACKEND_CSR
    with recorder.span("experiment.figure2b.sweep_point",
                       satellites=count, trials=trials, epochs=epochs,
                       backend=backend):
        for _ in range(trials):
            constellation = random_constellation(count, rng,
                                                 altitude_km=altitude_km)
            # One broadcast propagation covers every epoch of the trial.
            with recorder.phase("figure2b.propagate"):
                positions_all = constellation.positions_over(epoch_times)
            batch_latencies = None
            if use_csr:
                user_ecis = np.stack([
                    ecef_to_eci(user_site.ecef(), float(t))
                    for t in epoch_times
                ])
                gateway_ecis = np.stack([
                    ecef_to_eci(gateway_site.ecef(), float(t))
                    for t in epoch_times
                ])
                with recorder.phase("figure2b.relay_path"):
                    batch_latencies = _relay_latency_batch_s(
                        positions_all, user_ecis, gateway_ecis,
                        min_elevation_deg=0.0,
                    )
            # The epoch samples run as discrete events so the sweep
            # exercises (and is measured through) the same engine the
            # protocol simulations use.
            engine = SimulationEngine()
            for k, time_s in enumerate(epoch_times):
                precomputed = (
                    float(batch_latencies[k])
                    if batch_latencies is not None else None
                )
                engine.schedule(
                    float(time_s),
                    lambda pos=positions_all[:, k, :], t=float(time_s),
                        pre=precomputed: sample_epoch(pos, t, pre),
                    label="figure2b.epoch",
                )
            engine.run()
    return {"count": count, "samples": samples,
            "reached": reached, "total": total}


def figure_2b_latency(satellite_counts: Sequence[int] = tuple(
                          list(range(4, 30, 3)) + [35, 45, 55, 70]),
                      trials: int = 4,
                      epochs: int = 6,
                      seed: int = 42,
                      altitude_km: float = IRIDIUM_ALTITUDE_KM,
                      user_site: GeodeticPoint = DEFAULT_USER_SITE,
                      gateway_site: GeodeticPoint = DEFAULT_GATEWAY_SITE,
                      jobs: int = 1,
                      backend: Optional[str] = None,
                      engine: str = "scalar") -> Dict:
    """Propagation latency vs constellation size (paper Figure 2(b)).

    For each satellite count, ``trials`` random constellations are drawn;
    each is sampled at ``epochs`` instants spread over one day (satellites
    orbit and the Earth rotates, so a satellite eventually "orbit[s] in
    range of the user's or ground station's location" — the paper's
    minimum-four-satellites guarantee is a temporal statement).  Latency is
    collected over the reachable epochs; reachability is the fraction of
    epochs with any relay path.

    Each satellite count is an independent sweep point with its own
    derived seed, so ``jobs > 1`` fans points across processes without
    changing any value in the result.  ``backend`` picks the shortest-path
    implementation (``"csr"`` batches every epoch of a trial into one
    :func:`scipy.sparse.csgraph.dijkstra` call; ``"networkx"`` is the
    per-epoch reference); both produce bit-identical latencies.

    ``engine`` selects how a sweep point executes: ``"scalar"`` walks
    trials through the discrete-event engine (the oracle), ``"batched"``
    flattens all of a point's trials and epochs into one tensor pipeline
    — one merged ``(sats, trials * epochs, 3)`` position tensor, one
    vectorized geometry pass, one block-diagonal shortest-path call —
    and requires the CSR backend.  Both engines return bit-identical
    results (the benchmark digest gate holds them together).

    Returns:
        ``{"series": [...rows...], "reachability": {count: fraction}}``
        where each series row is ``{"x", "mean", "p50", "p95", "n"}`` with
        latency in milliseconds.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    # Resolve the backend here so worker processes get a concrete name in
    # their args rather than relying on inheriting the parent's default.
    backend = resolve_backend(backend)
    if engine == "batched" and backend != BACKEND_CSR:
        raise ValueError(
            "the batched engine needs the csr backend (scipy); "
            f"resolved backend is {backend!r}"
        )
    points = [
        (int(count), trials, epochs,
         derive_seed(seed, "figure2b", int(count)),
         altitude_km, user_site, gateway_site, backend, engine)
        for count in satellite_counts
    ]
    results = run_grid(_figure_2b_point, points, jobs=jobs, label="figure2b")
    series = SeriesCollector("latency_ms")
    reachability: Dict[int, float] = {}
    recorder = _obs.active()
    for result in results:
        count = result["count"]
        for value in result["samples"]:
            series.add(count, value)
        if recorder.enabled:
            recorder.count("figure2b.epochs", result["total"],
                           label=str(count))
            recorder.count("figure2b.reached", result["reached"],
                           label=str(count))
        reachability[count] = result["reached"] / result["total"]
    rows = []
    for x in series.xs():
        stats = series.summary_at(x)
        rows.append({
            "x": x, "mean": stats.mean, "p50": stats.p50,
            "p95": stats.p95, "n": stats.count,
        })
    return {"series": rows, "reachability": reachability}


def _figure_2c_point(args: tuple) -> Dict:
    """One Figure 2(c) sweep point (picklable; seed derived per point)."""
    count, trials, point_seed, altitude_km = args
    rng = np.random.default_rng(point_seed)
    recorder = _obs.active()
    union_vals, worst_vals, cluster_vals = [], [], []
    with recorder.span("experiment.figure2c.sweep_point",
                       satellites=count, trials=trials):
        for _ in range(trials):
            constellation = random_constellation(count, rng,
                                                 altitude_km=altitude_km)
            positions = constellation.positions_at(0.0)
            with recorder.phase("figure2c.coverage"):
                union_vals.append(
                    coverage_fraction(positions, altitude_km)
                )
                worst_vals.append(
                    worst_case_coverage_fraction(positions, altitude_km)
                )
                cluster_vals.append(
                    cluster_coverage_fraction(positions, altitude_km)
                )
    return {
        "satellites": count,
        "union": float(np.mean(union_vals)),
        "worst_case": float(np.mean(worst_vals)),
        "cluster": float(np.mean(cluster_vals)),
    }


def figure_2c_coverage(satellite_counts: Sequence[int] = tuple(
                           [1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 50, 60, 70, 80]),
                       trials: int = 6,
                       seed: int = 42,
                       altitude_km: float = IRIDIUM_ALTITUDE_KM,
                       jobs: int = 1) -> List[Dict]:
    """Coverage vs constellation size (paper Figure 2(c)).

    Reports three estimators per count:

    * ``union`` — true footprint-union coverage (grid estimate); this is
      the series whose shape matches the paper's curve, reaching total
      earth coverage around 50 satellites;
    * ``worst_case`` — the paper's stated pairwise-overlap rule, which
      saturates at the disjoint-cap packing limit;
    * ``cluster`` — the strictest transitive reading (sensitivity bound).

    Each count is an independent sweep point with a derived seed;
    ``jobs > 1`` fans points across processes without changing values.

    Returns:
        One row per satellite count:
        ``{"satellites", "union", "worst_case", "cluster"}`` (trial means).
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    points = [
        (int(count), trials, derive_seed(seed, "figure2c", int(count)),
         altitude_km)
        for count in satellite_counts
    ]
    rows = run_grid(_figure_2c_point, points, jobs=jobs, label="figure2c")
    recorder = _obs.active()
    if recorder.enabled:
        for row in rows:
            recorder.count("figure2c.trials", trials,
                           label=str(row["satellites"]))
    return rows
