"""Experiment drivers: one function per paper figure plus ablations.

Every figure in the paper's evaluation (Figure 2a/2b/2c) has a driver
here returning plain data structures; the benchmark harness and the
examples print them.  EXPERIMENTS.md records measured-vs-paper values.
"""

from repro.experiments.figure2 import (
    ConstellationReport,
    figure_2a_constellation,
    figure_2b_latency,
    figure_2c_coverage,
)
from repro.experiments.provider_mix import MixResult, provider_mix_sweep
from repro.experiments.export import figure_2b_to_csv, rows_to_csv
from repro.experiments.availability import (
    availability_sweep,
    resilience_sweep,
)
from repro.experiments.resilience_dynamic import (
    dynamic_resilience_sweep,
    run_fault_scenario,
)
from repro.experiments.sensitivity import (
    coverage_altitude_sensitivity,
    coverage_mask_sensitivity,
    latency_site_sensitivity,
)
from repro.experiments.ablations import (
    ablation_economics,
    ablation_federation,
    ablation_handover,
    ablation_isl_mix,
    ablation_mac,
)
from repro.experiments.demand import demand_sweep
from repro.experiments.scale import scale_sweep

__all__ = [
    "ConstellationReport",
    "figure_2a_constellation",
    "figure_2b_latency",
    "figure_2c_coverage",
    "ablation_economics",
    "ablation_federation",
    "ablation_handover",
    "ablation_isl_mix",
    "ablation_mac",
    "MixResult",
    "provider_mix_sweep",
    "coverage_altitude_sensitivity",
    "coverage_mask_sensitivity",
    "latency_site_sensitivity",
    "availability_sweep",
    "demand_sweep",
    "resilience_sweep",
    "scale_sweep",
    "dynamic_resilience_sweep",
    "run_fault_scenario",
    "figure_2b_to_csv",
    "rows_to_csv",
]
