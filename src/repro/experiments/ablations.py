"""Ablation experiments for the design axes the paper discusses.

Each function sweeps one design choice and returns plain rows the
benchmark harness prints:

* :func:`ablation_isl_mix` — RF-only vs mixed vs all-laser fleets (§2.1's
  capability/cost trade).
* :func:`ablation_mac` — CSMA/CA vs TDMA overhead and delay (§2.1's MAC
  discussion).
* :func:`ablation_handover` — predictive successor handover vs
  re-authentication (§2.2).
* :func:`ablation_economics` — ledger cross-verification, settlement, and
  peering emergence (§3).
* :func:`ablation_federation` — many small operators vs one monolith at
  fixed fleet size (§4/§5's diversity question).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

import numpy as np

from repro import obs as _obs
from repro.core.handover import HandoverScheme, HandoverSimulator
from repro.core.interop import SizeClass
from repro.economics.capex import constellation_budget
from repro.economics.ledger import TrafficLedger
from repro.economics.peering import PeeringAdvisor
from repro.economics.settlement import RateCard, SettlementEngine
from repro.ground.station import default_station_network
from repro.mac.aloha import AlohaConfig, SlottedAlohaSimulator
from repro.mac.csma import CsmaCaConfig, CsmaCaSimulator
from repro.mac.tdma import TdmaConfig, TdmaSimulator
from repro.orbits.contact import contact_windows
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like
from repro.routing.qos import QosRequirement, QosRouter
from repro.simulation.scenario import Scenario


def _traced(span_name: str):
    """Wrap an ablation driver in a named span (no-op when obs is off)."""
    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            with _obs.span(span_name):
                return fn(*args, **kwargs)
        return inner
    return wrap


@_traced("experiment.ablation.isl_mix")
def ablation_isl_mix(laser_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                     satellite_count: int = 66,
                     seed: int = 7) -> List[Dict]:
    """Fleet capability mix: fraction of laser-equipped satellites.

    For each mix, measures premium-class (50 Mbps bottleneck) admission
    rate between random satellite pairs, best-effort latency, and fleet
    capex — quantifying §2.1's finding that laser terminals buy QoS
    capacity at ~$500k per terminal.

    Returns:
        Rows of ``{"laser_fraction", "premium_admission", "mean_latency_ms",
        "fleet_capex_musd"}``.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for fraction in laser_fractions:
        size_mix = _size_mix_for_fraction(fraction)
        scenario = Scenario(
            name=f"isl-mix-{fraction:.2f}",
            satellite_count=satellite_count,
            operator_names=("op-a", "op-b", "op-c"),
            size_mix=size_mix,
            seed=seed,
            sample_times_s=(0.0,),
        )
        network = scenario.build_network()
        snap = network.snapshot(0.0)
        router = QosRouter()
        sat_ids = [s.satellite_id for s in network.satellites]
        premium = QosRequirement(min_bandwidth_bps=50e6)
        admitted = 0
        latencies = []
        pair_count = 40
        for _ in range(pair_count):
            src, dst = rng.choice(sat_ids, size=2, replace=False)
            result = router.route(snap.graph, str(src), str(dst), premium)
            if result.admitted:
                admitted += 1
            best_effort = router.route(
                snap.graph, str(src), str(dst), QosRequirement()
            )
            if best_effort.admitted:
                latencies.append(best_effort.metrics.total_delay_ms)
        budget = constellation_budget(network.satellites)
        rows.append({
            "laser_fraction": fraction,
            "premium_admission": admitted / pair_count,
            "mean_latency_ms": float(np.mean(latencies)) if latencies else float("nan"),
            "fleet_capex_musd": budget.total_usd / 1e6,
        })
    return rows


def _size_mix_for_fraction(fraction: float) -> List[SizeClass]:
    """A size-class cycle approximating a laser-equipped fraction.

    SMALL craft are RF-only; MEDIUM and LARGE carry lasers.  A cycle of
    length 4 gives quarter-step granularity.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    laser_slots = round(fraction * 4)
    mix = [SizeClass.MEDIUM] * laser_slots + [SizeClass.SMALL] * (4 - laser_slots)
    return mix or [SizeClass.SMALL]


@_traced("experiment.ablation.mac")
def ablation_mac(station_counts: Sequence[int] = (2, 4, 8, 16),
                 arrival_rate_fps: float = 0.4,
                 duration_s: float = 400.0,
                 seed: int = 11) -> List[Dict]:
    """CSMA/CA vs TDMA vs slotted ALOHA under rising contention (§2.1).

    Returns:
        Rows of ``{"stations", "csma_delay_ms", "csma_delivery",
        "csma_goodput", "tdma_delay_ms", "tdma_delivery", "tdma_goodput",
        "aloha_delivery", "aloha_goodput"}``.
    """
    rows = []
    for count in station_counts:
        csma = CsmaCaSimulator(
            count, CsmaCaConfig(), arrival_rate_fps,
            np.random.default_rng(seed),
        ).run(duration_s)
        tdma = TdmaSimulator(
            count, TdmaConfig(), arrival_rate_fps,
            np.random.default_rng(seed),
        ).run(duration_s)
        aloha = SlottedAlohaSimulator(
            count, AlohaConfig(), arrival_rate_fps,
            np.random.default_rng(seed),
        ).run(duration_s)
        rows.append({
            "stations": count,
            "csma_delay_ms": csma.mean_delay_s * 1000.0,
            "csma_delivery": csma.delivery_ratio,
            "csma_goodput": csma.goodput_efficiency,
            "tdma_delay_ms": tdma.mean_delay_s * 1000.0,
            "tdma_delivery": tdma.delivery_ratio,
            "tdma_goodput": tdma.goodput_efficiency,
            "aloha_delivery": aloha.delivery_ratio,
            "aloha_goodput": aloha.goodput_efficiency,
        })
    return rows


@_traced("experiment.ablation.handover")
def ablation_handover(duration_s: float = 5400.0,
                      user_site: GeodeticPoint = GeodeticPoint(-1.29, 36.82),
                      auth_round_trip_s: float = 0.180) -> Dict:
    """Predictive vs re-authenticating handover over a real pass schedule.

    Contact windows come from the Iridium-like constellation over one and
    a half orbits; both schemes replay the same schedule.

    Returns:
        ``{"handover_count", "predictive": {...}, "reauthenticate": {...},
        "interruption_ratio"}`` where each scheme dict holds
        ``total_interruption_s``, ``availability`` and
        ``mean_interruption_ms``.
    """
    constellation = iridium_like()
    windows = contact_windows(
        user_site, constellation.propagators(), 0.0, duration_s,
        step_s=10.0, min_elevation_deg=25.0,
    )
    simulator = HandoverSimulator(auth_round_trip_s=auth_round_trip_s)
    timelines = simulator.compare_schemes(windows, 0.0, duration_s)
    predictive = timelines[HandoverScheme.PREDICTIVE.value]
    reauth = timelines[HandoverScheme.REAUTHENTICATE.value]
    ratio = (
        reauth.total_interruption_s / predictive.total_interruption_s
        if predictive.total_interruption_s > 0.0 else float("inf")
    )
    return {
        "handover_count": predictive.handover_count,
        "predictive": _timeline_row(predictive),
        "reauthenticate": _timeline_row(reauth),
        "interruption_ratio": ratio,
    }


def _timeline_row(timeline) -> Dict:
    return {
        "total_interruption_s": timeline.total_interruption_s,
        "availability": timeline.availability,
        "mean_interruption_ms": timeline.mean_interruption_s * 1000.0,
    }


@_traced("experiment.ablation.economics")
def ablation_economics(transfer_count: int = 200, seed: int = 3) -> Dict:
    """Ledger settlement and peering emergence over synthetic traffic (§3).

    Three ISPs exchange transit traffic with one fraudulent over-reporter;
    the ledger must (1) catch every fraudulent segment, (2) settle the
    honest matrix, and (3) recommend peering for the symmetric pair.

    Returns:
        ``{"mismatches_caught", "fraud_injected", "invoices",
        "net_positions", "peering_recommended"}``.
    """
    rng = np.random.default_rng(seed)
    ledger = TrafficLedger()
    isps = ["isp-a", "isp-b", "isp-c"]
    fraud_injected = 0
    for index in range(transfer_count):
        source = isps[index % 3]
        carriers = [isp for isp in isps if isp != source]
        # isp-a and isp-b exchange symmetric volumes; isp-c mostly sources.
        if source == "isp-c":
            path = [str(rng.choice(carriers))]
        else:
            path = [carriers[0]] if rng.random() < 0.8 else carriers
        gigabytes = float(rng.uniform(0.5, 3.0))
        misreport = None
        if "isp-c" in path and rng.random() < 0.10:
            misreport = {"isp-c": gigabytes * 1.5}  # fraudulent inflation
            fraud_injected += 1
        ledger.file_path_transfer(
            f"t{index}", source, path, gigabytes, float(index), misreport
        )
    mismatches = ledger.cross_verify()
    engine = SettlementEngine(rate_cards={
        isp: RateCard(carrier=isp) for isp in isps
    })
    invoices = engine.invoices_from_ledger(ledger)
    advisor = PeeringAdvisor(min_mutual_gb=20.0)
    recommendations = advisor.recommendations(ledger)
    return {
        "mismatches_caught": len(mismatches),
        "fraud_injected": fraud_injected,
        "invoices": len(invoices),
        "net_positions": engine.net_positions(invoices),
        "peering_recommended": [
            (r.isp_a, r.isp_b) for r in recommendations if r.recommended
        ],
    }


@_traced("experiment.ablation.federation")
def ablation_federation(operator_counts: Sequence[int] = (1, 2, 3, 6),
                        satellite_count: int = 66,
                        seed: int = 19) -> List[Dict]:
    """Many small collaborating operators vs one monolith (§4/§5).

    The fleet size is fixed; only ownership fragmentation varies.  With
    interoperability the fragmented fleet performs like the monolith —
    that equivalence *is* the OpenSpace thesis.  Without collaboration,
    each operator only uses its own satellites, and reachability
    collapses; both regimes are reported.

    Returns:
        Rows of ``{"operators", "federated_reachability",
        "federated_latency_ms", "solo_reachability", "per_operator_capex_musd"}``.
    """
    rows = []
    for count in operator_counts:
        names = tuple(f"op-{i}" for i in range(count))
        scenario = Scenario(
            name=f"federation-{count}",
            satellite_count=satellite_count,
            operator_names=names,
            size_mix=(SizeClass.MEDIUM,),
            user_count=16,
            seed=seed,
            sample_times_s=(0.0, 1800.0),
        )
        federated = scenario.run()
        solo = _solo_reachability(scenario)
        budget = constellation_budget(scenario.build_fleet())
        row = {
            "operators": count,
            "federated_reachability": federated.latency.reachability,
            "solo_reachability": solo,
            "per_operator_capex_musd": budget.total_usd / 1e6 / count,
        }
        if federated.latency.samples_s:
            row["federated_latency_ms"] = federated.latency.summary_ms().mean
        rows.append(row)
    return rows


#: Every design-axis ablation, in display order.  Each runs with its
#: default (seeded) arguments, so the set is safe to fan out.
ABLATION_NAMES = ("isl_mix", "mac", "handover", "economics", "federation")


def run_ablation(name: str):
    """Run one named ablation with default arguments (picklable entry).

    Args:
        name: One of :data:`ABLATION_NAMES`.

    Raises:
        KeyError: For unknown ablation names.
    """
    runners = {
        "isl_mix": ablation_isl_mix,
        "mac": ablation_mac,
        "handover": ablation_handover,
        "economics": ablation_economics,
        "federation": ablation_federation,
    }
    return runners[name]()


def run_all_ablations(jobs: int = 1) -> Dict[str, object]:
    """Run every ablation, optionally fanned out across processes.

    Each ablation is internally seeded, so results are identical at any
    job count.

    Returns:
        ``{name: result}`` in :data:`ABLATION_NAMES` order.
    """
    from repro.parallel import run_grid

    results = run_grid(run_ablation, list(ABLATION_NAMES), jobs=jobs,
                       label="ablations")
    return dict(zip(ABLATION_NAMES, results))


def _solo_reachability(scenario: Scenario) -> float:
    """Reachability when each user may only use its home operator's assets."""
    from repro.core.network import OpenSpaceNetwork

    fleet = scenario.build_fleet()
    stations = default_station_network()
    population = scenario.build_population()
    reached = 0
    total = 0
    operators = sorted({spec.owner for spec in fleet})
    networks = {}
    for owner in operators:
        own_fleet = [s for s in fleet if s.owner == owner]
        if own_fleet:
            networks[owner] = OpenSpaceNetwork(own_fleet, stations)
    for time_s in scenario.sample_times_s:
        for user in population.users:
            total += 1
            network = networks.get(user.home_provider)
            if network is None:
                continue
            snap = network.snapshot(time_s, users=[user])
            if snap.nearest_ground_station_route(user.user_id) is not None:
                reached += 1
    return reached / total if total else 0.0
