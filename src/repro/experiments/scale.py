"""Mega-constellation scale sweep: topology churn and delta-vs-full proof.

For every swept fleet size this experiment builds a Walker-Delta
constellation, walks one full orbital period in equal epochs, and builds
the network snapshot at each epoch twice: once through the incremental
delta path (:class:`repro.core.network.OpenSpaceNetwork` with
``snapshot_delta=True``, grid-pruned candidate discovery) and once as an
independent full rebuild.  Each row reports the topology-churn numbers
the delta machinery exploits (edges appeared/disappeared per epoch,
churn fraction, CSR structure reuses) plus a user-visible latency probe
(gateway-to-gateway shortest-path delay), and asserts the tentpole
invariant: the delta-built snapshot digest is byte-identical to the full
rebuild at every epoch.

Every row is a pure function of the arguments — no randomness — so the
sweep prints byte-identical rows at any ``--jobs`` count (the
``scale-smoke`` CI job diffs two runs and a ``--jobs 2`` run).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro import obs as _obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.orbits.walker import walker_delta
from repro.parallel import run_grid

FLEET_OWNER = "scale-fleet"

#: Latency probe endpoints: a transatlantic gateway pair from the
#: default station network (present in every snapshot's station set).
PROBE_STATIONS = ("gs-virginia", "gs-frankfurt")


def plane_count_for(satellites: int) -> int:
    """The divisor of ``satellites`` nearest the near-square plane count.

    Walker lattices need ``planes | satellites``; this snaps the
    ``sqrt(N/2)`` heuristic to the closest admissible divisor (ties go
    to the smaller plane count, deterministically).
    """
    if satellites < 1:
        raise ValueError(f"need at least one satellite, got {satellites}")
    target = math.sqrt(satellites / 2.0)
    divisors = [d for d in range(1, satellites + 1) if satellites % d == 0]
    return min(divisors, key=lambda d: (abs(d - target), d))


def _probe_latency_ms(graph: nx.Graph) -> float:
    """Shortest-path delay between the probe gateways, NaN if unreachable."""
    src, dst = PROBE_STATIONS
    if src not in graph or dst not in graph:
        return math.nan
    try:
        delay_s = nx.dijkstra_path_length(graph, src, dst, weight="delay_s")
    except nx.NetworkXNoPath:
        return math.nan
    return delay_s * 1000.0


def _scale_point(args: tuple) -> Dict:
    """One fleet size, self-contained for process-pool execution."""
    (satellites, epochs, max_range_km, spatial, delta_enabled,
     compare_digests) = args
    planes = plane_count_for(satellites)
    constellation = walker_delta(satellites, planes)
    period_s = next(iter(constellation)).period_s
    times = [k * period_s / epochs for k in range(epochs)]

    fleet = build_fleet(constellation, FLEET_OWNER, SizeClass.MEDIUM)
    stations = default_station_network()
    network = OpenSpaceNetwork(
        fleet, stations, max_isl_range_km=max_range_km,
        snapshot_delta=delta_enabled, spatial_index=spatial,
    )
    reference: Optional[OpenSpaceNetwork] = None
    if compare_digests:
        reference = OpenSpaceNetwork(
            fleet, stations, max_isl_range_km=max_range_km,
            snapshot_delta=False, spatial_index=spatial,
        )
        # Both networks must share one batched time grid: numpy's
        # vectorized trig can round the final ulp differently for
        # different array shapes, so digests only compare like-for-like
        # when both sides prime (or neither does).
        network.prime_positions(times)
        reference.prime_positions(times)

    edge_counts: List[int] = []
    churn: List[float] = []
    latencies: List[float] = []
    digests_match = True
    for t in times:
        snap = network.snapshot(t)
        edge_counts.append(snap.isl_snapshot.link_count)
        latencies.append(_probe_latency_ms(snap.graph))
        last = network.last_snapshot_delta
        if last is not None and last.isl is not None:
            churn.append(last.isl.churn_fraction)
        if reference is not None:
            if snap.digest() != reference.snapshot(t).digest():
                digests_match = False

    stats = network.delta_stats
    reachable = [ms for ms in latencies if ms == ms]
    _obs.active().count("experiment.scale.epochs", len(times))
    return {
        "satellites": int(satellites),
        "planes": int(planes),
        "epochs": int(epochs),
        "period_s": float(period_s),
        "mean_isl_edges": float(sum(edge_counts) / len(edge_counts)),
        "mean_degree": float(
            2.0 * sum(edge_counts) / len(edge_counts) / satellites
        ),
        "churn_mean": float(sum(churn) / len(churn)) if churn else 0.0,
        "churn_max": float(max(churn)) if churn else 0.0,
        "full_builds": int(stats["full_builds"]),
        "delta_builds": int(stats["delta_builds"]),
        "edges_appeared": int(stats["edges_appeared"]),
        "edges_disappeared": int(stats["edges_disappeared"]),
        "structure_reuses": int(stats["structure_reuses"]),
        "probe_latency_ms": (
            float(sum(reachable) / len(reachable)) if reachable
            else math.nan
        ),
        "probe_reachable_epochs": len(reachable),
        "digests_match": bool(digests_match) if compare_digests else None,
    }


def scale_sweep(satellite_counts: Sequence[int] = (48, 180),
                epochs: int = 6,
                max_range_km: float = 3000.0,
                spatial: Optional[bool] = None,
                delta: bool = True,
                compare_digests: bool = True,
                jobs: int = 1) -> List[Dict]:
    """Topology churn and delta-vs-full digests vs constellation size.

    Args:
        satellite_counts: Walker-Delta fleet sizes to sweep.
        epochs: Snapshot epochs spread over one full orbital period.
        max_range_km: Hard ISL range limit.
        spatial: ``True`` forces grid-pruned candidate discovery,
            ``False`` forces all-pairs, ``None`` auto-switches on fleet
            size.  Results are identical either way.
        delta: Build snapshots through the incremental delta path
            (``False`` measures the full-rebuild-every-epoch baseline).
        compare_digests: Also build every epoch through an independent
            full-rebuild network and assert byte-identical digests
            (doubles the work; the point of the exercise).
        jobs: Worker processes; every job count yields identical rows.

    Returns:
        One row dict per fleet size.
    """
    if not satellite_counts:
        raise ValueError("need at least one fleet size to sweep")
    for count in satellite_counts:
        if count < 2:
            raise ValueError(f"need at least two satellites, got {count}")
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    if max_range_km <= 0.0:
        raise ValueError(f"range must be positive, got {max_range_km}")

    points = [
        (int(count), int(epochs), float(max_range_km), spatial,
         bool(delta), bool(compare_digests))
        for count in satellite_counts
    ]
    with _obs.active().span("experiment.scale.sweep", points=len(points)):
        return run_grid(_scale_point, points, jobs=jobs, label="scale")
