"""Diurnal demand sweep: million-user fluid load vs constellation size.

For every ``satellite count x UTC hour`` grid point this sweep builds a
Walker-Delta fleet, aggregates the modeled subscriber population onto an
equal-area ground grid (:mod:`repro.demand.grid`), applies the local-
solar-time diurnal curve and QoS flow mix (:mod:`repro.demand.profile`),
and drives the offered load through the vectorized fluid engine
(:mod:`repro.demand.fluid`): one batched multi-source Dijkstra maps
every loaded cell to its serving gateway, then a max-min-fair
waterfilling fixed point allocates link capacity.  Each point reports
the congestion headline numbers (served fraction, mean/peak utilization,
p95 queueing-delay inflation) and the settlement revenue the carried
traffic produces (:mod:`repro.demand.congestion`).

Everything is a pure function of the seed — the same sweep re-run, at
any ``--jobs`` count, prints byte-identical rows (the ``demand-smoke``
CI job diffs two runs and a ``--jobs 2`` run).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro import obs as _obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.demand.congestion import (
    congestion_state,
    peak_statistics,
    settle_demand,
)
from repro.demand.fluid import run_fluid, weighted_percentile
from repro.demand.grid import GridSpec, population_grid
from repro.demand.profile import offered_load_bps
from repro.ground.station import default_station_network
from repro.orbits.walker import walker_delta
from repro.parallel import derive_seed, run_grid

#: Operators whose subscribers the grid cells round-robin across; the
#: fleet itself is owned by a third operator so carried traffic is
#: billable cross-operator transit.
PROVIDERS = ("op-a", "op-b")
FLEET_OWNER = "demand-fleet"


def plane_count_for(satellites: int) -> int:
    """Deterministic Walker plane count: near-square lattice, >= 3."""
    return max(3, int(round(math.sqrt(satellites / 2.0))))


def scale_access_capacity(graph, users_by_cell: Dict[str, int]) -> int:
    """Scale each cell's access links by its aggregated user count.

    A grid cell's terminal stands in for thousands of independent user
    terminals, each with its own access link; the aggregate access
    capacity is the per-terminal capacity times the cell's subscriber
    count (the congestion question then lives on the shared ISL and
    gateway links, which is the point of the fluid model).  Idempotent:
    already-scaled edges (marked ``aggregated_users``) are skipped.

    Returns:
        The number of access edges scaled.
    """
    scaled = 0
    for cell_id, users in users_by_cell.items():
        if cell_id not in graph or users <= 1:
            continue
        for _, _, data in graph.edges(cell_id, data=True):
            if data.get("kind") != "access_link":
                continue
            if "aggregated_users" in data:
                continue
            data["capacity_bps"] = data["capacity_bps"] * users
            data["aggregated_users"] = users
            scaled += 1
    return scaled


def _demand_point(args: tuple) -> Dict:
    """One grid point, self-contained for process-pool execution.

    The population grid is a pure function of ``derive_seed(seed,
    "demand-grid", total_users, distribution)`` — every point of one
    sweep loads the *same* subscriber field, so rows differ only through
    constellation size and local solar time.
    """
    (satellites, hour, row_index, total_users, bands, equator_columns,
     distribution, spread_deg, seed, duration_s, backend) = args
    spec = GridSpec(bands=bands, equator_columns=equator_columns)
    rng = np.random.default_rng(
        derive_seed(seed, "demand-grid", total_users, distribution)
    )
    grid = population_grid(total_users, rng, spec,
                           distribution=distribution,
                           spread_deg=spread_deg)

    constellation = walker_delta(satellites, plane_count_for(satellites))
    fleet = build_fleet(constellation, FLEET_OWNER, SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, default_station_network())
    terminals = grid.terminals(PROVIDERS)
    time_s = hour * 3600.0
    graph = network.snapshot(time_s, users=terminals).graph

    occupied = grid.occupied
    cell_ids = grid.cell_ids(occupied)
    users_by_cell = {
        cell_id: int(grid.users[index])
        for cell_id, index in zip(cell_ids, occupied)
    }
    scale_access_capacity(graph, users_by_cell)
    demand = offered_load_bps(grid.users[occupied], grid.lon_deg[occupied],
                              hour_utc=hour)

    result = run_fluid(graph, cell_ids, demand, backend=backend)
    state = congestion_state(result)
    state.inflate_queue_delays(graph)
    _obs.active().sample_health(time_s, graph,
                                utilization=state.utilization, reset=True)

    stats = peak_statistics(result)
    inflation = result.delay_inflation()
    cell_users = grid.users[occupied].astype(np.float64)
    settlement = settle_demand(result, graph, duration_s=duration_s,
                               time_s=time_s)
    return {
        "satellites": int(satellites),
        "hour_utc": float(hour),
        "users": int(grid.total_users),
        "cells": len(cell_ids),
        "routed_cells": int(result.routed.sum()),
        "offered_gbps": float(demand.sum() / 1e9),
        "served_fraction": result.served_fraction,
        "mean_utilization": stats["mean_utilization"],
        "peak_utilization": stats["peak_utilization"],
        "hot_link_share": stats["hot_link_share"],
        "p95_delay_inflation": weighted_percentile(
            inflation, cell_users, 0.95
        ),
        "revenue_usd": settlement.revenue_usd,
        "carried_gb": settlement.carried_gb,
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
    }


def demand_sweep(satellite_counts: Sequence[int] = (24, 66),
                 hours_utc: Sequence[float] = (4.0, 12.0, 20.0),
                 total_users: int = 1_000_000,
                 bands: int = 18,
                 equator_columns: int = 36,
                 distribution: str = "uniform_land",
                 spread_deg: float = 6.0,
                 seed: int = 7,
                 duration_s: float = 3600.0,
                 backend: str = None,
                 jobs: int = 1) -> List[Dict]:
    """Peak-hour congestion and revenue vs constellation size.

    Args:
        satellite_counts: Walker-Delta fleet sizes to sweep.
        hours_utc: UTC instants sampled (the diurnal curve converts
            these to local solar time per cell).
        total_users: Modeled subscriber count (conserved exactly onto
            the grid).
        bands: Equal-area latitude bands of the population grid.
        equator_columns: Longitude columns at the equator.
        distribution: ``"uniform_land"`` or ``"underserved"``.
        spread_deg: Cluster spread for the underserved distribution.
        seed: Root seed; the population grid derives from it.
        duration_s: Settlement interval each point's rates sustain.
        backend: Routing backend (``None`` = process default).
        jobs: Worker processes; every job count yields identical rows.

    Returns:
        One row dict per ``satellite_counts x hours_utc`` point.
    """
    for count in satellite_counts:
        if count < 1:
            raise ValueError(f"need at least one satellite, got {count}")
    for hour in hours_utc:
        if not 0.0 <= hour < 24.0:
            raise ValueError(f"hour must be in [0, 24), got {hour}")

    points = [
        (int(count), float(hour), row_index, total_users, bands,
         equator_columns, distribution, spread_deg, seed, duration_s,
         backend)
        for row_index, (count, hour) in enumerate(
            (count, hour)
            for count in satellite_counts for hour in hours_utc)
    ]
    with _obs.active().span("experiment.demand.sweep", points=len(points)):
        return run_grid(_demand_point, points, jobs=jobs, label="demand")
