"""Control-plane reliability under lossy signaling and ISL flaps.

The association/authentication story of the paper's Section 2 forwards
RADIUS exchanges over ISLs; this sweep measures what that protocol is
worth when those ISLs drop control frames and flap.  For every point of
a ``loss rate x fault intensity`` grid it replays a seeded ISL-flap
schedule through the discrete-event engine and, at periodic probe
instants, runs each monitored user's full association twice:

* through :class:`~repro.core.association.ReliableAssociationProtocol`
  (lossy channel, retries with backoff, circuit breakers, anchor and
  candidate fallback), and
* through the perfect-delivery baseline protocol on the same snapshot,

reporting auth success rates, the realized attempt counts, and the
association-latency inflation the retry machinery costs.  Everything is
a pure function of the seed: the same sweep re-run prints byte-identical
rows (the ``reliability-smoke`` CI job diffs two runs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs as _obs
from repro.core.association import (
    AssociationProtocol,
    ReliableAssociationProtocol,
)
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.availability import SAMPLE_SITES
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultSchedule
from repro.faults.schedule import link_flap_schedule
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.parallel import run_grid
from repro.reliability.channel import LossyControlChannel
from repro.reliability.exchange import (
    CircuitBreakerRegistry,
    ReliableExchange,
    RetryPolicy,
)
from repro.security.auth import RadiusServer
from repro.simulation.engine import SimulationEngine
from repro.orbits.walker import iridium_like

#: Provider name the sweep's fleet, users, and RADIUS realm share.
PROVIDER = "relia"


def _flap_links(network: OpenSpaceNetwork,
                fraction: float) -> List[Tuple[str, str]]:
    """A deterministic sample of the epoch-0 ISL set to flap."""
    edges = sorted(
        tuple(sorted(edge))
        for edge in network.snapshot(0.0).isl_snapshot.graph.edges()
    )
    if not edges or fraction <= 0.0:
        return []
    step = max(1, round(1.0 / min(1.0, fraction)))
    return edges[::step]


def _make_users() -> List[UserTerminal]:
    return [
        UserTerminal(f"u-{name}", site, PROVIDER, min_elevation_deg=10.0)
        for name, site in SAMPLE_SITES
    ]


def _make_server(users: Sequence[UserTerminal]) -> RadiusServer:
    server = RadiusServer(PROVIDER, b"relia-shared-secret")
    for user in users:
        server.enroll(user.user_id, b"pw-" + user.user_id.encode())
    return server


def run_reliability_scenario(
        network: OpenSpaceNetwork, schedule: FaultSchedule,
        users: Sequence[UserTerminal], horizon_s: float,
        probes: int, loss: float, policy: RetryPolicy,
        channel_seed: int = 0,
        breaker_threshold: int = 2,
        breaker_recovery_s: float = 300.0) -> Dict:
    """Replay one flap schedule and probe associations along the way.

    Args:
        network: Network under test (fault state is reset first).
        schedule: ISL-flap (or any) fault schedule to inject.
        users: Monitored terminals; each is probed at every instant.
        horizon_s: Simulated period.
        probes: Periodic association probes across the horizon.
        loss: Per-hop control-frame loss rate (also scales the
            capacity-derived loss of thin links).
        policy: Retry policy for the auth exchanges.
        channel_seed: Seed of the channel's delivery draws.
        breaker_threshold: Consecutive failures before a breaker opens.
        breaker_recovery_s: Breaker open duration.

    Returns:
        Aggregate row (success rates, attempts, latency inflation,
        degraded/breaker counters).
    """
    if probes < 1:
        raise ValueError(f"need at least one probe, got {probes}")
    if horizon_s <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_s}")
    network.clear_fault_state()

    stations = network.ground_stations
    anchor = stations[0].station_id
    fallbacks = [station.station_id for station in stations[1:3]]
    server = _make_server(users)
    baseline_server = _make_server(users)

    channel = LossyControlChannel(loss_scale=loss, base_loss=loss,
                                  seed=channel_seed, network=network)
    breakers = CircuitBreakerRegistry(failure_threshold=breaker_threshold,
                                      recovery_time_s=breaker_recovery_s)
    exchange = ReliableExchange(policy, breakers, name="auth")
    protocol = ReliableAssociationProtocol(
        radius_servers={PROVIDER: server},
        auth_anchors={PROVIDER: anchor},
        channel=channel, exchange=exchange,
        fallback_anchors={PROVIDER: fallbacks},
    )
    baseline = AssociationProtocol(
        radius_servers={PROVIDER: baseline_server},
        auth_anchors={PROVIDER: anchor},
    )
    baseline_users = {
        user.user_id: UserTerminal(user.user_id, user.location,
                                   user.home_provider,
                                   min_elevation_deg=user.min_elevation_deg)
        for user in users
    }

    injector = FaultInjector(network, channel=channel)
    engine = SimulationEngine()
    stats = {
        "attempts": 0, "successes": 0, "baseline_successes": 0,
        "rtt_sum_s": 0.0, "baseline_rtt_sum_s": 0.0, "paired": 0,
        "degraded": 0, "probed": 0,
    }

    def probe(time_s: float) -> None:
        snap = network.snapshot(time_s)
        evaluator = BeaconEvaluator(min_elevation_deg=10.0,
                                    require_free_slot=False)
        for spec in network.satellites:
            if spec.satellite_id in network.failed_satellites:
                continue
            evaluator.receive(Beacon.from_spec(spec, time_s))
        for user in users:
            password = b"pw-" + user.user_id.encode()
            result = protocol.associate(user, snap.graph, evaluator,
                                        time_s, password)
            reference = baseline.associate(
                baseline_users[user.user_id], snap.graph, evaluator,
                time_s, password,
            )
            stats["probed"] += 1
            stats["attempts"] += result.auth_attempts
            if result.succeeded:
                stats["successes"] += 1
            if reference.succeeded:
                stats["baseline_successes"] += 1
            if result.degraded_mode:
                stats["degraded"] += 1
            if result.succeeded and reference.succeeded:
                stats["paired"] += 1
                stats["rtt_sum_s"] += result.auth_round_trip_s
                stats["baseline_rtt_sum_s"] += reference.auth_round_trip_s

    with _obs.active().span("experiment.reliability.run",
                            faults=len(schedule), loss=loss,
                            horizon_s=horizon_s):
        injector.schedule_on(engine, schedule, until_s=horizon_s)
        for time_s in np.linspace(0.0, horizon_s, probes, endpoint=False):
            engine.schedule(float(time_s),
                            lambda t=float(time_s): probe(t),
                            label="reliability.probe")
        engine.run_until(horizon_s)
    breakers.record_gauges()
    network.clear_fault_state()

    probed = max(1, stats["probed"])
    inflation = float("nan")
    if stats["paired"] > 0 and stats["baseline_rtt_sum_s"] > 0.0:
        inflation = stats["rtt_sum_s"] / stats["baseline_rtt_sum_s"]
    breaker_opens = sum(
        breakers.breaker(key).open_count for key in sorted(
            dict(breakers.states())
        )
    )
    return {
        "probes": stats["probed"],
        "auth_success_rate": stats["successes"] / probed,
        "baseline_success_rate": stats["baseline_successes"] / probed,
        "mean_attempts": stats["attempts"] / probed,
        "latency_inflation": inflation,
        "degraded_associations": stats["degraded"],
        "breaker_opens": breaker_opens,
        "exchange_failures": exchange.failure_count,
        "channel_loss_rate": channel.loss_rate,
        "faults_injected": injector.applied_count,
    }


def _reliability_point(args: tuple) -> Dict:
    """One grid point, self-contained for process-pool execution.

    Rebuilds the reference network and flap-link sample (both pure
    functions of their inputs) so the point depends on nothing shared;
    sub-seeds (``seed + 31 * row``, ``seed + 101 * row``) match the
    serial sweep's historical derivation, keeping rows byte-identical
    at any job count.
    """
    (loss, mtbf_h, row_index, horizon_s, probes, seed, mttr_s,
     flap_fraction, max_attempts, timeout_s) = args
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), PROVIDER, SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    users = _make_users()
    links = _flap_links(network, flap_fraction)
    policy = RetryPolicy(max_attempts=max_attempts, timeout_s=timeout_s)
    if mtbf_h > 0.0 and links:
        schedule = link_flap_schedule(
            links, horizon_s, mtbf_s=mtbf_h * 3600.0,
            mttr_s=mttr_s, seed=seed + 31 * row_index,
        )
    else:
        schedule = FaultSchedule(horizon_s=horizon_s)
    result = run_reliability_scenario(
        network, schedule, users, horizon_s=horizon_s,
        probes=probes, loss=loss, policy=policy,
        channel_seed=seed + 101 * row_index,
    )
    row = {"loss": float(loss), "flap_mtbf_h": float(mtbf_h)}
    row.update(result)
    return row


def reliability_sweep(loss_rates: Sequence[float] = (0.0, 0.05, 0.2),
                      flap_mtbf_hours: Sequence[float] = (0.0, 0.5),
                      horizon_s: float = 1800.0,
                      probes: int = 4,
                      seed: int = 11,
                      mttr_s: Optional[float] = 240.0,
                      flap_fraction: float = 0.25,
                      max_attempts: int = 4,
                      timeout_s: float = 0.5,
                      jobs: int = 1) -> List[Dict]:
    """Auth success and latency inflation vs loss rate x fault intensity.

    Args:
        loss_rates: Per-hop control-frame loss probabilities to sweep.
        flap_mtbf_hours: Per-link flap MTBF points, hours; ``0`` injects
            no faults (the loss-only axis).
        horizon_s: Simulated period per grid point.
        probes: Association probes per grid point.
        seed: Root seed; every grid point derives its own sub-seeds.
        mttr_s: Flap repair time, seconds (None = permanent cuts).
        flap_fraction: Fraction of the epoch-0 ISL set that flaps.
        max_attempts: Retransmission bound of the auth exchanges.
        timeout_s: Per-attempt timeout of the auth exchanges.
        jobs: Worker processes for the grid fan-out; every job count
            yields identical rows.

    Returns:
        One row dict per grid point, in ``loss_rates`` x
        ``flap_mtbf_hours`` order, each carrying the scenario aggregates
        plus the ``loss`` / ``flap_mtbf_h`` coordinates.
    """
    for loss in loss_rates:
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {loss}")
    for mtbf_h in flap_mtbf_hours:
        if mtbf_h < 0.0:
            raise ValueError(f"flap MTBF must be >= 0, got {mtbf_h}")

    points = [
        (float(loss), float(mtbf_h), row_index, horizon_s, probes, seed,
         mttr_s, flap_fraction, max_attempts, timeout_s)
        for row_index, (loss, mtbf_h) in enumerate(
            (loss, mtbf_h)
            for loss in loss_rates for mtbf_h in flap_mtbf_hours)
    ]
    with _obs.active().span("experiment.reliability.sweep",
                            points=len(points)):
        return run_grid(_reliability_point, points, jobs=jobs,
                        label="reliability")
