"""Dynamic resilience: fault churn and recovery in simulated time.

Where :func:`repro.experiments.availability.resilience_sweep` deletes a
fleet fraction up front and measures the steady-state damage, this driver
schedules failures *during* the run through the discrete-event engine and
measures how the system heals: availability timelines, the rerouted vs
dropped split for severed flows, time-to-reroute, and realized MTTR.

This is the experimental surface behind the paper's Figure 2(c) caption —
"additional satellites ensure redundancy, such that operational failures
... can be handled efficiently" — measured as the fraction of injected
faults the redundancy margin absorbs without any monitored user losing
service.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs as _obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.availability import SAMPLE_SITES
from repro.faults.inject import FaultInjector
from repro.faults.metrics import RecoveryTracker
from repro.faults.model import FaultSchedule
from repro.faults.schedule import satellite_mtbf_schedule
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.walker import iridium_like
from repro.parallel import run_grid
from repro.simulation.engine import SimulationEngine


def _sample_users(provider: str = "resil-dyn") -> List[UserTerminal]:
    return [
        UserTerminal(f"u-{name}", site, provider, min_elevation_deg=10.0)
        for name, site in SAMPLE_SITES
    ]


#: Engine names accepted by the fault-scenario and figure-2 drivers.
ENGINES = ("scalar", "batched")


def _probe_path(network: OpenSpaceNetwork, user: UserTerminal,
                time_s: float) -> Optional[List[str]]:
    """The user's current gateway path, or None when unreachable."""
    snap = network.snapshot(time_s, users=[user])
    metrics = snap.nearest_ground_station_route(user.user_id)
    return None if metrics is None else list(metrics.path)


def _probe_paths(network: OpenSpaceNetwork,
                 users: Sequence[UserTerminal], time_s: float,
                 engine: str) -> Dict[str, Optional[List[str]]]:
    """Every monitored user's gateway path at one instant.

    The batched engine answers all users with one array pass
    (:meth:`~repro.core.network.OpenSpaceNetwork.gateway_probe_paths`);
    the scalar engine is the per-user oracle.  Both return identical
    paths — the engine digest gate in the benchmark suite holds them
    together.
    """
    if engine == "batched":
        return network.gateway_probe_paths(time_s, users)
    return {
        user.user_id: _probe_path(network, user, time_s) for user in users
    }


def run_fault_scenario(network: OpenSpaceNetwork, schedule: FaultSchedule,
                       users: Sequence[UserTerminal],
                       horizon_s: float, epochs: int = 8,
                       reroute_delay_s: float = 15.0,
                       router=None, engine: str = "scalar") -> Dict:
    """Replay one fault schedule and measure recovery.

    The engine carries two event streams: the schedule's fail/repair
    transitions (each followed by an immediate probe of every monitored
    user, classifying severed flows as rerouted or dropped) and periodic
    availability probes at ``epochs`` instants across the horizon.

    Args:
        network: The network under test (its fault state is reset first).
        schedule: Faults to inject, in simulated time.
        users: Monitored user terminals.
        horizon_s: Simulated period length.
        epochs: Periodic probe count across the horizon.
        reroute_delay_s: Control-plane reconvergence charge for flows
            with an alternate path (see
            :class:`~repro.faults.metrics.RecoveryTracker`).
        router: Optional proactive router to invalidate on failures.
        engine: ``"scalar"`` probes each user through its own snapshot
            (the oracle); ``"batched"`` answers every probe instant with
            one array pass over all users and primes the periodic epoch
            grid's propagation up front.  Results are bit-identical.

    Returns:
        The tracker summary (see
        :meth:`~repro.faults.metrics.RecoveryTracker.summary`) plus the
        tracker and injector under ``"_tracker"`` / ``"_injector"`` for
        callers that want the raw timelines.
    """
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    if horizon_s <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_s}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    network.clear_fault_state()
    probe_times = np.linspace(0.0, horizon_s, epochs, endpoint=False)
    if engine == "batched":
        # One (N, epochs) propagation covers every periodic probe; primed
        # columns are bitwise identical to per-epoch solves, so this is
        # purely a speedup (fault-transition instants still solve lazily).
        network.prime_positions(probe_times)
    tracker = RecoveryTracker(reroute_delay_s=reroute_delay_s,
                              horizon_s=horizon_s)
    injector = FaultInjector(network, tracker=tracker, router=router)
    sim = SimulationEngine()
    # The scenario's first probe establishes a fresh health-plane diff
    # baseline, so sweeps sample identically whether this scenario shares
    # a recorder with earlier points (serial) or owns one (a worker).
    first_sample = [True]

    def probe_all(time_s: float) -> None:
        paths = _probe_paths(network, users, time_s, engine)
        for user in users:
            tracker.record_probe(time_s, user.user_id, paths[user.user_id])
        recorder = _obs.active()
        if recorder.enabled:
            recorder.sample_health(
                time_s, network.snapshot(time_s).graph,
                faults_active=len(injector.active_faults),
                reset=first_sample[0],
            )
            first_sample[0] = False

    def on_transition(time_s: float, transition, _injector) -> None:
        if transition.event.duration_s == 0.0:
            # Instant repair (MTTR=0): fail and repair run at the same
            # instant, so the net state change is nil — probing either
            # edge would charge a phantom outage (or skew the sampled
            # availability toward fault times) for a fault that never
            # existed for any positive simulated duration.
            return
        if transition.phase == "fail":
            nodes, links = injector.failed_elements_of(transition.event)
            paths = _probe_paths(network, users, time_s, engine)
            for user in users:
                tracker.probe_after_fault(
                    time_s, transition.event, nodes, links, user.user_id,
                    paths[user.user_id],
                )
        else:
            probe_all(time_s)

    with _obs.active().span("experiment.resilience_dynamic.run",
                            faults=len(schedule), horizon_s=horizon_s):
        injector.schedule_on(sim, schedule, hook=on_transition,
                             until_s=horizon_s)
        for time_s in probe_times:
            sim.schedule(float(time_s),
                         lambda t=float(time_s): probe_all(t),
                         label="faults.probe")
        sim.run_until(horizon_s)

    result = tracker.summary()
    result["_tracker"] = tracker
    result["_injector"] = injector
    return result


def _dynamic_resilience_point(args: tuple) -> Dict:
    """One sweep row, self-contained for process-pool execution.

    Builds its own network so the point is a pure function of its args;
    the schedule seed (``seed + 7919 * index``) matches what the serial
    sweep has always used, so rows are unchanged at any job count.
    """
    (mtbf_h, index, mttr_s, horizon_s, epochs, seed, reroute_delay_s,
     probe_engine) = args
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "resil-dyn", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    satellite_ids = [spec.satellite_id for spec in fleet]
    users = _sample_users()
    schedule = satellite_mtbf_schedule(
        satellite_ids, horizon_s, mtbf_s=mtbf_h * 3600.0,
        mttr_s=mttr_s, seed=seed + 7919 * index,
    )
    result = run_fault_scenario(
        network, schedule, users, horizon_s=horizon_s,
        epochs=epochs, reroute_delay_s=reroute_delay_s,
        engine=probe_engine,
    )
    row = {
        key: value for key, value in result.items()
        if not key.startswith("_")
    }
    row["mtbf_h"] = float(mtbf_h)
    return row


def dynamic_resilience_sweep(mtbf_hours: Sequence[float] = (1.0, 3.0, 12.0),
                             mttr_s: Optional[float] = 900.0,
                             horizon_s: float = 7200.0,
                             epochs: int = 8,
                             seed: int = 43,
                             reroute_delay_s: float = 15.0,
                             jobs: int = 1,
                             engine: str = "scalar") -> List[Dict]:
    """Recovery metrics vs failure intensity on the reference fleet.

    Each row injects an independent per-satellite MTBF/MTTR failure
    process into the 66-satellite Walker-Star reference fleet and reports
    what the redundancy margin absorbed.  Smaller MTBF = harsher regime.

    Determinism: the per-row schedule seed is derived from ``seed`` and
    the row index, so the full sweep is reproducible from one seed.

    Args:
        mtbf_hours: Per-satellite mean time between failures, in hours.
        mttr_s: Mean time to repair, seconds; ``0`` repairs instantly
            (the no-outage control), ``None`` makes failures permanent.
        horizon_s: Simulated period per row.
        epochs: Periodic availability probes per row.
        seed: Root seed.
        reroute_delay_s: Control-plane reconvergence charge.
        jobs: Worker processes for the row fan-out; every job count
            yields identical rows.
        engine: Probe engine per row (``"scalar"`` or ``"batched"``);
            see :func:`run_fault_scenario`.  Rows are identical either
            way — the benchmark's engine-equivalence digest enforces it.

    Returns:
        Rows of ``{"mtbf_h", "faults_injected", "faults_absorbed",
        "flows_rerouted", "flows_dropped", "mean_availability",
        "mean_time_to_reroute_s", "observed_mttr_s", ...}``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    points = []
    for index, mtbf_h in enumerate(mtbf_hours):
        if mtbf_h <= 0.0:
            raise ValueError(f"MTBF must be positive, got {mtbf_h}")
        points.append((float(mtbf_h), index, mttr_s, horizon_s, epochs,
                       seed, reroute_delay_s, engine))
    with _obs.active().span("experiment.resilience_dynamic.sweep",
                            points=len(points)):
        return run_grid(_dynamic_resilience_point, points, jobs=jobs,
                        label="faults")
