"""Shared-spectrum coordination across operators.

"In the current landscape, this communication is challenging without
access to shared spectrum, inter-operable network interfaces, and
physical-layer protocols."  OpenSpace satellites of different owners share
the same downlink bands; uncoordinated, nearby co-channel transmitters
wreck each other's users' SINR.  This module implements a simple,
auditable coordination scheme:

1. build the interference graph from public orbital data (any pair of
   satellites a ground terminal cannot angularly discriminate conflicts —
   :func:`repro.phy.interference.interference_pairs`);
2. color it greedily so conflicting satellites land on different channel
   slots;
3. report per-operator slot usage so the federation can verify no member
   hogs the band.

Because the topology is public and deterministic, every operator can
recompute the same assignment — coordination without a central authority,
matching the paper's decentralized ethos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.phy.interference import interference_pairs


@dataclass(frozen=True)
class ChannelPlan:
    """One coordinated channel assignment.

    Attributes:
        assignments: Satellite id -> channel slot index.
        slot_count: Distinct slots used (the reuse factor).
        conflict_edges: The interference graph's edges (satellite ids).
        available_slots: Slots the band was divided into; None when the
            coloring was unconstrained.
    """

    assignments: Dict[str, int]
    slot_count: int
    conflict_edges: Tuple[Tuple[str, str], ...]
    available_slots: Optional[int] = None

    def is_conflict_free(self) -> bool:
        """Whether no conflicting pair shares a slot."""
        return all(
            self.assignments[a] != self.assignments[b]
            for a, b in self.conflict_edges
        )

    def slots_by_operator(self, owner_of: Dict[str, str]) -> Dict[str, set]:
        """Operator -> set of slots its satellites occupy."""
        usage: Dict[str, set] = {}
        for sat_id, slot in self.assignments.items():
            usage.setdefault(owner_of.get(sat_id, "unknown"), set()).add(slot)
        return usage


class SpectrumCoordinator:
    """Builds conflict graphs and coordinated channel plans.

    Args:
        min_separation_deg: Angular discrimination limit of user antennas;
            satellite pairs closer than this (as seen from some ground
            point) must use different channels.
        min_elevation_deg: Ground visibility mask.
        grid_resolution: Ground sample grid density for conflict checks.
    """

    def __init__(self, min_separation_deg: float = 10.0,
                 min_elevation_deg: float = 10.0,
                 grid_resolution: int = 12):
        if min_separation_deg <= 0.0:
            raise ValueError(
                f"separation must be positive, got {min_separation_deg}"
            )
        self.min_separation_deg = min_separation_deg
        self.min_elevation_deg = min_elevation_deg
        self.grid_resolution = grid_resolution

    def _ground_points(self) -> List[np.ndarray]:
        from repro.orbits.constants import EARTH_RADIUS_KM
        from repro.orbits.visibility import surface_grid

        points, _weights = surface_grid(self.grid_resolution)
        return [EARTH_RADIUS_KM * p for p in points]

    def conflict_graph(self, positions: Dict[str, np.ndarray]) -> nx.Graph:
        """The interference graph over the current satellite positions."""
        ids = sorted(positions)
        pos_list = [positions[sat_id] for sat_id in ids]
        graph = nx.Graph()
        graph.add_nodes_from(ids)
        for i, j in interference_pairs(
            self._ground_points(), pos_list,
            min_separation_deg=self.min_separation_deg,
            min_elevation_deg=self.min_elevation_deg,
        ):
            graph.add_edge(ids[i], ids[j])
        return graph

    def plan(self, positions: Dict[str, np.ndarray],
             available_slots: Optional[int] = None) -> ChannelPlan:
        """Color the conflict graph into a channel plan.

        Args:
            positions: Satellite id -> position (any common frame).
            available_slots: Cap on slots (band divided into this many
                channels).  When the chromatic need exceeds the cap, the
                coloring wraps modulo the cap and the plan reports the
                residual conflicts honestly via :meth:`ChannelPlan.is_conflict_free`.

        Returns:
            A :class:`ChannelPlan` (deterministic for a given input).
        """
        graph = self.conflict_graph(positions)
        coloring = nx.coloring.greedy_color(
            graph, strategy="largest_first"
        )
        slots_needed = (max(coloring.values()) + 1) if coloring else 0
        if available_slots is not None:
            if available_slots < 1:
                raise ValueError(
                    f"need at least one slot, got {available_slots}"
                )
            coloring = {
                sat: slot % available_slots for sat, slot in coloring.items()
            }
            slots_needed = min(slots_needed, available_slots)
        return ChannelPlan(
            assignments=dict(sorted(coloring.items())),
            slot_count=slots_needed,
            conflict_edges=tuple(sorted(
                (min(u, v), max(u, v)) for u, v in graph.edges
            )),
            available_slots=available_slots,
        )

    def uncoordinated_collisions(self, positions: Dict[str, np.ndarray],
                                 available_slots: int,
                                 rng: np.random.Generator) -> int:
        """Conflicting pairs landing on the same slot under random choice.

        The baseline OpenSpace coordination replaces: every operator picks
        channels independently at random.

        Returns:
            Number of conflict edges whose endpoints collided.
        """
        if available_slots < 1:
            raise ValueError(f"need at least one slot, got {available_slots}")
        graph = self.conflict_graph(positions)
        choice = {
            sat: int(rng.integers(0, available_slots)) for sat in graph.nodes
        }
        return sum(
            1 for u, v in graph.edges if choice[u] == choice[v]
        )
