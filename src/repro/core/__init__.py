"""OpenSpace core: the paper's primary contribution.

The architecture for "an open and inter-operable LEO space-based Internet
service that is owned, controlled, and managed by distributed entities":

* :mod:`repro.core.interop` — the minimal-hardware interoperability
  profile every participating spacecraft must meet, and spacecraft specs.
* :mod:`repro.core.beacon` — standardized presence beacons with orbital
  information.
* :mod:`repro.core.pairing` — the ISL pairing handshake (RF association,
  spec exchange, optional laser beamforming negotiation).
* :mod:`repro.core.association` — user association + home-ISP RADIUS
  authentication over ISLs + roaming certificates.
* :mod:`repro.core.handover` — predictive successor handover vs the
  re-authentication baseline.
* :mod:`repro.core.federation` — the multi-operator registry, trust
  distribution, and bad-actor quarantine.
* :mod:`repro.core.network` — the OpenSpaceNetwork facade: builds
  time-varying whole-network graphs (satellites + ground stations + users)
  and answers end-to-end routing queries.
"""

from repro.core.interop import (
    InteropError,
    InteroperabilityProfile,
    SizeClass,
    SpacecraftSpec,
    derate_power_for_eclipse,
    small_spacecraft,
    medium_spacecraft,
    large_spacecraft,
)
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.pairing import (
    PairingProtocol,
    PairingOutcome,
    PairRequest,
    predict_hold_duration_s,
)
from repro.core.association import AssociationProtocol, AssociationResult
from repro.core.handover import (
    HandoverScheme,
    HandoverEvent,
    HandoverSimulator,
    PassTimeline,
)
from repro.core.federation import Federation, Operator
from repro.core.network import OpenSpaceNetwork, NetworkSnapshot
from repro.core.policy import (
    DEFAULT_REGIONS,
    PolicyRegistry,
    Region,
    apply_policy_to_graph,
)
from repro.core.spectrum import ChannelPlan, SpectrumCoordinator
from repro.core.discovery import BeaconDiscoverySimulator, DiscoveryResult
from repro.core.qos_planner import (
    QosForecast,
    QosForecastEntry,
    QosPlanner,
)

__all__ = [
    "InteropError",
    "InteroperabilityProfile",
    "SizeClass",
    "SpacecraftSpec",
    "derate_power_for_eclipse",
    "small_spacecraft",
    "medium_spacecraft",
    "large_spacecraft",
    "Beacon",
    "BeaconEvaluator",
    "PairingProtocol",
    "PairingOutcome",
    "PairRequest",
    "predict_hold_duration_s",
    "AssociationProtocol",
    "AssociationResult",
    "HandoverScheme",
    "HandoverEvent",
    "HandoverSimulator",
    "PassTimeline",
    "Federation",
    "Operator",
    "OpenSpaceNetwork",
    "NetworkSnapshot",
    "DEFAULT_REGIONS",
    "PolicyRegistry",
    "Region",
    "apply_policy_to_graph",
    "ChannelPlan",
    "SpectrumCoordinator",
    "BeaconDiscoverySimulator",
    "DiscoveryResult",
    "QosForecast",
    "QosForecastEntry",
    "QosPlanner",
]
