"""User association and home-ISP authentication.

"Upon initial association, the user device identifies its home ISP and
proceeds to authenticate with it through a standardized protocol such as
RADIUS ... an association request from a user has to be authenticated by
their home satellite provider, and this can be done through ISLs.  The
user's home provider should assign the user a digital certificate ...
After successful authentication, the user is fully associated with the
satellite."

The protocol binds together the beacon evaluator (satellite selection),
the snapshot graph (the ISL path to the home provider's authentication
anchor), and the RADIUS server (credential check + certificate issue), and
reports the full latency breakdown — the cost that predictive handover
later avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import networkx as nx
import numpy as np

from repro import obs as _obs
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.ground.user import UserTerminal
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.routing.metrics import path_metrics, shortest_path
from repro.security.auth import AccessAccept, RadiusServer


@dataclass(frozen=True)
class AssociationResult:
    """Outcome and timing of one association attempt.

    Attributes:
        user_id: The associating user.
        satellite_id: Serving satellite (None when no candidate existed).
        link_setup_s: User-satellite link establishment time.
        auth_path_hops: ISL hops from serving satellite to the home
            provider's authentication anchor.
        auth_round_trip_s: RADIUS request/response time over those ISLs.
        authenticated: True when the home ISP accepted the credentials.
        failure_reason: Populated on failure.
        auth_attempts: Control-plane sends the auth exchange needed (1 on
            the perfect-delivery path).
        degraded_mode: Which fallback served the association (``""`` for
            the primary path; ``"alternate_anchor"`` /
            ``"secondary_candidate"`` otherwise).
    """

    user_id: str
    satellite_id: Optional[str]
    link_setup_s: float
    auth_path_hops: int
    auth_round_trip_s: float
    authenticated: bool
    failure_reason: str = ""
    auth_attempts: int = 1
    degraded_mode: str = ""

    @property
    def total_time_s(self) -> float:
        return self.link_setup_s + self.auth_round_trip_s

    @property
    def succeeded(self) -> bool:
        return self.authenticated and self.satellite_id is not None


class AssociationProtocol:
    """Runs user association against a network snapshot.

    Args:
        radius_servers: Home-provider name -> that provider's RADIUS
            server.
        auth_anchors: Home-provider name -> graph node id where its
            authentication server is reachable (typically one of its
            ground stations).
        server_processing_s: RADIUS server processing time.
        link_setup_messages: Messages in the user-satellite association
            exchange (probe + request + response by default).
    """

    def __init__(self, radius_servers: Dict[str, RadiusServer],
                 auth_anchors: Dict[str, str],
                 server_processing_s: float = 0.010,
                 link_setup_messages: int = 3):
        self.radius_servers = radius_servers
        self.auth_anchors = auth_anchors
        self.server_processing_s = server_processing_s
        self.link_setup_messages = link_setup_messages

    def associate(self, user: UserTerminal, graph: nx.Graph,
                  evaluator: BeaconEvaluator, time_s: float,
                  password: bytes) -> AssociationResult:
        """Full association: pick satellite, authenticate, certify.

        Args:
            user: The associating terminal (mutated on success: serving
                satellite and certificate are stored).
            graph: Current network snapshot graph (satellites + ground).
            evaluator: Beacon evaluator already fed with heard beacons.
            time_s: Current simulation time.
            password: The user's home-ISP credential.
        """
        result = self._associate(user, graph, evaluator, time_s, password)
        recorder = _obs.active()
        if recorder.enabled:
            if result.succeeded:
                recorder.event(
                    "session.admit", time_s, subject=result.user_id,
                    satellite=result.satellite_id or "",
                    attempts=result.auth_attempts,
                    degraded=result.degraded_mode,
                )
            else:
                recorder.event(
                    "session.drop", time_s, subject=result.user_id,
                    satellite=result.satellite_id or "",
                    reason=result.failure_reason,
                )
        return result

    def _associate(self, user: UserTerminal, graph: nx.Graph,
                   evaluator: BeaconEvaluator, time_s: float,
                   password: bytes) -> AssociationResult:
        user_pos = user.position_eci(time_s)
        beacon = evaluator.best(user_pos, time_s)
        if beacon is None:
            return AssociationResult(
                user_id=user.user_id, satellite_id=None, link_setup_s=0.0,
                auth_path_hops=0, auth_round_trip_s=0.0, authenticated=False,
                failure_reason="no usable satellite overhead",
            )
        sat_pos = beacon.position_at(time_s)
        distance_km = float(np.linalg.norm(user_pos - sat_pos))
        one_way_s = distance_km / SPEED_OF_LIGHT_KM_S
        link_setup_s = self.link_setup_messages * one_way_s

        server = self.radius_servers.get(user.home_provider)
        anchor = self.auth_anchors.get(user.home_provider)
        if server is None or anchor is None:
            return AssociationResult(
                user_id=user.user_id, satellite_id=beacon.satellite_id,
                link_setup_s=link_setup_s, auth_path_hops=0,
                auth_round_trip_s=0.0, authenticated=False,
                failure_reason=(
                    f"home provider {user.home_provider!r} has no "
                    "authentication anchor in the network"
                ),
            )

        path = shortest_path(graph, beacon.satellite_id, anchor)
        if path is None:
            return AssociationResult(
                user_id=user.user_id, satellite_id=beacon.satellite_id,
                link_setup_s=link_setup_s, auth_path_hops=0,
                auth_round_trip_s=0.0, authenticated=False,
                failure_reason=(
                    f"serving satellite {beacon.satellite_id} cannot reach "
                    f"auth anchor {anchor} over ISLs"
                ),
            )
        metrics = path_metrics(graph, path)
        auth_rtt_s = 2.0 * metrics.total_delay_s + self.server_processing_s

        request = server.make_request(
            user.user_id, password, nas_id=beacon.satellite_id
        )
        response = server.handle(request, now_s=time_s)
        if not isinstance(response, AccessAccept):
            return AssociationResult(
                user_id=user.user_id, satellite_id=beacon.satellite_id,
                link_setup_s=link_setup_s, auth_path_hops=metrics.hop_count,
                auth_round_trip_s=auth_rtt_s, authenticated=False,
                failure_reason=f"home ISP rejected: {response.reason}",
            )

        user.associated_satellite = beacon.satellite_id
        user.session_certificate = response.certificate.serial
        return AssociationResult(
            user_id=user.user_id,
            satellite_id=beacon.satellite_id,
            link_setup_s=link_setup_s,
            auth_path_hops=metrics.hop_count,
            auth_round_trip_s=auth_rtt_s,
            authenticated=True,
        )


class ReliableAssociationProtocol(AssociationProtocol):
    """Association that survives a lossy control plane.

    The RADIUS forwarding leg runs through a
    :class:`~repro.reliability.exchange.ReliableExchange` over a
    :class:`~repro.reliability.channel.LossyControlChannel`: lost
    requests are retransmitted with backoff, anchors behind flapping ISL
    paths trip a circuit breaker, and when the home provider's primary
    anchor stays unreachable the protocol degrades instead of failing —
    first to an alternate auth anchor of the same provider, then to the
    next-nearest beacon candidate (whose ISL path to the home provider
    may avoid the faulted region entirely).

    With ``channel=None`` (or ``exchange=None``) every call falls through
    to the perfect-delivery base protocol, byte-identical.

    Args:
        radius_servers: As the base protocol.
        auth_anchors: Primary anchor per provider.
        server_processing_s: RADIUS server processing time.
        link_setup_messages: As the base protocol.
        channel: The lossy control channel (None = perfect delivery).
        exchange: The retry/breaker primitive (None = perfect delivery).
        fallback_anchors: Provider -> ordered alternate anchor node ids
            tried when the primary anchor's exchange fails.
        max_candidates: Beacon candidates tried before giving up.
    """

    def __init__(self, radius_servers: Dict[str, RadiusServer],
                 auth_anchors: Dict[str, str],
                 server_processing_s: float = 0.010,
                 link_setup_messages: int = 3,
                 channel=None, exchange=None,
                 fallback_anchors: Optional[Dict[str, Sequence[str]]] = None,
                 max_candidates: int = 3):
        super().__init__(radius_servers, auth_anchors,
                         server_processing_s=server_processing_s,
                         link_setup_messages=link_setup_messages)
        self.channel = channel
        self.exchange = exchange
        self.fallback_anchors = {
            provider: list(anchors)
            for provider, anchors in (fallback_anchors or {}).items()
        }
        self.max_candidates = max_candidates

    def _anchors_for(self, provider: str) -> list:
        anchors = []
        primary = self.auth_anchors.get(provider)
        if primary is not None:
            anchors.append(primary)
        for anchor in self.fallback_anchors.get(provider, ()):
            if anchor not in anchors:
                anchors.append(anchor)
        return anchors

    def _associate(self, user: UserTerminal, graph: nx.Graph,
                   evaluator: BeaconEvaluator, time_s: float,
                   password: bytes) -> AssociationResult:
        """Associate with retries, breakers, and graceful fallback."""
        if self.channel is None or self.exchange is None:
            return super()._associate(user, graph, evaluator, time_s,
                                      password)
        from repro.reliability.policy import note_degraded

        user_pos = user.position_eci(time_s)
        candidates = evaluator.best_candidates(
            user_pos, time_s, limit=self.max_candidates
        )
        if not candidates:
            return AssociationResult(
                user_id=user.user_id, satellite_id=None, link_setup_s=0.0,
                auth_path_hops=0, auth_round_trip_s=0.0, authenticated=False,
                failure_reason="no usable satellite overhead",
                auth_attempts=0,
            )

        server = self.radius_servers.get(user.home_provider)
        anchors = self._anchors_for(user.home_provider)
        primary = candidates[0]
        primary_pos = primary.position_at(time_s)
        primary_setup_s = self.link_setup_messages * (
            float(np.linalg.norm(user_pos - primary_pos))
            / SPEED_OF_LIGHT_KM_S
        )
        if server is None or not anchors:
            return AssociationResult(
                user_id=user.user_id, satellite_id=primary.satellite_id,
                link_setup_s=primary_setup_s, auth_path_hops=0,
                auth_round_trip_s=0.0, authenticated=False,
                failure_reason=(
                    f"home provider {user.home_provider!r} has no "
                    "authentication anchor in the network"
                ),
                auth_attempts=0,
            )

        total_attempts = 0
        elapsed_auth_s = 0.0
        last_failure = "no ISL path to any authentication anchor"
        for candidate_index, beacon in enumerate(candidates):
            sat_pos = beacon.position_at(time_s)
            one_way_s = (float(np.linalg.norm(user_pos - sat_pos))
                         / SPEED_OF_LIGHT_KM_S)
            link_setup_s = self.link_setup_messages * one_way_s
            for anchor_index, anchor in enumerate(anchors):
                path = shortest_path(graph, beacon.satellite_id, anchor)
                if path is None:
                    last_failure = (
                        f"serving satellite {beacon.satellite_id} cannot "
                        f"reach auth anchor {anchor} over ISLs"
                    )
                    continue
                outcome = self.exchange.run(
                    f"auth:{beacon.satellite_id}->{anchor}",
                    lambda _attempt, p=path: self._auth_attempt(graph, p),
                    now_s=time_s,
                )
                total_attempts += outcome.attempts
                elapsed_auth_s += outcome.elapsed_s
                if not outcome.ok:
                    last_failure = (
                        f"auth exchange via {anchor} failed "
                        f"({outcome.reason})"
                    )
                    continue
                degraded_mode = ""
                if candidate_index > 0:
                    degraded_mode = "secondary_candidate"
                elif anchor_index > 0:
                    degraded_mode = "alternate_anchor"
                if degraded_mode:
                    note_degraded(f"association_{degraded_mode}")
                metrics = path_metrics(graph, path)
                request = server.make_request(
                    user.user_id, password, nas_id=beacon.satellite_id
                )
                response = server.handle(request, now_s=time_s)
                if not isinstance(response, AccessAccept):
                    return AssociationResult(
                        user_id=user.user_id,
                        satellite_id=beacon.satellite_id,
                        link_setup_s=link_setup_s,
                        auth_path_hops=metrics.hop_count,
                        auth_round_trip_s=elapsed_auth_s,
                        authenticated=False,
                        failure_reason=(
                            f"home ISP rejected: {response.reason}"
                        ),
                        auth_attempts=total_attempts,
                        degraded_mode=degraded_mode,
                    )
                user.associated_satellite = beacon.satellite_id
                user.session_certificate = response.certificate.serial
                return AssociationResult(
                    user_id=user.user_id,
                    satellite_id=beacon.satellite_id,
                    link_setup_s=link_setup_s,
                    auth_path_hops=metrics.hop_count,
                    auth_round_trip_s=elapsed_auth_s,
                    authenticated=True,
                    auth_attempts=total_attempts,
                    degraded_mode=degraded_mode,
                )
        note_degraded("association_unreachable")
        return AssociationResult(
            user_id=user.user_id, satellite_id=primary.satellite_id,
            link_setup_s=primary_setup_s, auth_path_hops=0,
            auth_round_trip_s=elapsed_auth_s, authenticated=False,
            failure_reason=last_failure,
            auth_attempts=total_attempts,
        )

    def _auth_attempt(self, graph: nx.Graph, path) -> tuple:
        attempt = self.channel.attempt_round_trip(
            graph, path, server_processing_s=self.server_processing_s
        )
        return attempt.delivered, attempt.round_trip_s
