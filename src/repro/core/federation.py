"""The multi-operator federation registry.

OpenSpace "proposes networking satellites and ground platforms owned by a
heterogeneous group of small, medium, and large firms ... we envision
connecting their satellites as well as ground infrastructure with
communication links that together results in global coverage."

The federation tracks member operators, validates their fleets against the
interoperability profile on admission, distributes certificate trust
anchors, and applies bad-actor quarantine to membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.interop import InteroperabilityProfile, InteropError, SpacecraftSpec
from repro.ground.station import GroundStation
from repro.security.badactor import BadActorMonitor
from repro.security.certificates import CertificateAuthority, TrustStore


@dataclass
class Operator:
    """One member firm.

    Attributes:
        name: Operator name (the ``owner`` field on assets).
        satellites: The operator's fleet.
        ground_stations: Gateways the operator owns.
        authority: Its certificate authority (roaming-cert issuer).
    """

    name: str
    satellites: List[SpacecraftSpec] = field(default_factory=list)
    ground_stations: List[GroundStation] = field(default_factory=list)
    authority: Optional[CertificateAuthority] = None

    def __post_init__(self) -> None:
        if self.authority is None:
            self.authority = CertificateAuthority(self.name)

    @property
    def satellite_count(self) -> int:
        return len(self.satellites)


class Federation:
    """The OpenSpace membership and trust registry.

    Args:
        profile: Interoperability profile enforced on admission.
        monitor: Bad-actor monitor controlling quarantine.
    """

    def __init__(self, profile: Optional[InteroperabilityProfile] = None,
                 monitor: Optional[BadActorMonitor] = None):
        self.profile = profile or InteroperabilityProfile()
        self.monitor = monitor or BadActorMonitor()
        self.trust_store = TrustStore()
        self._operators: Dict[str, Operator] = {}

    def admit(self, operator: Operator) -> None:
        """Admit an operator after validating its whole fleet.

        Raises:
            ValueError: Duplicate operator name.
            InteropError: Any spacecraft failing the profile (the paper's
                minimal hardware requirement is an admission gate).
        """
        if operator.name in self._operators:
            raise ValueError(f"operator {operator.name!r} already admitted")
        for spec in operator.satellites:
            if spec.owner != operator.name:
                raise InteropError(
                    f"spacecraft {spec.satellite_id!r} declares owner "
                    f"{spec.owner!r} but is filed by {operator.name!r}"
                )
            self.profile.validate(spec)
        self._operators[operator.name] = operator
        self.trust_store.add_authority(operator.authority)

    def operator(self, name: str) -> Operator:
        """Look up a member (raises KeyError when absent)."""
        return self._operators[name]

    @property
    def operators(self) -> List[Operator]:
        return list(self._operators.values())

    @property
    def member_names(self) -> List[str]:
        return sorted(self._operators)

    def active_operators(self) -> List[Operator]:
        """Members not currently quarantined by the bad-actor monitor."""
        return [
            op for op in self._operators.values()
            if not self.monitor.is_quarantined(op.name)
        ]

    def all_satellites(self, include_quarantined: bool = False) -> List[SpacecraftSpec]:
        """The federated fleet (quarantined operators excluded by default).

        Quarantine exclusion is the routing-layer teeth of the paper's
        "quickly identify and cut off bad actors" requirement.
        """
        operators = (
            self._operators.values() if include_quarantined
            else self.active_operators()
        )
        fleet: List[SpacecraftSpec] = []
        for op in operators:
            fleet.extend(op.satellites)
        return fleet

    def all_ground_stations(self, include_quarantined: bool = False) -> List[GroundStation]:
        """The federated ground segment."""
        operators = (
            self._operators.values() if include_quarantined
            else self.active_operators()
        )
        stations: List[GroundStation] = []
        for op in operators:
            stations.extend(op.ground_stations)
        return stations

    @property
    def total_satellite_count(self) -> int:
        return sum(op.satellite_count for op in self._operators.values())
