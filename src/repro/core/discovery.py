"""Neighbour discovery via periodic beacons (paper §2.1/§2.2).

Satellites "broadcast their presence" on the mandatory RF platform;
everything downstream — pairing, association, handover — starts from
hearing a beacon.  The beacon period is a real protocol knob: short
periods find neighbours fast but burn channel time and power; long
periods starve discovery.  This module simulates the trade on the
discrete-event engine: satellites beacon every ``period`` (with random
initial phase to avoid synchronization), a listener joins at t=0, and we
measure time-to-first-discovery, time-to-full-discovery, and the channel
airtime consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of one discovery simulation.

    Attributes:
        beacon_period_s: The swept knob.
        first_discovery_s: Time the listener first heard any satellite.
        full_discovery_s: Time the listener had heard every satellite in
            range (None when the run ended first).
        beacons_sent: Total beacon transmissions.
        airtime_fraction: Fraction of channel time spent on beacons.
        discovered: Satellites heard at least once.
    """

    beacon_period_s: float
    first_discovery_s: Optional[float]
    full_discovery_s: Optional[float]
    beacons_sent: int
    airtime_fraction: float
    discovered: int


class BeaconDiscoverySimulator:
    """Simulates periodic beaconing and listener discovery.

    Args:
        satellite_count: Satellites in radio range of the listener.
        beacon_duration_s: Airtime of one beacon frame.
        loss_probability: Per-beacon reception loss (collisions, fading).
        rng: Seeded generator (initial phases + losses).
    """

    def __init__(self, satellite_count: int, beacon_duration_s: float = 0.01,
                 loss_probability: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if satellite_count < 1:
            raise ValueError(
                f"need at least one satellite, got {satellite_count}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        self.satellite_count = satellite_count
        self.beacon_duration_s = beacon_duration_s
        self.loss_probability = loss_probability
        self._rng = rng or np.random.default_rng(0)

    def run(self, beacon_period_s: float, duration_s: float) -> DiscoveryResult:
        """Simulate ``duration_s`` of beaconing at the given period."""
        if beacon_period_s <= 0.0:
            raise ValueError(
                f"beacon period must be positive, got {beacon_period_s}"
            )
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        engine = SimulationEngine()
        heard: Dict[int, float] = {}
        stats = {"sent": 0, "first": None, "full": None}

        def beacon(sat_index: int) -> None:
            stats["sent"] += 1
            if self._rng.random() >= self.loss_probability:
                if sat_index not in heard:
                    heard[sat_index] = engine.now_s
                    if stats["first"] is None:
                        stats["first"] = engine.now_s
                    if (len(heard) == self.satellite_count
                            and stats["full"] is None):
                        stats["full"] = engine.now_s
            next_time = engine.now_s + beacon_period_s
            if next_time <= duration_s:
                engine.schedule(next_time, lambda: beacon(sat_index))

        for index in range(self.satellite_count):
            phase = float(self._rng.uniform(0.0, beacon_period_s))
            if phase <= duration_s:
                engine.schedule(phase, lambda i=index: beacon(i))
        engine.run_until(duration_s)

        airtime = stats["sent"] * self.beacon_duration_s / duration_s
        return DiscoveryResult(
            beacon_period_s=beacon_period_s,
            first_discovery_s=stats["first"],
            full_discovery_s=stats["full"],
            beacons_sent=stats["sent"],
            airtime_fraction=min(1.0, airtime),
            discovered=len(heard),
        )

    def sweep(self, periods_s: Sequence[float],
              duration_s: float) -> List[DiscoveryResult]:
        """Run the period sweep (fresh phases per point, same stream)."""
        return [self.run(period, duration_s) for period in periods_s]
