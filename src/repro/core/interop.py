"""The OpenSpace interoperability profile and spacecraft specifications.

"To facilitate such links with a low entry-barrier, there needs to be a
minimal hardware requirement for a satellite to join OpenSpace, as well as
a protocol to allow satellites to both broadcast their presence, and share
their ISL specifications."  The profile enforces the paper's minimum: RF
ISL capability is mandatory; laser terminals are optional and subject to
power-budget feasibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.isl.link import LinkTechnology, technology_of
from repro.isl.power import (
    PowerBudget,
    SlewModel,
    largesat_power_budget,
    midsat_power_budget,
    smallsat_power_budget,
)
from repro.isl.topology import IslNode
from repro.orbits.elements import OrbitalElements
from repro.phy.optical import OpticalTerminal
from repro.phy.rf import (
    RFTerminal,
    standard_ku_space_terminal,
    standard_sband_isl_terminal,
    standard_uhf_isl_terminal,
)

Terminal = Union[RFTerminal, OpticalTerminal]


class InteropError(Exception):
    """Raised when a spacecraft fails the OpenSpace profile."""


class SizeClass(enum.Enum):
    """Coarse spacecraft classes (drive power, mass, and capability)."""

    SMALL = "small"     # cubesat-class: RF ISLs only
    MEDIUM = "medium"   # smallsat bus: can host one laser terminal
    LARGE = "large"     # megaconstellation-class: multiple laser ISLs


@dataclass
class SpacecraftSpec:
    """Everything one spacecraft declares to the federation.

    This is the payload of the pairing protocol's spec exchange — "a pair
    request which contains its technical specifications (for example
    whether optical links are supported, and the exact position of its
    laser diodes)".

    Attributes:
        satellite_id: Stable identifier (graph node key).
        owner: Operating firm.
        size_class: Coarse capability class.
        elements: The spacecraft's published orbital elements.
        isl_terminals: ISL-capable terminals (RF and/or optical).
        ground_terminal: The user/ground-facing terminal.
        power: Electrical power budget.
        slew: Attitude-slew model (laser pointing).
        laser_boresights_deg: Body-frame azimuths of mounted laser
            terminals ("the exact position of its laser diodes").
    """

    satellite_id: str
    owner: str
    size_class: SizeClass
    elements: OrbitalElements
    isl_terminals: List[Terminal] = field(default_factory=list)
    ground_terminal: Optional[RFTerminal] = None
    power: PowerBudget = field(default_factory=smallsat_power_budget)
    slew: SlewModel = field(default_factory=SlewModel)
    laser_boresights_deg: List[float] = field(default_factory=list)

    @property
    def supports_optical(self) -> bool:
        return any(
            technology_of(t) is LinkTechnology.OPTICAL for t in self.isl_terminals
        )

    @property
    def rf_isl_terminals(self) -> List[Terminal]:
        return [
            t for t in self.isl_terminals
            if technology_of(t) is not None
            and technology_of(t).is_rf
        ]

    def to_isl_node(self, allow_optical: Optional[bool] = None) -> IslNode:
        """Project to the topology builder's node type."""
        if allow_optical is None:
            allow_optical = self.supports_optical
        return IslNode(
            node_id=self.satellite_id,
            terminals=list(self.isl_terminals),
            max_degree=self.power.max_concurrent_isls,
            allow_optical=allow_optical,
            owner=self.owner,
        )


@dataclass(frozen=True)
class InteroperabilityProfile:
    """The minimal hardware requirement to join OpenSpace.

    Attributes:
        required_rf_technologies: A spacecraft must support at least one of
            these RF ISL technologies (the paper mandates RF at minimum).
        require_ground_terminal: Whether a user/gateway-facing terminal is
            required (relay-only craft may omit it when False).
        min_isl_degree: Minimum concurrent-ISL capability; a craft unable
            to hold two links cannot usefully relay.
    """

    required_rf_technologies: frozenset = frozenset(
        {LinkTechnology.RF_UHF, LinkTechnology.RF_SBAND}
    )
    require_ground_terminal: bool = False
    min_isl_degree: int = 1

    def validate(self, spec: SpacecraftSpec) -> None:
        """Check one spacecraft against the profile.

        Raises:
            InteropError: Listing every violated requirement.
        """
        problems: List[str] = []
        technologies = {
            technology_of(t) for t in spec.isl_terminals
        } - {None}
        if not (technologies & self.required_rf_technologies):
            wanted = ", ".join(sorted(t.value for t in self.required_rf_technologies))
            problems.append(
                f"no mandatory RF ISL terminal (needs one of: {wanted})"
            )
        if self.require_ground_terminal and spec.ground_terminal is None:
            problems.append("no ground-facing terminal")
        if spec.power.max_concurrent_isls < self.min_isl_degree:
            problems.append(
                f"ISL degree {spec.power.max_concurrent_isls} below minimum "
                f"{self.min_isl_degree}"
            )
        if spec.supports_optical and not spec.laser_boresights_deg:
            problems.append(
                "optical terminals declared but no laser boresight positions"
            )
        if problems:
            raise InteropError(
                f"spacecraft {spec.satellite_id!r} fails OpenSpace profile: "
                + "; ".join(problems)
            )

    def is_compliant(self, spec: SpacecraftSpec) -> bool:
        """Boolean convenience wrapper over :meth:`validate`."""
        try:
            self.validate(spec)
        except InteropError:
            return False
        return True


def small_spacecraft(satellite_id: str, owner: str,
                     elements: OrbitalElements) -> SpacecraftSpec:
    """A cubesat-class OpenSpace craft: UHF+S-band RF ISLs, no laser."""
    return SpacecraftSpec(
        satellite_id=satellite_id,
        owner=owner,
        size_class=SizeClass.SMALL,
        elements=elements,
        isl_terminals=[
            standard_uhf_isl_terminal(),
            standard_sband_isl_terminal(),
        ],
        ground_terminal=standard_ku_space_terminal(),
        power=smallsat_power_budget(),
    )


def medium_spacecraft(satellite_id: str, owner: str,
                      elements: OrbitalElements) -> SpacecraftSpec:
    """A smallsat-bus craft: RF ISLs plus one laser terminal."""
    return SpacecraftSpec(
        satellite_id=satellite_id,
        owner=owner,
        size_class=SizeClass.MEDIUM,
        elements=elements,
        isl_terminals=[
            standard_sband_isl_terminal(),
            OpticalTerminal(),
        ],
        ground_terminal=standard_ku_space_terminal(),
        power=midsat_power_budget(),
        laser_boresights_deg=[0.0],
    )


def large_spacecraft(satellite_id: str, owner: str,
                     elements: OrbitalElements) -> SpacecraftSpec:
    """A megaconstellation-class craft: multiple laser ISLs."""
    return SpacecraftSpec(
        satellite_id=satellite_id,
        owner=owner,
        size_class=SizeClass.LARGE,
        elements=elements,
        isl_terminals=[
            standard_sband_isl_terminal(),
            OpticalTerminal(tx_power_w=4.0, aperture_m=0.1),
        ],
        ground_terminal=standard_ku_space_terminal(),
        power=largesat_power_budget(),
        laser_boresights_deg=[0.0, 90.0, 180.0, 270.0],
    )


def derate_power_for_eclipse(spec: SpacecraftSpec,
                             start_s: float = 0.0) -> SpacecraftSpec:
    """Scale a spacecraft's solar generation by its lit orbit fraction.

    Factory power budgets quote full-sun panel output; the effective
    orbit-average generation is lower by the eclipse fraction — the
    "energy budget" heterogeneity the paper highlights is partly an
    orbit-geometry effect.  Returns the same spec with a derated
    :class:`PowerBudget` (other fields untouched).
    """
    from repro.orbits.eclipse import eclipse_fraction
    from repro.orbits.kepler import KeplerPropagator

    fraction = eclipse_fraction(KeplerPropagator(spec.elements),
                                start_s=start_s)
    derated = PowerBudget(
        battery_capacity_wh=spec.power.battery_capacity_wh,
        solar_generation_w=spec.power.solar_generation_w * (1.0 - fraction),
        bus_load_w=spec.power.bus_load_w,
        max_concurrent_isls=spec.power.max_concurrent_isls,
        charge_wh=spec.power.charge_wh,
    )
    spec.power = derated
    return spec


def build_fleet(constellation, owner: str, size_class: SizeClass,
                id_prefix: str = "sat") -> List[SpacecraftSpec]:
    """One spacecraft spec per satellite in a constellation.

    Args:
        constellation: Iterable of :class:`OrbitalElements`.
        owner: Operator owning the whole fleet.
        size_class: Capability class applied to every craft.
        id_prefix: Satellite ids become ``{prefix}-{owner}-{index}``.
    """
    factory = {
        SizeClass.SMALL: small_spacecraft,
        SizeClass.MEDIUM: medium_spacecraft,
        SizeClass.LARGE: large_spacecraft,
    }[size_class]
    return [
        factory(f"{id_prefix}-{owner}-{index}", owner, elements)
        for index, elements in enumerate(constellation)
    ]
