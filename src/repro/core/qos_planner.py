"""Preemptive QoS planning from public orbital knowledge (paper §2.2).

"For providers who own satellites with diverse technical specifications
... using these known orbital configurations enables suitable distribution
of satellites to meet the needs of a diverse user base, while also making
it possible to preemptively adjust their QoS guarantees.  For example, the
provider can ensure the presence of laser-link-enabled spacecraft to
handle traffic from users with more stringent QoS requirements.  At the
same time, in regions where routing paths will be bottlenecked by
bandwidth-limited links, the provider can adjust advertised plans to
reflect these looser QoS guarantees."

The planner rolls the network forward over future epochs (everything is
predictable from the published elements) and produces, per service region,
the schedule of service classes the provider can honestly advertise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import OpenSpaceNetwork
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.routing.qos import QosRequirement, QosRouter

#: Default advertised classes, most to least stringent.
DEFAULT_CLASSES: List[Tuple[str, QosRequirement]] = [
    ("premium", QosRequirement(min_bandwidth_bps=50e6,
                               max_end_to_end_delay_s=0.120)),
    ("standard", QosRequirement(min_bandwidth_bps=2e6)),
    ("best_effort", QosRequirement()),
]


@dataclass(frozen=True)
class QosForecastEntry:
    """The advertisable service at one region and epoch.

    Attributes:
        time_s: Epoch.
        region_name: The service region.
        admissible_classes: Class names the network can honour, most
            stringent first.
        best_class: The highest class admissible ("none" when the region
            is unserved at this epoch).
    """

    time_s: float
    region_name: str
    admissible_classes: Tuple[str, ...]
    best_class: str


@dataclass
class QosForecast:
    """A full advertised-plan schedule.

    Attributes:
        entries: One entry per (epoch, region).
        horizon_s: Forecast horizon.
    """

    entries: List[QosForecastEntry] = field(default_factory=list)
    horizon_s: float = 0.0

    def for_region(self, region_name: str) -> List[QosForecastEntry]:
        return [e for e in self.entries if e.region_name == region_name]

    def guaranteed_class(self, region_name: str) -> str:
        """The class a provider can advertise *continuously* in a region.

        The honest advertisement is the weakest class over the horizon —
        exactly the paper's "adjust advertised plans to reflect these
        looser QoS guarantees".
        """
        order = [name for name, _req in DEFAULT_CLASSES] + ["none"]
        entries = self.for_region(region_name)
        if not entries:
            return "none"
        worst_index = max(order.index(e.best_class) for e in entries)
        return order[worst_index]

    def availability_of_class(self, region_name: str,
                              class_name: str) -> float:
        """Fraction of epochs a class is admissible in a region."""
        entries = self.for_region(region_name)
        if not entries:
            return 0.0
        hits = sum(
            1 for e in entries if class_name in e.admissible_classes
        )
        return hits / len(entries)


class QosPlanner:
    """Forecasts advertisable QoS per region from orbital knowledge.

    Args:
        network: The provider's (or federation's) network.
        classes: Ordered (name, requirement) pairs, most stringent first.
        router: QoS router used for admissibility checks.
    """

    def __init__(self, network: OpenSpaceNetwork,
                 classes: Optional[Sequence[Tuple[str, QosRequirement]]] = None,
                 router: Optional[QosRouter] = None):
        self.network = network
        self.classes = list(classes) if classes is not None else list(
            DEFAULT_CLASSES
        )
        self.router = router or QosRouter()

    def forecast(self, regions: Dict[str, GeodeticPoint],
                 start_s: float, horizon_s: float,
                 epoch_s: float = 300.0) -> QosForecast:
        """Roll the network forward and grade each region per epoch.

        Args:
            regions: Region name -> representative user location.
            start_s: Forecast start.
            horizon_s: Forecast length.
            epoch_s: Epoch spacing.

        Returns:
            The advertised-plan schedule.
        """
        if horizon_s <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        if epoch_s <= 0.0:
            raise ValueError(f"epoch must be positive, got {epoch_s}")
        forecast = QosForecast(horizon_s=horizon_s)
        probes = {
            name: UserTerminal(f"probe-{name}", site, "planner",
                               min_elevation_deg=10.0)
            for name, site in regions.items()
        }
        for time_s in np.arange(start_s, start_s + horizon_s, epoch_s):
            snap = self.network.snapshot(float(time_s),
                                         users=list(probes.values()))
            gateways = snap.nodes_of_kind("ground_station")
            for name, probe in probes.items():
                admissible = []
                for class_name, requirement in self.classes:
                    if self._region_admits(snap, probe.user_id, gateways,
                                            requirement):
                        admissible.append(class_name)
                forecast.entries.append(QosForecastEntry(
                    time_s=float(time_s),
                    region_name=name,
                    admissible_classes=tuple(admissible),
                    best_class=admissible[0] if admissible else "none",
                ))
        return forecast

    def _region_admits(self, snap, probe_id: str, gateways: List[str],
                       requirement: QosRequirement) -> bool:
        """Whether any gateway path honours the requirement right now."""
        for gateway in gateways:
            if self.router.route(snap.graph, probe_id, gateway,
                                 requirement).admitted:
                return True
        return False
