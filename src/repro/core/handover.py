"""Satellite handover: predictive successor vs re-authentication baseline.

"In OpenSpace, the satellite uses advance knowledge of orbital trajectories
to pick a successor, i.e., the satellite that it will hand over its
connection to the ground user to, once the satellite is out of the ground
user's line-of-sight.  The satellite communicates specifics of its
successor to the user, who establishes a new session with the successor.
This eliminates the need [to] run authentication and association protocols
again, ensuring a smooth handoff."

Two schemes are simulated over a user's pass timeline:

* ``PREDICTIVE`` — the OpenSpace scheme: the serving satellite picks the
  successor from the public contact schedule ahead of time; at handover
  the user presents its roaming certificate and only a new link setup is
  paid.
* ``REAUTHENTICATE`` — the baseline: every handover behaves like a fresh
  association, paying the full RADIUS round trip to the home ISP.

The Starlink comparison point ("satellite handover occurring every 15
seconds") is exposed as :data:`STARLINK_HANDOVER_INTERVAL_S` and used by
the handover ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs as _obs
from repro.orbits.contact import ContactWindow

#: Starlink's observed handover cadence (Garcia et al., LEO-NET '23).
STARLINK_HANDOVER_INTERVAL_S = 15.0


class HandoverScheme(enum.Enum):
    """Which handover protocol a simulation run uses."""

    PREDICTIVE = "predictive"
    REAUTHENTICATE = "reauthenticate"


@dataclass(frozen=True)
class HandoverEvent:
    """One satellite-to-satellite handover in a timeline.

    Attributes:
        time_s: When the handover executed.
        from_satellite: Previous serving satellite (None for the initial
            association).
        to_satellite: New serving satellite.
        interruption_s: Time the user had no serving link.
        reauthenticated: Whether a full RADIUS exchange ran.
    """

    time_s: float
    from_satellite: Optional[int]
    to_satellite: int
    interruption_s: float
    reauthenticated: bool


@dataclass
class PassTimeline:
    """Result of simulating a user's connectivity over a period.

    Attributes:
        scheme: The handover scheme used.
        events: Every handover (including the initial association).
        total_interruption_s: Sum of per-event interruptions.
        coverage_gap_s: Time with no satellite overhead at all (not
            chargeable to the handover scheme).
        duration_s: Simulated period length.
    """

    scheme: HandoverScheme
    events: List[HandoverEvent] = field(default_factory=list)
    total_interruption_s: float = 0.0
    coverage_gap_s: float = 0.0
    duration_s: float = 0.0

    @property
    def handover_count(self) -> int:
        """Handovers excluding the initial association."""
        return max(0, len(self.events) - 1)

    @property
    def availability(self) -> float:
        """Fraction of covered time the user actually had service."""
        covered = self.duration_s - self.coverage_gap_s
        if covered <= 0.0:
            return 0.0
        return max(0.0, covered - self.total_interruption_s) / covered

    @property
    def mean_interruption_s(self) -> float:
        if not self.events:
            return 0.0
        return self.total_interruption_s / len(self.events)


def mask_contact_windows(
    windows: Sequence[ContactWindow],
    outages: Sequence[Tuple[int, float, float]],
) -> List[ContactWindow]:
    """Subtract satellite outage intervals from a contact schedule.

    Fault injection invalidates the proactive successor plan: a satellite
    that is down during (part of) its pass cannot serve, so its window is
    clipped or split around each outage. Re-running the
    :class:`HandoverSimulator` on the masked schedule is how handover
    re-selection reacts to faults — successors that disappeared force
    extra handovers or coverage gaps.

    Args:
        windows: The original contact schedule.
        outages: ``(satellite_index, start_s, end_s)`` outage intervals;
            an ``end_s`` of ``float("inf")`` models a permanent loss.

    Returns:
        The surviving (sub-)windows, sorted by start time. Peak elevation
        is inherited from the parent window (a conservative bound; the
        true peak of a clipped window may be lower).
    """
    by_satellite: Dict[int, List[Tuple[float, float]]] = {}
    for satellite_index, start_s, end_s in outages:
        if end_s < start_s:
            raise ValueError(
                f"outage ends at {end_s} before it starts at {start_s}"
            )
        if end_s == start_s:
            # A zero-length outage removes nothing; skipping it avoids
            # splitting a window into two abutting pieces (which would
            # charge a phantom handover at the split point).
            continue
        by_satellite.setdefault(satellite_index, []).append((start_s, end_s))

    masked: List[ContactWindow] = []
    for window in windows:
        pieces = [(window.start_s, window.end_s)]
        for outage_start, outage_end in by_satellite.get(
                window.satellite_index, ()):
            next_pieces: List[Tuple[float, float]] = []
            for piece_start, piece_end in pieces:
                if outage_end <= piece_start or outage_start >= piece_end:
                    next_pieces.append((piece_start, piece_end))
                    continue
                if outage_start > piece_start:
                    next_pieces.append((piece_start, outage_start))
                if outage_end < piece_end:
                    next_pieces.append((outage_end, piece_end))
            pieces = next_pieces
        for piece_start, piece_end in pieces:
            if piece_end - piece_start <= 0.0:
                continue
            masked.append(replace(window, start_s=piece_start,
                                  end_s=piece_end))
    masked.sort(key=lambda w: (w.start_s, w.satellite_index))
    return masked


class HandoverReliability:
    """Lossy control signaling for the handover exchanges.

    Each handover's control exchange (successor notification + session
    setup, or the full re-authentication) runs through a
    :class:`~repro.reliability.exchange.ReliableExchange`; lost frames
    cost retransmission timeouts, and a satellite whose exchanges keep
    failing trips its breaker.  Losses are drawn from a private seeded
    generator; at ``loss_probability`` 0 no draw happens at all, so the
    zero-loss timeline is byte-identical to running without reliability.

    Args:
        exchange: The retry/breaker primitive.
        loss_probability: Per-exchange-attempt loss chance.
        seed: Seed for the private loss generator.
    """

    def __init__(self, exchange, loss_probability: float = 0.0,
                 seed: int = 0):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self.exchange = exchange
        self.loss_probability = loss_probability
        self._rng = np.random.default_rng(seed)

    def charge(self, key: str, nominal_s: float, now_s: float):
        """Run one handover control exchange; returns the ExchangeResult."""
        def attempt(_index: int):
            if self.loss_probability <= 0.0:
                return True, nominal_s
            delivered = bool(self._rng.random() >= self.loss_probability)
            return delivered, nominal_s
        return self.exchange.run(key, attempt, now_s=now_s)


class HandoverSimulator:
    """Replays a contact schedule under a handover scheme.

    Args:
        link_setup_s: New-session establishment time paid on every
            handover under both schemes.
        auth_round_trip_s: RADIUS round trip to the home ISP; paid per
            handover only under ``REAUTHENTICATE`` (and once at initial
            association under both).
        successor_notice_s: Predictive scheme: how far ahead the serving
            satellite announces the successor; when the overlap between
            consecutive windows is at least this, the user pre-establishes
            and the interruption is only the link switch.
        switch_s: Residual interruption for a pre-established switch.
    """

    def __init__(self, link_setup_s: float = 0.020,
                 auth_round_trip_s: float = 0.180,
                 successor_notice_s: float = 5.0,
                 switch_s: float = 0.002):
        self.link_setup_s = link_setup_s
        self.auth_round_trip_s = auth_round_trip_s
        self.successor_notice_s = successor_notice_s
        self.switch_s = switch_s

    def run(self, windows: Sequence[ContactWindow], scheme: HandoverScheme,
            start_s: float, end_s: float,
            reliability: Optional[HandoverReliability] = None) -> PassTimeline:
        """Simulate service over ``[start_s, end_s]`` given contact windows.

        The serving satellite is always kept until it sets, then the next
        satellite whose window covers (or next begins after) the set time
        takes over — mirroring the paper's successor selection from the
        public schedule.

        Args:
            windows: Contact windows for the user's location (any fleet).
            scheme: Handover protocol to charge.
            start_s: Simulation period start.
            end_s: Simulation period end.
            reliability: Optional lossy-control-plane model; each event's
                control exchange is charged through it (retries inflate
                the interruption, an exhausted exchange degrades to a
                fresh association).  ``None`` keeps perfect delivery.
        """
        if end_s <= start_s:
            raise ValueError(f"end {end_s} must be after start {start_s}")
        timeline = PassTimeline(scheme=scheme, duration_s=end_s - start_s)
        ordered = sorted(windows, key=lambda w: w.start_s)

        now = start_s
        current: Optional[ContactWindow] = None
        previous_sat: Optional[int] = None
        while now < end_s:
            # Find the window serving `now`, preferring the one that lasts
            # longest (fewest handovers — what a successor planner does).
            active = [
                w for w in ordered if w.start_s <= now < w.end_s
            ]
            if not active:
                upcoming = [w for w in ordered if w.start_s >= now]
                if not upcoming:
                    timeline.coverage_gap_s += end_s - now
                    break
                next_window = min(upcoming, key=lambda w: w.start_s)
                timeline.coverage_gap_s += min(next_window.start_s, end_s) - now
                now = next_window.start_s
                continue
            current = max(active, key=lambda w: w.end_s)

            is_initial = previous_sat is None
            overlap_s = 0.0
            if not is_initial:
                # Overlap between the departing satellite's window (which
                # ends at `now`) and the successor's window start.
                overlap_s = now - current.start_s
            if is_initial:
                interruption = self.link_setup_s + self.auth_round_trip_s
                reauth = True
            elif scheme is HandoverScheme.REAUTHENTICATE:
                interruption = self.link_setup_s + self.auth_round_trip_s
                reauth = True
            else:
                if overlap_s >= self.successor_notice_s:
                    interruption = self.switch_s
                else:
                    interruption = self.link_setup_s
                reauth = False

            if reliability is not None:
                outcome = reliability.charge(
                    f"handover:{current.satellite_index}", interruption, now
                )
                if outcome.ok:
                    interruption = outcome.elapsed_s
                else:
                    # Control exchange exhausted (or breaker open): the
                    # user degrades to a fresh association with the
                    # successor rather than stalling forever.
                    interruption = (outcome.elapsed_s + self.link_setup_s
                                    + self.auth_round_trip_s)
                    reauth = True
                    recorder = _obs.active()
                    if recorder.enabled:
                        recorder.count("reliability.degraded",
                                       label="handover_control_failed")

            timeline.events.append(
                HandoverEvent(
                    time_s=now,
                    from_satellite=previous_sat,
                    to_satellite=current.satellite_index,
                    interruption_s=interruption,
                    reauthenticated=reauth,
                )
            )
            timeline.total_interruption_s += interruption
            previous_sat = current.satellite_index
            now = min(current.end_s, end_s)
            if now >= end_s:
                break
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("handover.events", len(timeline.events),
                           label=scheme.value)
            recorder.count("handover.coverage_gap_s",
                           timeline.coverage_gap_s, label=scheme.value)
            for event in timeline.events:
                recorder.observe("handover.interruption_s",
                                 event.interruption_s, label=scheme.value)
                recorder.event(
                    "handover", event.time_s,
                    subject=f"sat:{event.to_satellite}",
                    from_satellite=(-1 if event.from_satellite is None
                                    else event.from_satellite),
                    interruption_s=event.interruption_s,
                    reauthenticated=event.reauthenticated,
                    scheme=scheme.value,
                )
        return timeline

    def reselect(self, windows: Sequence[ContactWindow],
                 outages: Sequence[Tuple[int, float, float]],
                 scheme: HandoverScheme, start_s: float, end_s: float,
                 reliability: Optional[HandoverReliability] = None
                 ) -> PassTimeline:
        """Re-run successor selection against the fault-masked schedule.

        When faults consume part (or all) of the planned schedule the
        timeline degrades — extra handovers, coverage gaps, in the limit
        an all-gap timeline — but the simulation never raises on a dead
        successor.

        Args:
            windows: The originally planned contact windows.
            outages: ``(satellite_index, start_s, end_s)`` outages (an
                ``inf`` end is a permanent loss).
            scheme: Handover scheme to charge.
            start_s: Period start.
            end_s: Period end.
            reliability: Optional lossy-control-plane model (see
                :meth:`run`).
        """
        masked = mask_contact_windows(windows, outages)
        recorder = _obs.active()
        if recorder.enabled and len(masked) != len(windows):
            recorder.count("reliability.degraded",
                           label="handover_reselection")
        return self.run(masked, scheme, start_s, end_s,
                        reliability=reliability)

    def compare_schemes(self, windows: Sequence[ContactWindow],
                        start_s: float, end_s: float) -> Dict[str, PassTimeline]:
        """Run both schemes over the same schedule."""
        return {
            scheme.value: self.run(windows, scheme, start_s, end_s)
            for scheme in HandoverScheme
        }
