"""The inter-satellite pairing handshake.

"When a satellite receives a beacon from another satellite, it can
initiate pairing by broadcasting a pair request which contains its
technical specifications (for example whether optical links are supported,
and the exact position of its laser diodes) enabling laser beamforming if
the two satellites have the capability and available bandwidth for optical
links.  The two satellites can then orient themselves such that their
communication terminals are well positioned for data transfer."

The protocol always succeeds in establishing the mandatory RF link first
(RF antennas broadcast, so no pointing is needed), then optionally
upgrades to optical: both sides exchange laser boresights, slew, and run
PAT acquisition.  The outcome records the established link and every
timing component, which the pairing benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.beacon import Beacon
from repro.core.interop import SpacecraftSpec
from repro.isl.link import IslLink, best_link_between
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.phy.optical import PATController


@dataclass(frozen=True)
class PairRequest:
    """The spec-exchange message that initiates pairing.

    Attributes:
        initiator_id: The satellite requesting the pair.
        supports_optical: Whether the initiator can do laser links.
        laser_boresights_deg: Body-frame mount azimuths of its laser
            terminals.
        rf_bands: RF ISL bands the initiator supports.
        free_isl_slots: Spare concurrent-ISL capacity.
    """

    initiator_id: str
    supports_optical: bool
    laser_boresights_deg: Tuple[float, ...]
    rf_bands: Tuple[str, ...]
    free_isl_slots: int

    @classmethod
    def from_spec(cls, spec: SpacecraftSpec) -> "PairRequest":
        return cls(
            initiator_id=spec.satellite_id,
            supports_optical=spec.supports_optical,
            laser_boresights_deg=tuple(spec.laser_boresights_deg),
            rf_bands=tuple(t.band_name for t in spec.rf_isl_terminals),
            free_isl_slots=max(
                0,
                spec.power.max_concurrent_isls - spec.power.active_isl_count,
            ),
        )


@dataclass(frozen=True)
class PairingOutcome:
    """Result of one pairing attempt.

    Attributes:
        link: The established ISL (None when pairing failed entirely).
        rf_handshake_s: Time for the RF beacon/pair-request/confirm
            exchange (three one-way trips plus processing).
        slew_s: Attitude slew time when an optical upgrade ran (0 for RF).
        pat_s: PAT acquisition time for the optical upgrade (0 for RF).
        upgraded_to_optical: True when the final link is a laser link.
        failure_reason: Populated when ``link`` is None.
    """

    link: Optional[IslLink]
    rf_handshake_s: float
    slew_s: float
    pat_s: float
    upgraded_to_optical: bool
    failure_reason: str = ""

    @property
    def total_time_s(self) -> float:
        return self.rf_handshake_s + self.slew_s + self.pat_s

    @property
    def succeeded(self) -> bool:
        return self.link is not None


def predict_hold_duration_s(spec_a: SpacecraftSpec, spec_b: SpacecraftSpec,
                            start_s: float, horizon_s: float = 3600.0,
                            step_s: float = 30.0,
                            max_range_km: float = 6000.0) -> float:
    """How long a pair will stay linkable, from public orbital knowledge.

    "While the information on when and how to spin is available up-front
    in monolithic networks, this information must be discovered on the fly
    in a heterogeneous network" — discovered, but still *computed*: both
    sides know each other's published elements after the spec exchange, so
    the expected hold (and hence whether a laser upgrade amortizes) is a
    deterministic orbital calculation.

    Args:
        spec_a: One spacecraft.
        spec_b: The other.
        start_s: Evaluation start time.
        horizon_s: How far ahead to look.
        step_s: Scan step.

    Returns:
        Seconds from ``start_s`` until line of sight or range is first
        lost (0 when the pair is not linkable at ``start_s``;
        ``horizon_s`` when the link holds through the whole horizon).
    """
    from repro.orbits.kepler import KeplerPropagator
    from repro.orbits.visibility import has_line_of_sight

    if horizon_s <= 0.0 or step_s <= 0.0:
        raise ValueError(
            f"horizon and step must be positive, got {horizon_s}, {step_s}"
        )
    prop_a = KeplerPropagator(spec_a.elements)
    prop_b = KeplerPropagator(spec_b.elements)
    elapsed = 0.0
    while elapsed <= horizon_s:
        t = start_s + elapsed
        pos_a = prop_a.position_at(t)
        pos_b = prop_b.position_at(t)
        distance = float(np.linalg.norm(pos_a - pos_b))
        if distance > max_range_km or not has_line_of_sight(pos_a, pos_b):
            return elapsed
        elapsed += step_s
    return horizon_s


class PairingProtocol:
    """Runs the pairing handshake between two spacecraft.

    Args:
        per_message_processing_s: Onboard processing per handshake message.
        min_optical_hold_s: Do not bother upgrading to optical unless the
            pair expects to hold the link at least this long (the slew+PAT
            investment must amortize).
    """

    def __init__(self, per_message_processing_s: float = 0.005,
                 min_optical_hold_s: float = 30.0):
        self.per_message_processing_s = per_message_processing_s
        self.min_optical_hold_s = min_optical_hold_s

    def _rf_handshake_time(self, distance_km: float) -> float:
        """Beacon + pair request + confirm: three one-way trips."""
        one_way = distance_km / SPEED_OF_LIGHT_KM_S
        return 3.0 * (one_way + self.per_message_processing_s)

    def _required_slew_deg(self, spec: SpacecraftSpec,
                           bearing_deg: float) -> float:
        """Smallest rotation aligning any laser boresight with a bearing."""
        if not spec.laser_boresights_deg:
            return 180.0
        errors = []
        for boresight in spec.laser_boresights_deg:
            delta = abs((bearing_deg - boresight + 180.0) % 360.0 - 180.0)
            errors.append(delta)
        return min(errors)

    def pair(self, spec_a: SpacecraftSpec, spec_b: SpacecraftSpec,
             distance_km: float,
             bearing_a_to_b_deg: float = 0.0,
             expected_hold_s: float = 600.0) -> PairingOutcome:
        """Attempt to pair two spacecraft at the given geometry.

        Args:
            spec_a: Initiator spacecraft.
            spec_b: Responder spacecraft.
            distance_km: Current slant range.
            bearing_a_to_b_deg: Body-frame bearing from A to B (drives the
                slew needed to point A's laser; B's slew mirrors it).
            expected_hold_s: How long orbital prediction says the pair will
                stay in range — short encounters skip the optical upgrade.

        Returns:
            A :class:`PairingOutcome`; RF-only when either side lacks
            optical, has no free power, or the encounter is too short.
        """
        if distance_km <= 0.0:
            raise ValueError(f"distance must be positive, got {distance_km}")
        rf_time = self._rf_handshake_time(distance_km)

        rf_link = best_link_between(
            spec_a.satellite_id, spec_a.rf_isl_terminals,
            spec_b.satellite_id, spec_b.rf_isl_terminals,
            distance_km,
        )
        if rf_link is None:
            return PairingOutcome(
                link=None, rf_handshake_s=rf_time, slew_s=0.0, pat_s=0.0,
                upgraded_to_optical=False,
                failure_reason=(
                    f"no common RF band closes at {distance_km:.0f} km "
                    f"(a: {[t.band_name for t in spec_a.rf_isl_terminals]}, "
                    f"b: {[t.band_name for t in spec_b.rf_isl_terminals]})"
                ),
            )

        wants_optical = (
            spec_a.supports_optical
            and spec_b.supports_optical
            and expected_hold_s >= self.min_optical_hold_s
        )
        if wants_optical:
            # Both sides must afford the laser terminal's draw.
            draw_w = 60.0
            wants_optical = (
                spec_a.power.can_activate_isl(draw_w)
                and spec_b.power.can_activate_isl(draw_w)
            )
        if not wants_optical:
            return PairingOutcome(
                link=rf_link, rf_handshake_s=rf_time, slew_s=0.0, pat_s=0.0,
                upgraded_to_optical=False,
            )

        optical_link = best_link_between(
            spec_a.satellite_id, spec_a.isl_terminals,
            spec_b.satellite_id, spec_b.isl_terminals,
            distance_km,
        )
        if optical_link is None or optical_link.technology.is_rf:
            return PairingOutcome(
                link=rf_link, rf_handshake_s=rf_time, slew_s=0.0, pat_s=0.0,
                upgraded_to_optical=False,
            )

        slew_a = spec_a.slew.slew_time_s(
            self._required_slew_deg(spec_a, bearing_a_to_b_deg)
        )
        slew_b = spec_b.slew.slew_time_s(
            self._required_slew_deg(spec_b, (bearing_a_to_b_deg + 180.0) % 360.0)
        )
        slew_s = max(slew_a, slew_b)

        optical_terminal = next(
            t for t in spec_a.isl_terminals
            if not hasattr(t, "band_name")
        )
        pat = PATController(optical_terminal)
        pat_s = pat.acquisition_time_s()

        return PairingOutcome(
            link=optical_link,
            rf_handshake_s=rf_time,
            slew_s=slew_s,
            pat_s=pat_s,
            upgraded_to_optical=True,
        )

    def pair_from_beacon(self, receiver: SpacecraftSpec, beacon: Beacon,
                         time_s: float,
                         receiver_position: np.ndarray,
                         expected_hold_s: float = 600.0) -> PairingOutcome:
        """Pairing initiated by hearing a beacon (receiver initiates).

        The sender's spec is reconstructed from the beacon's advertised
        fields; distance comes from propagating the advertised elements.
        """
        sender_position = beacon.position_at(time_s)
        distance = float(np.linalg.norm(
            np.asarray(receiver_position, dtype=float) - sender_position
        ))
        # A beacon carries enough to build a partner stand-in spec: the
        # actual terminals are negotiated over the RF link after contact.
        partner = SpacecraftSpec(
            satellite_id=beacon.satellite_id,
            owner=beacon.owner,
            size_class=receiver.size_class,
            elements=beacon.elements,
            isl_terminals=list(receiver.isl_terminals)
            if beacon.supports_optical
            else list(receiver.rf_isl_terminals),
            laser_boresights_deg=[0.0] if beacon.supports_optical else [],
        )
        return self.pair(
            receiver, partner, distance, expected_hold_s=expected_hold_s
        )
