"""The OpenSpaceNetwork facade.

Ties the federated fleet, the shared ground-station network, and user
terminals into one time-varying graph, and answers the end-to-end
questions the paper's evaluation asks: what is the latency from a user to
ground infrastructure, and what fraction of the Earth does the system
cover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.federation import Federation
from repro.core.interop import SpacecraftSpec
from repro.ground.station import GroundStation
from repro.ground.user import UserTerminal
from repro.isl.topology import IslTopologyBuilder, TopologySnapshot
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.orbits.kepler import KeplerPropagator
from repro.orbits.visibility import elevation_angle, slant_range
from repro.phy.modulation import achievable_rate_bps
from repro.phy.rf import RFTerminal, rf_link_budget
from repro.routing.metrics import (
    EdgeCostModel,
    RouteMetrics,
    path_metrics,
    shortest_path,
)


@dataclass
class NetworkSnapshot:
    """The whole-network graph at one instant.

    Nodes carry a ``kind`` attribute (``"satellite"``, ``"ground_station"``
    or ``"user"``) and an ``owner`` attribute; edges carry ``delay_s``,
    ``capacity_bps`` and (for ground edges) ``owner``, ``tariff_per_gb``,
    ``queue_delay_s``.

    Attributes:
        time_s: Snapshot timestamp.
        graph: The combined graph.
        isl_snapshot: The satellite-only topology this was built from.
    """

    time_s: float
    graph: nx.Graph
    isl_snapshot: TopologySnapshot

    def route(self, source: str, target: str,
              cost_model: Optional[EdgeCostModel] = None) -> Optional[RouteMetrics]:
        """Cheapest route between two nodes, or None when disconnected."""
        path = shortest_path(self.graph, source, target, cost_model)
        if path is None:
            return None
        return path_metrics(self.graph, path)

    def nodes_of_kind(self, kind: str) -> List[str]:
        return [
            node for node, data in self.graph.nodes(data=True)
            if data.get("kind") == kind
        ]

    def nearest_ground_station_route(
        self, source: str,
        cost_model: Optional[EdgeCostModel] = None,
    ) -> Optional[RouteMetrics]:
        """Best route from a node to any ground station."""
        best: Optional[RouteMetrics] = None
        for station in self.nodes_of_kind("ground_station"):
            metrics = self.route(source, station, cost_model)
            if metrics is None:
                continue
            if best is None or metrics.total_delay_s < best.total_delay_s:
                best = metrics
        return best


class OpenSpaceNetwork:
    """Builds :class:`NetworkSnapshot` objects for a federated deployment.

    Args:
        satellites: The federated fleet (from
            :meth:`Federation.all_satellites` or assembled directly).
        ground_stations: The shared gateway network.
        max_isl_range_km: ISL range limit passed to the topology builder.
        ground_elevation_mask_deg: Minimum elevation for ground links.
        gateway_dish_m: Station-side dish diameter used when deriving the
            station terminal matched to each satellite's ground band.
    """

    def __init__(self, satellites: Sequence[SpacecraftSpec],
                 ground_stations: Sequence[GroundStation] = (),
                 max_isl_range_km: float = 6000.0,
                 ground_elevation_mask_deg: float = 10.0,
                 gateway_dish_m: float = 3.5):
        if not satellites:
            raise ValueError("need at least one satellite")
        self.satellites = list(satellites)
        self.ground_stations = list(ground_stations)
        self.ground_elevation_mask_deg = ground_elevation_mask_deg
        self.gateway_dish_m = gateway_dish_m
        self._builder = IslTopologyBuilder(
            [spec.to_isl_node() for spec in self.satellites],
            max_range_km=max_isl_range_km,
        )
        self._propagators = {
            spec.satellite_id: KeplerPropagator(spec.elements)
            for spec in self.satellites
        }
        self._spec_by_id = {
            spec.satellite_id: spec for spec in self.satellites
        }
        self._station_by_id = {
            station.station_id: station for station in self.ground_stations
        }
        self._failed_satellites: frozenset = frozenset()
        self._failed_stations: frozenset = frozenset()
        self._failed_links: frozenset = frozenset()

    @classmethod
    def from_federation(cls, federation: Federation,
                        **kwargs) -> "OpenSpaceNetwork":
        """Build from a federation's active (non-quarantined) members."""
        return cls(
            satellites=federation.all_satellites(),
            ground_stations=federation.all_ground_stations(),
            **kwargs,
        )

    # -- fault state ---------------------------------------------------
    # The repro.faults injector drives these; snapshot() consults them so
    # failed elements vanish from the graph exactly as if the network had
    # been built from the surviving fleet alone (degree slots included).

    def set_fault_state(self, failed_satellites: Sequence[str] = (),
                        failed_stations: Sequence[str] = (),
                        failed_links: Sequence[Tuple[str, str]] = ()) -> None:
        """Replace the set of currently failed elements.

        Args:
            failed_satellites: Satellite ids excluded from every snapshot.
            failed_stations: Ground-station ids excluded likewise.
            failed_links: Satellite-id pairs whose ISL (if built) is
                severed; order within a pair does not matter.

        Raises:
            ValueError: For ids this network has never heard of — the
                injector filters unknown targets, so an unknown id here
                is a caller bug worth failing loudly on.
        """
        unknown = [s for s in failed_satellites if s not in self._spec_by_id]
        unknown += [s for s in failed_stations if s not in self._station_by_id]
        for node_a, node_b in failed_links:
            unknown += [n for n in (node_a, node_b)
                        if n not in self._spec_by_id]
        if unknown:
            raise ValueError(f"unknown elements in fault state: {unknown}")
        self._failed_satellites = frozenset(failed_satellites)
        self._failed_stations = frozenset(failed_stations)
        self._failed_links = frozenset(
            tuple(sorted(pair)) for pair in failed_links
        )

    def clear_fault_state(self) -> None:
        """Restore every element to service."""
        self._failed_satellites = frozenset()
        self._failed_stations = frozenset()
        self._failed_links = frozenset()

    @property
    def failed_satellites(self) -> frozenset:
        return self._failed_satellites

    @property
    def failed_stations(self) -> frozenset:
        return self._failed_stations

    @property
    def failed_links(self) -> frozenset:
        return self._failed_links

    @property
    def has_faults(self) -> bool:
        return bool(self._failed_satellites or self._failed_stations
                    or self._failed_links)

    def satellite_positions(self, time_s: float) -> Dict[str, np.ndarray]:
        """ECI position of every satellite at ``time_s``."""
        return {
            sat_id: prop.position_at(time_s)
            for sat_id, prop in self._propagators.items()
        }

    def _ground_edge(self, spec: SpacecraftSpec, sat_pos: np.ndarray,
                     station: GroundStation, station_pos: np.ndarray) -> Optional[dict]:
        """Edge attributes for a satellite-station link, or None if unusable."""
        elevation = elevation_angle(station_pos, sat_pos)
        if elevation < math.radians(max(
            self.ground_elevation_mask_deg, station.min_elevation_deg
        )):
            return None
        distance = slant_range(station_pos, sat_pos)
        capacity = 0.0
        if spec.ground_terminal is not None:
            station_terminal = RFTerminal(
                band_name=spec.ground_terminal.band_name,
                tx_power_w=50.0,
                dish_diameter_m=self.gateway_dish_m,
                noise_temp_k=180.0,
                mass_kg=400.0,
                unit_cost_usd=500_000.0,
            )
            budget = rf_link_budget(
                spec.ground_terminal, station_terminal, distance,
                elevation_rad=elevation,
                rain_rate_mm_h=station.rain_rate_mm_h,
            )
            capacity = achievable_rate_bps(budget.snr_db, budget.bandwidth_hz)
        if capacity <= 0.0:
            return None
        return {
            "delay_s": distance / SPEED_OF_LIGHT_KM_S,
            "capacity_bps": min(capacity, station.backhaul_capacity_bps),
            "owner": station.owner,
            "tariff_per_gb": station.visitor_tariff_per_gb(),
            "queue_delay_s": station.queue_delay_s(),
            "kind": "ground_link",
        }

    def snapshot(self, time_s: float,
                 users: Sequence[UserTerminal] = ()) -> NetworkSnapshot:
        """Build the whole-network graph at one instant.

        Satellites are joined by the ISL topology builder; each ground
        station connects to every satellite above its elevation mask whose
        ground link closes; each user connects to every satellite above
        the user's mask (capacity from the user terminal's budget).

        Elements named in the current fault state (see
        :meth:`set_fault_state`) are excluded: failed satellites never
        enter the ISL build, failed stations take no node, and failed
        links lose their edge even when geometry would close it.
        """
        positions = self.satellite_positions(time_s)
        isl_snap = self._builder.snapshot(
            time_s, positions, exclude=self._failed_satellites or None
        )
        graph = isl_snap.graph.copy()
        alive = [
            spec for spec in self.satellites
            if spec.satellite_id not in self._failed_satellites
        ]
        for spec in alive:
            graph.nodes[spec.satellite_id]["kind"] = "satellite"
            graph.nodes[spec.satellite_id]["owner"] = spec.owner
        for node_a, node_b in self._failed_links:
            if graph.has_edge(node_a, node_b):
                graph.remove_edge(node_a, node_b)

        for station in self.ground_stations:
            if station.station_id in self._failed_stations:
                continue
            station_pos = station.position_eci(time_s)
            graph.add_node(
                station.station_id, kind="ground_station", owner=station.owner
            )
            for spec in alive:
                attrs = self._ground_edge(
                    spec, positions[spec.satellite_id], station, station_pos
                )
                if attrs is not None:
                    graph.add_edge(spec.satellite_id, station.station_id, **attrs)

        for user in users:
            user_pos = user.position_eci(time_s)
            graph.add_node(user.user_id, kind="user", owner=user.home_provider)
            mask_rad = math.radians(user.min_elevation_deg)
            for spec in alive:
                sat_pos = positions[spec.satellite_id]
                if elevation_angle(user_pos, sat_pos) < mask_rad:
                    continue
                distance = slant_range(user_pos, sat_pos)
                capacity = 0.0
                if spec.ground_terminal is not None:
                    budget = rf_link_budget(
                        spec.ground_terminal, user.terminal, distance,
                        elevation_rad=elevation_angle(user_pos, sat_pos),
                    )
                    capacity = achievable_rate_bps(
                        budget.snr_db, budget.bandwidth_hz
                    )
                if capacity <= 0.0:
                    continue
                graph.add_edge(
                    user.user_id, spec.satellite_id,
                    delay_s=distance / SPEED_OF_LIGHT_KM_S,
                    capacity_bps=capacity,
                    owner=spec.owner,
                    kind="access_link",
                )

        return NetworkSnapshot(time_s=time_s, graph=graph, isl_snapshot=isl_snap)

    def user_to_internet_latency_s(self, user: UserTerminal, time_s: float,
                                   cost_model: Optional[EdgeCostModel] = None) -> Optional[float]:
        """One-way latency from a user to the nearest Internet gateway.

        This is the paper's Figure 2(b) measurement: "compute the shortest
        path between the satellite that picks up the user's signal, and the
        satellite that will relay that signal to the ground station, and
        use this path length to estimate latency."

        Returns None when the user has no path to any gateway.
        """
        snap = self.snapshot(time_s, users=[user])
        metrics = snap.nearest_ground_station_route(user.user_id, cost_model)
        if metrics is None:
            return None
        return metrics.total_delay_s
