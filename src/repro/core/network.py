"""The OpenSpaceNetwork facade.

Ties the federated fleet, the shared ground-station network, and user
terminals into one time-varying graph, and answers the end-to-end
questions the paper's evaluation asks: what is the latency from a user to
ground infrastructure, and what fraction of the Earth does the system
cover.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro import obs as _obs
from repro.core.federation import Federation
from repro.core.interop import SpacecraftSpec
from repro.ground.station import GroundStation
from repro.ground.user import UserTerminal
from repro.isl.topology import (
    IslTopologyBuilder,
    TopologyDelta,
    TopologySnapshot,
)
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.orbits.kepler import KeplerPropagator, batch_positions
from repro.orbits.visibility import elevation_angles
from repro.phy.modulation import achievable_rate_bps, achievable_rate_bps_array
from repro.phy.rf import RFTerminal, rf_link_budget, rf_link_budget_arrays
from repro.routing.csr import (
    BACKEND_CSR,
    HAVE_SCIPY,
    NO_PREDECESSOR,
    CsrAdjacency,
    block_diagonal_dijkstra,
    resolve_backend,
)
from repro.routing.metrics import (
    PROPAGATION_ONLY,
    EdgeCostModel,
    RouteMetrics,
    path_metrics,
    shortest_path,
)


@dataclass(frozen=True)
class SnapshotDelta:
    """What changed between one base snapshot and the previous one.

    Recorded by :class:`OpenSpaceNetwork` on every base-snapshot build
    (see :attr:`OpenSpaceNetwork.last_snapshot_delta`) so incremental
    consumers — route invalidation, churn accounting, the scale sweep —
    know exactly which edges moved without diffing graphs themselves.

    Attributes:
        time_s: The new snapshot's timestamp.
        base_time_s: The previous snapshot's timestamp (None on a full
            rebuild with no usable predecessor).
        isl: The ISL-layer edge delta, or None on a full rebuild.
        ground_appeared: Station links present now but not previously.
        ground_disappeared: Station links present previously, gone now.
        structure_unchanged: True when the combined edge set (ISLs and
            ground links) is identical to the previous snapshot's, which
            lets cached CSR adjacencies be reused structurally.
        full_rebuild: True when the snapshot was assembled from scratch
            (first build, fault-state change, or delta disabled).
    """

    time_s: float
    base_time_s: Optional[float]
    isl: Optional[TopologyDelta]
    ground_appeared: Tuple[Tuple[str, str], ...] = ()
    ground_disappeared: Tuple[Tuple[str, str], ...] = ()
    structure_unchanged: bool = False
    full_rebuild: bool = False

    @property
    def changed_edge_count(self) -> int:
        isl_changed = self.isl.changed_count if self.isl is not None else 0
        return (isl_changed + len(self.ground_appeared)
                + len(self.ground_disappeared))

    @property
    def disappeared_edges(self) -> Tuple[Tuple[str, str], ...]:
        """Every edge that vanished, ISL and ground alike — the set to
        feed :meth:`~repro.routing.proactive.ProactiveRouter.
        invalidate_routes_through_edges`."""
        isl_gone = self.isl.disappeared if self.isl is not None else ()
        return tuple(isl_gone) + tuple(self.ground_disappeared)


@dataclass
class NetworkSnapshot:
    """The whole-network graph at one instant.

    Nodes carry a ``kind`` attribute (``"satellite"``, ``"ground_station"``
    or ``"user"``) and an ``owner`` attribute; edges carry ``delay_s``,
    ``capacity_bps`` and (for ground edges) ``owner``, ``tariff_per_gb``,
    ``queue_delay_s``.

    Attributes:
        time_s: Snapshot timestamp.
        graph: The combined graph.
        isl_snapshot: The satellite-only topology this was built from.
    """

    time_s: float
    graph: nx.Graph
    isl_snapshot: TopologySnapshot
    #: Per-cost-model CSR adjacencies, built lazily and kept alongside the
    #: snapshot so every router sharing the snapshot shares the arrays.
    _csr_cache: Dict[EdgeCostModel, CsrAdjacency] = field(
        default_factory=dict, repr=False, compare=False,
    )
    #: A structurally identical predecessor snapshot (set by the delta
    #: build path when no edges appeared or disappeared); its cached
    #: adjacencies seed ours via ``structure_clone`` instead of a full
    #: CSR rebuild.
    _csr_source: Optional["NetworkSnapshot"] = field(
        default=None, repr=False, compare=False,
    )

    def csr_adjacency(self, cost_model: Optional[EdgeCostModel] = None,
                      ) -> CsrAdjacency:
        """The snapshot's CSR adjacency under a cost model (cached)."""
        model = cost_model or PROPAGATION_ONLY
        adjacency = self._csr_cache.get(model)
        if adjacency is None:
            source = self._csr_source
            if source is not None:
                template = source._csr_cache.get(model)
                if template is not None:
                    adjacency = template.structure_clone(self.graph)
            if adjacency is None:
                adjacency = CsrAdjacency.from_graph(self.graph, weight=model)
            self._csr_cache[model] = adjacency
        return adjacency

    def digest(self) -> str:
        """Canonical content hash of the snapshot graph.

        Nodes and edges are serialized in sorted order with sorted
        attribute keys, so the digest depends only on graph *content* —
        never on insertion order.  This is the equality witness the
        delta-vs-full-rebuild gates compare: a delta-built snapshot must
        hash identically to a from-scratch build at the same instant.
        """
        hasher = hashlib.sha256()
        hasher.update(repr(self.time_s).encode())
        for node, data in sorted(self.graph.nodes(data=True)):
            hasher.update(repr((node, sorted(data.items()))).encode())
        for node_a, node_b, data in sorted(
            (min(a, b), max(a, b), d)
            for a, b, d in self.graph.edges(data=True)
        ):
            hasher.update(
                repr((node_a, node_b, sorted(data.items()))).encode()
            )
        return hasher.hexdigest()

    def refresh_csr(self) -> None:
        """Recompute cached CSR weight arrays from the live edge dicts.

        Called after in-place edge-attribute updates (see
        :meth:`OpenSpaceNetwork.refresh_edge_weights`) so cached
        adjacencies track the graph without a structural rebuild.
        """
        for model, adjacency in self._csr_cache.items():
            adjacency.refresh_weights(model)

    def route(self, source: str, target: str,
              cost_model: Optional[EdgeCostModel] = None,
              backend: Optional[str] = None) -> Optional[RouteMetrics]:
        """Cheapest route between two nodes, or None when disconnected."""
        if resolve_backend(backend) == BACKEND_CSR:
            if source not in self.graph or target not in self.graph:
                return None
            adjacency = self.csr_adjacency(cost_model)
            path = adjacency.single_source(source).path(source, target)
        else:
            path = shortest_path(self.graph, source, target, cost_model,
                                 backend=backend)
        if path is None:
            return None
        return path_metrics(self.graph, path)

    def nodes_of_kind(self, kind: str) -> List[str]:
        return [
            node for node, data in self.graph.nodes(data=True)
            if data.get("kind") == kind
        ]

    def nearest_ground_station_route(
        self, source: str,
        cost_model: Optional[EdgeCostModel] = None,
        backend: Optional[str] = None,
    ) -> Optional[RouteMetrics]:
        """Best route from a node to any ground station.

        With the CSR backend this costs one single-source Dijkstra (the
        snapshot memoizes it per source) instead of one per station.
        """
        stations = self.nodes_of_kind("ground_station")
        best: Optional[RouteMetrics] = None
        if resolve_backend(backend) == BACKEND_CSR:
            if source not in self.graph:
                return None
            paths = self.csr_adjacency(cost_model).single_source(source)
            for station in stations:
                path = paths.path(source, station)
                if path is None:
                    continue
                metrics = path_metrics(self.graph, path)
                if best is None or metrics.total_delay_s < best.total_delay_s:
                    best = metrics
            return best
        for station in stations:
            metrics = self.route(source, station, cost_model, backend=backend)
            if metrics is None:
                continue
            if best is None or metrics.total_delay_s < best.total_delay_s:
                best = metrics
        return best


class OpenSpaceNetwork:
    """Builds :class:`NetworkSnapshot` objects for a federated deployment.

    Args:
        satellites: The federated fleet (from
            :meth:`Federation.all_satellites` or assembled directly).
        ground_stations: The shared gateway network.
        max_isl_range_km: ISL range limit passed to the topology builder.
        ground_elevation_mask_deg: Minimum elevation for ground links.
        gateway_dish_m: Station-side dish diameter used when deriving the
            station terminal matched to each satellite's ground band.
        snapshot_cache_size: Maximum cached :meth:`snapshot` results
            (LRU).  ``0`` disables caching entirely.
        snapshot_cache_quantum_s: Time-bucket width for cache keys.  The
            default ``0.0`` keys on the exact request time (a hit
            requires the same instant); a positive quantum trades
            sub-quantum staleness for hits across nearby times.
        snapshot_delta: Build each base snapshot as a delta on the
            previous one (graph copy + changed edges) instead of from
            scratch.  Content is byte-identical either way (see
            :meth:`NetworkSnapshot.digest`); ``False`` restores the
            always-full-rebuild path, the oracle the digest gates
            compare against.
        spatial_index: Forwarded to the ISL builder: ``True``/``False``
            force grid-pruned or all-pairs candidate discovery, ``None``
            switches on fleet size.
    """

    def __init__(self, satellites: Sequence[SpacecraftSpec],
                 ground_stations: Sequence[GroundStation] = (),
                 max_isl_range_km: float = 6000.0,
                 ground_elevation_mask_deg: float = 10.0,
                 gateway_dish_m: float = 3.5,
                 snapshot_cache_size: int = 64,
                 snapshot_cache_quantum_s: float = 0.0,
                 snapshot_delta: bool = True,
                 spatial_index: Optional[bool] = None):
        if not satellites:
            raise ValueError("need at least one satellite")
        if snapshot_cache_size < 0:
            raise ValueError(
                f"cache size must be >= 0, got {snapshot_cache_size}"
            )
        self.satellites = list(satellites)
        self.ground_stations = list(ground_stations)
        self.ground_elevation_mask_deg = ground_elevation_mask_deg
        self.gateway_dish_m = gateway_dish_m
        self._builder = IslTopologyBuilder(
            [spec.to_isl_node() for spec in self.satellites],
            max_range_km=max_isl_range_km,
            spatial_index=spatial_index,
        )
        self._propagators = {
            spec.satellite_id: KeplerPropagator(spec.elements)
            for spec in self.satellites
        }
        self._propagator_order = list(self._propagators.items())
        self._spec_by_id = {
            spec.satellite_id: spec for spec in self.satellites
        }
        self._station_by_id = {
            station.station_id: station for station in self.ground_stations
        }
        self._failed_satellites: frozenset = frozenset()
        self._failed_stations: frozenset = frozenset()
        self._failed_links: frozenset = frozenset()
        self.snapshot_cache_size = snapshot_cache_size
        self.snapshot_cache_quantum_s = snapshot_cache_quantum_s
        self._fault_epoch = 0
        self._snapshot_cache: "OrderedDict[tuple, NetworkSnapshot]" = (
            OrderedDict()
        )
        self.snapshot_delta_enabled = snapshot_delta
        #: The delta recorded by the most recent base-snapshot build.
        self.last_snapshot_delta: Optional[SnapshotDelta] = None
        #: Cumulative build accounting (deterministic per call sequence).
        self.delta_stats: Dict[str, int] = {
            "full_builds": 0,
            "delta_builds": 0,
            "edges_appeared": 0,
            "edges_disappeared": 0,
            "edges_persisted": 0,
            "structure_reuses": 0,
        }
        self._delta_prev: Optional[NetworkSnapshot] = None
        self._delta_prev_epoch: int = -1
        self._delta_prev_ground: FrozenSet[Tuple[str, str]] = frozenset()
        self._primed_positions: Dict[float, Dict[str, np.ndarray]] = {}

    @classmethod
    def from_federation(cls, federation: Federation,
                        **kwargs) -> "OpenSpaceNetwork":
        """Build from a federation's active (non-quarantined) members."""
        return cls(
            satellites=federation.all_satellites(),
            ground_stations=federation.all_ground_stations(),
            **kwargs,
        )

    # -- fault state ---------------------------------------------------
    # The repro.faults injector drives these; snapshot() consults them so
    # failed elements vanish from the graph exactly as if the network had
    # been built from the surviving fleet alone (degree slots included).

    def set_fault_state(self, failed_satellites: Sequence[str] = (),
                        failed_stations: Sequence[str] = (),
                        failed_links: Sequence[Tuple[str, str]] = ()) -> None:
        """Replace the set of currently failed elements.

        Args:
            failed_satellites: Satellite ids excluded from every snapshot.
            failed_stations: Ground-station ids excluded likewise.
            failed_links: Satellite-id pairs whose ISL (if built) is
                severed; order within a pair does not matter.

        Raises:
            ValueError: For ids this network has never heard of — the
                injector filters unknown targets, so an unknown id here
                is a caller bug worth failing loudly on.
        """
        unknown = [s for s in failed_satellites if s not in self._spec_by_id]
        unknown += [s for s in failed_stations if s not in self._station_by_id]
        for node_a, node_b in failed_links:
            unknown += [n for n in (node_a, node_b)
                        if n not in self._spec_by_id]
        if unknown:
            raise ValueError(f"unknown elements in fault state: {unknown}")
        self._failed_satellites = frozenset(failed_satellites)
        self._failed_stations = frozenset(failed_stations)
        self._failed_links = frozenset(
            tuple(sorted(pair)) for pair in failed_links
        )
        self.invalidate_snapshot_cache()

    def clear_fault_state(self) -> None:
        """Restore every element to service."""
        self._failed_satellites = frozenset()
        self._failed_stations = frozenset()
        self._failed_links = frozenset()
        self.invalidate_snapshot_cache()

    # -- snapshot cache ------------------------------------------------
    # Snapshots are pure functions of (time, fault state, user set), so
    # repeated queries inside flowsim/sessionsim/handover loops reuse the
    # built graph instead of re-running propagation, the greedy ISL
    # assignment, and every link budget.  The fault injector invalidates
    # implicitly: every set_fault_state()/clear_fault_state() bumps the
    # fault epoch that is part of every cache key.

    @property
    def fault_epoch(self) -> int:
        """Monotone counter bumped on every fault-state change."""
        return self._fault_epoch

    def invalidate_snapshot_cache(self) -> None:
        """Drop every cached snapshot and start a new fault epoch."""
        self._fault_epoch += 1
        self._snapshot_cache.clear()

    def _cache_key(self, time_s: float,
                   users: Sequence[UserTerminal]) -> Optional[tuple]:
        """Cache key for a snapshot request, or None when uncacheable."""
        if self.snapshot_cache_size <= 0:
            return None
        quantum = self.snapshot_cache_quantum_s
        time_key = (
            float(time_s) if quantum <= 0.0
            else int(round(time_s / quantum))
        )
        try:
            users_key = tuple(
                (user.user_id, user.location, user.min_elevation_deg)
                for user in users
            )
        except TypeError:  # unhashable location — skip caching, stay correct
            return None
        return (time_key, self._fault_epoch, users_key)

    def _cache_get(self, key: Optional[tuple]) -> Optional["NetworkSnapshot"]:
        if key is None:
            return None
        snap = self._snapshot_cache.get(key)
        recorder = _obs.active()
        if snap is not None:
            self._snapshot_cache.move_to_end(key)
            if recorder.enabled:
                recorder.count("network.snapshot_cache.hit")
        elif recorder.enabled:
            recorder.count("network.snapshot_cache.miss")
        return snap

    def _cache_put(self, key: Optional[tuple],
                   snap: "NetworkSnapshot") -> None:
        if key is None:
            return
        self._snapshot_cache[key] = snap
        while len(self._snapshot_cache) > self.snapshot_cache_size:
            self._snapshot_cache.popitem(last=False)

    @property
    def failed_satellites(self) -> frozenset:
        return self._failed_satellites

    @property
    def failed_stations(self) -> frozenset:
        return self._failed_stations

    @property
    def failed_links(self) -> frozenset:
        return self._failed_links

    @property
    def has_faults(self) -> bool:
        return bool(self._failed_satellites or self._failed_stations
                    or self._failed_links)

    def prime_positions(self, times_s: Sequence[float]) -> int:
        """Precompute satellite positions for a whole epoch grid.

        One batched ``(N, T)`` propagation replaces T per-epoch fleet
        solves; subsequent :meth:`snapshot` / :meth:`satellite_positions`
        calls at exactly these times reuse the cached columns.

        Primed grids are **bitwise identical** to per-epoch solves: the
        Kepler batch path solves each element to the same bits at every
        grid width, and the frame rotation multiplies through a
        materialized-contiguous matrix so numpy dispatches the same
        matmul kernel regardless of how many epochs ride along (see
        ``repro.orbits.kepler``; pinned by
        ``tests/core/test_network_cache.py``).  Priming is therefore
        purely an optimization — digest gates pass with one side primed
        and the other not.

        Returns:
            The number of epochs primed.
        """
        times = [float(t) for t in times_s]
        if not times:
            return 0
        propagators = [prop for _, prop in self._propagator_order]
        positions = batch_positions(propagators, times)
        for column, time_s in enumerate(times):
            self._primed_positions[time_s] = {
                sat_id: positions[index, column]
                for index, (sat_id, _) in enumerate(self._propagator_order)
            }
        return len(times)

    def clear_primed_positions(self) -> None:
        self._primed_positions.clear()

    def satellite_positions(self, time_s: float) -> Dict[str, np.ndarray]:
        """ECI position of every satellite at ``time_s``.

        One batched propagation for the whole fleet (see
        :func:`~repro.orbits.kepler.batch_positions`), unless the
        instant was primed via :meth:`prime_positions`.
        """
        primed = self._primed_positions.get(float(time_s))
        if primed is not None:
            return primed
        propagators = [prop for _, prop in self._propagator_order]
        positions = batch_positions(propagators, time_s)[:, 0, :]
        return {
            sat_id: positions[index]
            for index, (sat_id, _) in enumerate(self._propagator_order)
        }

    def satellite_positions_over(self, times_s) -> Dict[str, np.ndarray]:
        """ECI positions over a time grid; ``{sat_id: (T, 3) array}``."""
        propagators = [prop for _, prop in self._propagator_order]
        positions = batch_positions(propagators, times_s)
        return {
            sat_id: positions[index]
            for index, (sat_id, _) in enumerate(self._propagator_order)
        }

    def _ground_edge(self, spec: SpacecraftSpec, sat_pos: np.ndarray,
                     station: GroundStation, station_pos: np.ndarray,
                     elevation: float,
                     distance: float) -> Optional[dict]:
        """Edge attributes for a satellite-station link, or None if unusable."""
        capacity = 0.0
        if spec.ground_terminal is not None:
            station_terminal = RFTerminal(
                band_name=spec.ground_terminal.band_name,
                tx_power_w=50.0,
                dish_diameter_m=self.gateway_dish_m,
                noise_temp_k=180.0,
                mass_kg=400.0,
                unit_cost_usd=500_000.0,
            )
            budget = rf_link_budget(
                spec.ground_terminal, station_terminal, distance,
                elevation_rad=elevation,
                rain_rate_mm_h=station.rain_rate_mm_h,
            )
            capacity = achievable_rate_bps(budget.snr_db, budget.bandwidth_hz)
        if capacity <= 0.0:
            return None
        return {
            "delay_s": distance / SPEED_OF_LIGHT_KM_S,
            "capacity_bps": min(capacity, station.backhaul_capacity_bps),
            "owner": station.owner,
            "tariff_per_gb": station.visitor_tariff_per_gb(),
            "queue_delay_s": station.queue_delay_s(),
            "kind": "ground_link",
        }

    def snapshot(self, time_s: float,
                 users: Sequence[UserTerminal] = ()) -> NetworkSnapshot:
        """Build the whole-network graph at one instant.

        Satellites are joined by the ISL topology builder; each ground
        station connects to every satellite above its elevation mask whose
        ground link closes; each user connects to every satellite above
        the user's mask (capacity from the user terminal's budget).

        Elements named in the current fault state (see
        :meth:`set_fault_state`) are excluded: failed satellites never
        enter the ISL build, failed stations take no node, and failed
        links lose their edge even when geometry would close it.

        Results are cached per ``(time bucket, fault epoch, user set)``
        — repeated queries for the same instant return the **same**
        :class:`NetworkSnapshot` object, so treat snapshot graphs as
        read-only (every in-repo consumer does).  A user-specific
        snapshot whose no-user base graph is cached is built
        incrementally: the base is copied and only the access links are
        recomputed.
        """
        key = self._cache_key(time_s, users)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        base = self._base_snapshot(time_s)
        if not users:
            self._cache_put(key, base)
            return base
        graph = base.graph.copy()
        positions = base.isl_snapshot.positions
        alive = [
            spec for spec in self.satellites
            if spec.satellite_id not in self._failed_satellites
        ]
        for user in users:
            self._add_user_edges(graph, user, alive, positions, time_s)
        snap = NetworkSnapshot(time_s=time_s, graph=graph,
                               isl_snapshot=base.isl_snapshot)
        self._cache_put(key, snap)
        return snap

    def _base_snapshot(self, time_s: float) -> NetworkSnapshot:
        """The no-user snapshot (ISLs + ground stations), cached.

        Built as a delta on the previous base snapshot whenever one
        exists under the same fault epoch (and delta building is
        enabled); otherwise assembled from scratch.  Both paths produce
        content-identical snapshots — :meth:`NetworkSnapshot.digest` is
        the gate that keeps the delta path a proof, not a fork.
        """
        key = self._cache_key(time_s, ())
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        prev = self._delta_prev
        snap = None
        if (self.snapshot_delta_enabled and prev is not None
                and self._delta_prev_epoch == self._fault_epoch):
            snap = self._delta_base_snapshot(time_s, prev)
        if snap is None:
            snap = self._full_base_snapshot(time_s)
        # Only the immediate predecessor is kept as a CSR structure
        # template; breaking the older link bounds the chain at two
        # generations instead of retaining every epoch ever built.
        if prev is not None:
            prev._csr_source = None
        self._delta_prev = snap
        self._delta_prev_epoch = self._fault_epoch
        self._cache_put(key, snap)
        return snap

    def _alive_satellites(self) -> List[SpacecraftSpec]:
        return [
            spec for spec in self.satellites
            if spec.satellite_id not in self._failed_satellites
        ]

    def _attach_ground(self, graph: nx.Graph, time_s: float,
                       positions: Dict[str, np.ndarray],
                       alive: Sequence[SpacecraftSpec],
                       ) -> FrozenSet[Tuple[str, str]]:
        """Add station nodes + ground links; returns the link pairs."""
        alive_matrix = (
            np.stack([positions[spec.satellite_id] for spec in alive])
            if alive else np.empty((0, 3))
        )
        pairs = set()
        for station in self.ground_stations:
            if station.station_id in self._failed_stations:
                continue
            station_pos = station.position_eci(time_s)
            graph.add_node(
                station.station_id, kind="ground_station", owner=station.owner
            )
            if not alive:
                continue
            # One vectorized elevation pass per station; link budgets run
            # only for the satellites above the mask.
            elevations = elevation_angles(station_pos, alive_matrix)
            mask_rad = math.radians(max(
                self.ground_elevation_mask_deg, station.min_elevation_deg
            ))
            deltas = alive_matrix - station_pos
            distances = np.sqrt((deltas * deltas).sum(axis=-1))
            for index in np.nonzero(elevations >= mask_rad)[0]:
                spec = alive[int(index)]
                attrs = self._ground_edge(
                    spec, positions[spec.satellite_id], station, station_pos,
                    elevation=float(elevations[index]),
                    distance=float(distances[index]),
                )
                if attrs is not None:
                    graph.add_edge(spec.satellite_id, station.station_id,
                                   **attrs)
                    pairs.add((spec.satellite_id, station.station_id))
        return frozenset(pairs)

    def _full_base_snapshot(self, time_s: float) -> NetworkSnapshot:
        """Assemble the base snapshot from scratch."""
        prev = self._delta_prev
        positions = self.satellite_positions(time_s)
        isl_snap = self._builder.snapshot(
            time_s, positions, exclude=self._failed_satellites or None
        )
        graph = isl_snap.graph.copy()
        alive = self._alive_satellites()
        for spec in alive:
            graph.nodes[spec.satellite_id]["kind"] = "satellite"
            graph.nodes[spec.satellite_id]["owner"] = spec.owner
        for node_a, node_b in self._failed_links:
            if graph.has_edge(node_a, node_b):
                graph.remove_edge(node_a, node_b)
        ground_pairs = self._attach_ground(graph, time_s, positions, alive)

        snap = NetworkSnapshot(time_s=time_s, graph=graph,
                               isl_snapshot=isl_snap)
        self._delta_prev_ground = ground_pairs
        self.last_snapshot_delta = SnapshotDelta(
            time_s=time_s,
            base_time_s=prev.time_s if prev is not None else None,
            isl=None,
            full_rebuild=True,
        )
        self.delta_stats["full_builds"] += 1
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("network.snapshot.full_build")
        return snap

    def _delta_base_snapshot(self, time_s: float,
                             prev: NetworkSnapshot,
                             ) -> Optional[NetworkSnapshot]:
        """Assemble the base snapshot as a delta on ``prev``.

        Returns None when no comparable previous topology exists (the
        participating node set changed), sending the caller down the
        full path.  The previous snapshot is never mutated — it may
        still be served from the snapshot cache.
        """
        positions = self.satellite_positions(time_s)
        isl_snap, isl_delta = self._builder.snapshot_delta(
            time_s, positions, exclude=self._failed_satellites or None,
            previous=prev.isl_snapshot,
        )
        if isl_delta.full_rebuild:
            return None
        graph = prev.graph.copy()
        failed = self._failed_links
        new_edges = isl_snap.graph.edges
        for pair in isl_delta.disappeared:
            if graph.has_edge(*pair):
                graph.remove_edge(*pair)
        for pair in isl_delta.appeared:
            if pair in failed:
                continue
            graph.add_edge(pair[0], pair[1], **new_edges[pair])
        for pair in isl_delta.persisted:
            if pair in failed:
                continue
            # Weight-refresh in place: the link was re-budgeted at the
            # new distance, but the edge (and the copied attr dict)
            # persists.
            graph.edges[pair].update(new_edges[pair])
        # Ground geometry moves every epoch (stations rotate with the
        # Earth), so station links are recomputed outright.
        stale_ground = [
            (u, v) for u, v, data in graph.edges(data=True)
            if data.get("kind") == "ground_link"
        ]
        graph.remove_edges_from(stale_ground)
        alive = self._alive_satellites()
        ground_pairs = self._attach_ground(graph, time_s, positions, alive)

        prev_ground = self._delta_prev_ground
        ground_appeared = tuple(sorted(ground_pairs - prev_ground))
        ground_disappeared = tuple(sorted(prev_ground - ground_pairs))
        structure_unchanged = (
            not isl_delta.appeared and not isl_delta.disappeared
            and not ground_appeared and not ground_disappeared
        )
        snap = NetworkSnapshot(time_s=time_s, graph=graph,
                               isl_snapshot=isl_snap)
        if structure_unchanged:
            snap._csr_source = prev
            self.delta_stats["structure_reuses"] += 1
        self._delta_prev_ground = ground_pairs
        self.last_snapshot_delta = SnapshotDelta(
            time_s=time_s,
            base_time_s=prev.time_s,
            isl=isl_delta,
            ground_appeared=ground_appeared,
            ground_disappeared=ground_disappeared,
            structure_unchanged=structure_unchanged,
        )
        stats = self.delta_stats
        stats["delta_builds"] += 1
        stats["edges_appeared"] += len(isl_delta.appeared) + len(ground_appeared)
        stats["edges_disappeared"] += (
            len(isl_delta.disappeared) + len(ground_disappeared)
        )
        stats["edges_persisted"] += len(isl_delta.persisted)
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("network.snapshot.delta_build")
        return snap

    def _add_user_edges(self, graph: nx.Graph, user: UserTerminal,
                        alive: Sequence[SpacecraftSpec],
                        positions: Dict[str, np.ndarray],
                        time_s: float) -> None:
        """Attach one user node and its access links to ``graph``."""
        user_pos = user.position_eci(time_s)
        graph.add_node(user.user_id, kind="user", owner=user.home_provider)
        if not alive:
            return
        mask_rad = math.radians(user.min_elevation_deg)
        alive_matrix = np.stack(
            [positions[spec.satellite_id] for spec in alive]
        )
        elevations = elevation_angles(user_pos, alive_matrix)
        deltas = alive_matrix - user_pos
        distances = np.sqrt((deltas * deltas).sum(axis=-1))
        for index in np.nonzero(elevations >= mask_rad)[0]:
            spec = alive[int(index)]
            distance = float(distances[index])
            capacity = 0.0
            if spec.ground_terminal is not None:
                budget = rf_link_budget(
                    spec.ground_terminal, user.terminal, distance,
                    elevation_rad=float(elevations[index]),
                )
                capacity = achievable_rate_bps(
                    budget.snr_db, budget.bandwidth_hz
                )
            if capacity <= 0.0:
                continue
            graph.add_edge(
                user.user_id, spec.satellite_id,
                delay_s=distance / SPEED_OF_LIGHT_KM_S,
                capacity_bps=capacity,
                owner=spec.owner,
                kind="access_link",
            )

    def refresh_edge_weights(self, snap: NetworkSnapshot,
                             users: Sequence[UserTerminal] = ()) -> int:
        """Recompute ground/access edge weights of a snapshot in place.

        The incremental path for "only link budgets changed": when
        station operating state (rain rate, queue occupancy, tariffs)
        moves but geometry has not, the snapshot's topology is still
        valid — only the edge attributes need recomputing.  Satellite
        positions are reused from the snapshot; no propagation, ISL
        assignment, or graph reconstruction runs.

        Args:
            snap: A snapshot previously built by :meth:`snapshot`.
            users: User terminals whose access links should also be
                refreshed (matched by ``user_id``).

        Returns:
            The number of edges whose attributes were recomputed.
        """
        positions = snap.isl_snapshot.positions
        users_by_id = {user.user_id: user for user in users}
        refreshed = 0
        for node_a, node_b, data in snap.graph.edges(data=True):
            kind = data.get("kind")
            if kind == "ground_link":
                sat_id, station_id = (
                    (node_a, node_b) if node_a in positions else (node_b, node_a)
                )
                station = self._station_by_id.get(station_id)
                spec = self._spec_by_id.get(sat_id)
                if station is None or spec is None:
                    continue
                station_pos = station.position_eci(snap.time_s)
                sat_pos = positions[sat_id]
                elevation = float(elevation_angles(station_pos, sat_pos[None, :])[0])
                delta = sat_pos - station_pos
                attrs = self._ground_edge(
                    spec, sat_pos, station, station_pos,
                    elevation=elevation,
                    distance=float(np.sqrt((delta * delta).sum())),
                )
                if attrs is not None:
                    data.update(attrs)
                    refreshed += 1
            elif kind == "access_link" and users_by_id:
                user_id, sat_id = (
                    (node_a, node_b) if node_b in positions else (node_b, node_a)
                )
                user = users_by_id.get(user_id)
                spec = self._spec_by_id.get(sat_id)
                if user is None or spec is None or spec.ground_terminal is None:
                    continue
                user_pos = user.position_eci(snap.time_s)
                delta = positions[sat_id] - user_pos
                distance = float(np.sqrt((delta * delta).sum()))
                budget = rf_link_budget(
                    spec.ground_terminal, user.terminal, distance,
                    elevation_rad=float(
                        elevation_angles(user_pos, positions[sat_id][None, :])[0]
                    ),
                )
                capacity = achievable_rate_bps(budget.snr_db, budget.bandwidth_hz)
                if capacity > 0.0:
                    data["delay_s"] = distance / SPEED_OF_LIGHT_KM_S
                    data["capacity_bps"] = capacity
                    refreshed += 1
        if refreshed:
            # Cached CSR adjacencies hold the edge dicts by reference;
            # recompute their weight arrays in place (no rebuild).
            snap.refresh_csr()
        return refreshed

    def gateway_probe_paths(
        self, time_s: float, users: Sequence[UserTerminal],
        cost_model: Optional[EdgeCostModel] = None,
    ) -> Dict[str, Optional[List[str]]]:
        """Batched nearest-gateway probe for many users at one instant.

        The array fast path behind ``--engine batched``: instead of one
        user-specific snapshot (graph copy, per-edge Python link
        budgets, CSR rebuild, single-source Dijkstra) per user, the base
        snapshot's CSR adjacency is compiled once, each user's access
        links are evaluated as stacked edge arrays
        (:func:`~repro.phy.rf.rf_link_budget_arrays` +
        :func:`~repro.phy.modulation.achievable_rate_bps_array`),
        appended as a leaf via
        :meth:`~repro.routing.csr.CsrAdjacency.append_leaf_arrays`, and
        every user's search runs in one block-diagonal Dijkstra.

        The result is bitwise identical to the scalar probe
        (``snapshot(time_s, users=[user])`` +
        :meth:`NetworkSnapshot.nearest_ground_station_route`) — same
        float64 operations on the same values, same station iteration
        order, same strict ``<`` tie-breaking; the engine digest gates
        and ``tests/core/test_network_batched.py`` enforce it.  Without
        scipy the method falls back to the scalar loop.

        Args:
            time_s: Probe instant.
            users: User terminals to probe.
            cost_model: Edge cost model (default
                :data:`~repro.routing.metrics.PROPAGATION_ONLY`).

        Returns:
            ``{user_id: path}`` with the best gateway path as a node
            list (user first), or None when the user reaches no station.
        """
        users = list(users)
        if not users:
            return {}
        if not HAVE_SCIPY:
            results: Dict[str, Optional[List[str]]] = {}
            for user in users:
                snap = self.snapshot(time_s, users=[user])
                metrics = snap.nearest_ground_station_route(
                    user.user_id, cost_model
                )
                results[user.user_id] = (
                    None if metrics is None else list(metrics.path)
                )
            return results
        model = cost_model or PROPAGATION_ONLY
        base = self.snapshot(time_s)
        adjacency = base.csr_adjacency(model)
        stations = base.nodes_of_kind("ground_station")
        alive = self._alive_satellites()
        positions = base.isl_snapshot.positions
        alive_matrix = (
            np.stack([positions[spec.satellite_id] for spec in alive])
            if alive else np.empty((0, 3))
        )
        blocks = []
        access_attrs: List[Dict[str, dict]] = []
        for user in users:
            attrs_by_sat: Dict[str, dict] = {}
            neighbor_idx: List[int] = []
            weights: List[float] = []
            if alive:
                user_pos = user.position_eci(time_s)
                mask_rad = math.radians(user.min_elevation_deg)
                elevations = elevation_angles(user_pos, alive_matrix)
                deltas = alive_matrix - user_pos
                distances = np.sqrt((deltas * deltas).sum(axis=-1))
                # Group the visible satellites by ground terminal so each
                # distinct hardware profile gets one batched budget pass.
                groups: Dict[RFTerminal, List[int]] = {}
                for index in np.nonzero(elevations >= mask_rad)[0]:
                    spec = alive[int(index)]
                    if spec.ground_terminal is None:
                        continue
                    groups.setdefault(spec.ground_terminal, []).append(
                        int(index)
                    )
                for terminal, indices in groups.items():
                    rows = np.asarray(indices, dtype=np.int64)
                    budgets = rf_link_budget_arrays(
                        terminal, user.terminal, distances[rows],
                        elevations_rad=elevations[rows],
                    )
                    capacities = achievable_rate_bps_array(
                        budgets.snr_db, budgets.bandwidth_hz
                    )
                    for position, index in enumerate(indices):
                        capacity = float(capacities[position])
                        if capacity <= 0.0:
                            continue
                        spec = alive[index]
                        attrs = {
                            "delay_s": (
                                float(distances[index]) / SPEED_OF_LIGHT_KM_S
                            ),
                            "capacity_bps": capacity,
                            "owner": spec.owner,
                            "kind": "access_link",
                        }
                        attrs_by_sat[spec.satellite_id] = attrs
                        neighbor_idx.append(
                            adjacency.index[spec.satellite_id]
                        )
                        weights.append(model.edge_cost(attrs))
            access_attrs.append(attrs_by_sat)
            blocks.append(adjacency.append_leaf_arrays(
                np.asarray(neighbor_idx, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            ))
        leaf = adjacency.node_count
        dist, pred, offsets = block_diagonal_dijkstra(
            blocks, [leaf] * len(users)
        )
        graph = base.graph
        nodes = adjacency.nodes
        results = {}
        for row, user in enumerate(users):
            offset = int(offsets[row])
            row_dist = dist[row]
            row_pred = pred[row]
            source_global = offset + leaf
            best_delay: Optional[float] = None
            best_path: Optional[List[str]] = None
            for station in stations:
                column = offset + adjacency.index[station]
                if not np.isfinite(row_dist[column]):
                    continue
                reversed_idx = [column]
                cursor = column
                broken = False
                while cursor != source_global:
                    cursor = int(row_pred[cursor])
                    if cursor == NO_PREDECESSOR:
                        broken = True
                        break
                    reversed_idx.append(cursor)
                if broken:
                    continue
                path = [
                    user.user_id if local == leaf else nodes[local]
                    for local in (g - offset for g in reversed(reversed_idx))
                ]
                # Replicate path_metrics: propagation and queueing delays
                # accumulate separately in path order, then sum.  The
                # first hop's attributes come from the arrays above (the
                # values the scalar snapshot would have stored).
                propagation = 0.0
                queueing = 0.0
                hop_data = [access_attrs[row][path[1]]]
                hop_data.extend(
                    graph.get_edge_data(node_a, node_b)
                    for node_a, node_b in zip(path[1:-1], path[2:])
                )
                for data in hop_data:
                    propagation += float(data.get("delay_s", 0.0))
                    queueing += float(data.get("queue_delay_s", 0.0))
                total_delay = propagation + queueing
                if best_delay is None or total_delay < best_delay:
                    best_delay = total_delay
                    best_path = path
            results[user.user_id] = best_path
        return results

    def user_to_internet_latency_s(self, user: UserTerminal, time_s: float,
                                   cost_model: Optional[EdgeCostModel] = None) -> Optional[float]:
        """One-way latency from a user to the nearest Internet gateway.

        This is the paper's Figure 2(b) measurement: "compute the shortest
        path between the satellite that picks up the user's signal, and the
        satellite that will relay that signal to the ground station, and
        use this path length to estimate latency."

        Returns None when the user has no path to any gateway.
        """
        snap = self.snapshot(time_s, users=[user])
        metrics = snap.nearest_ground_station_route(user.user_id, cost_model)
        if metrics is None:
            return None
        return metrics.total_delay_s
