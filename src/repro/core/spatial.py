"""Spatial indexing over satellite positions.

All-pairs candidate discovery is the O(N^2) wall between the paper's
few-hundred-satellite Figure 2 and mega-constellation scale: at 10,000
satellites the pairwise distance and line-of-sight matrices alone are
hundreds of megabytes per epoch.  This module provides a latitude/
longitude grid index over ECEF/ECI positions whose neighborhood queries
return a **provable superset** of every pair within a range limit, so
the ISL builder can evaluate geometry for ~N*k candidate pairs instead
of N^2/2.

Superset guarantee
------------------

For two points at radii ``r1, r2 >= r_min`` separated by Earth-central
angle ``theta``, the chord satisfies::

    d^2 = (r1 - r2)^2 + 2 r1 r2 (1 - cos theta) >= (2 r_min sin(theta/2))^2

so any pair within range ``D`` has ``theta <= 2 asin(min(1, D / (2 r_min)))``.
The grid therefore only needs to scan cells within that central angle:

* latitude reach is ``theta`` directly (a great-circle arc is never
  shorter than its latitude span);
* longitude reach per latitude-band pair comes from the haversine
  identity ``sin^2(dlon/2) <= sin^2(theta/2) / (cos lat1 * cos lat2)``,
  bounded with each band's smallest cosine — bands touching a pole get
  an unbounded reach and scan every longitude column (the polar case);
* longitude columns wrap modulo the column count, so neighborhoods
  cross the antimeridian without special-casing.

Determinism
-----------

:meth:`SpatialGridIndex.candidate_pairs` returns pairs with ``i < j``
sorted lexicographically — exactly the order ``np.triu_indices`` walks
the full matrix — so downstream stable sorts break ties identically to
the all-pairs path and pruning changes nothing but wall clock.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

#: Band cosines at or below this are treated as polar (scan all columns).
_POLAR_COS_EPS = 1e-9


def max_central_angle_rad(max_range_km: float, min_radius_km: float) -> float:
    """Largest Earth-central angle a pair within range can subtend.

    Args:
        max_range_km: Chord-distance limit between the two points.
        min_radius_km: Lower bound on both points' geocentric radii.

    Returns:
        The central-angle bound in radians; ``math.pi`` when the range
        covers antipodal points (no pruning possible).
    """
    if min_radius_km <= 0.0:
        raise ValueError(f"min radius must be positive, got {min_radius_km}")
    sin_half = max_range_km / (2.0 * min_radius_km)
    if sin_half >= 1.0:
        return math.pi
    return 2.0 * math.asin(max(0.0, sin_half))


class SpatialGridIndex:
    """A latitude/longitude grid over one epoch's satellite positions.

    Args:
        positions_km: ``(N, 3)`` ECEF/ECI position vectors.  Every row
            must have positive norm (a spacecraft is never at the
            geocenter).
        cell_size_deg: Angular cell size; one value for latitude bands
            and longitude columns.  Smaller cells prune harder but cost
            more bucket scans per query.
    """

    def __init__(self, positions_km: np.ndarray, cell_size_deg: float = 8.0):
        if cell_size_deg <= 0.0 or cell_size_deg > 180.0:
            raise ValueError(
                f"cell size must be in (0, 180] degrees, got {cell_size_deg}"
            )
        pos = np.asarray(positions_km, dtype=float)
        if pos.size == 0:
            pos = pos.reshape(0, 3)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {pos.shape}")
        radius = np.sqrt((pos * pos).sum(axis=1))
        if np.any(radius <= 0.0):
            raise ValueError("positions must have positive norm")
        self.positions = pos
        self.cell_size_deg = float(cell_size_deg)
        self.count = pos.shape[0]
        self._radius_min = float(radius.min()) if self.count else 0.0

        self.n_lat_bands = int(math.ceil(180.0 / self.cell_size_deg))
        self.n_lon_cols = int(math.ceil(360.0 / self.cell_size_deg))

        lat_deg = np.degrees(np.arcsin(np.clip(pos[:, 2] / np.where(
            radius > 0.0, radius, 1.0), -1.0, 1.0)))
        lon_deg = np.degrees(np.arctan2(pos[:, 1], pos[:, 0]))
        # floor() assigns a point exactly on a cell boundary to the upper
        # cell; the pole itself (lat = +90) clips into the top band, and
        # lon = +/-180 wraps into column 0 — one column, no seam.
        self._band = np.clip(
            np.floor((lat_deg + 90.0) / self.cell_size_deg).astype(np.int64),
            0, self.n_lat_bands - 1,
        )
        self._col = (
            np.floor((lon_deg + 180.0) / self.cell_size_deg).astype(np.int64)
            % self.n_lon_cols
        )

        keys = self._band * self.n_lon_cols + self._col
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self._cells: Dict[int, np.ndarray] = {}
        if self.count:
            uniq, starts = np.unique(sorted_keys, return_index=True)
            bounds = np.append(starts, self.count)
            for k, key in enumerate(uniq):
                # Stable sort keeps each bucket in ascending point index.
                self._cells[int(key)] = order[bounds[k]:bounds[k + 1]]

        # Smallest |cos(latitude)| over each band, for longitude reach.
        edges = -90.0 + self.cell_size_deg * np.arange(self.n_lat_bands + 1)
        edges = np.clip(edges, -90.0, 90.0)
        edge_cos = np.cos(np.radians(edges))
        self._band_min_cos = np.minimum(edge_cos[:-1], edge_cos[1:])

    # -- structure ------------------------------------------------------

    def cell_of(self, index: int) -> Tuple[int, int]:
        """``(latitude band, longitude column)`` of one point."""
        return int(self._band[index]), int(self._col[index])

    @property
    def occupied_cell_count(self) -> int:
        return len(self._cells)

    def _reaches(self, theta_rad: float):
        """Band reach plus per-band-pair longitude reach parameters."""
        theta_deg = math.degrees(theta_rad)
        band_reach = int(theta_deg // self.cell_size_deg) + 1
        sin_half_sq = math.sin(theta_rad / 2.0) ** 2
        return band_reach, sin_half_sq

    def _col_reach(self, sin_half_sq: float, cos_a: float,
                   cos_b: float) -> int:
        """Longitude reach in columns for one band pair.

        Returns ``self.n_lon_cols`` (scan everything) when either band
        touches a pole or the haversine bound saturates.
        """
        denom = cos_a * cos_b
        if denom <= _POLAR_COS_EPS or sin_half_sq >= denom:
            return self.n_lon_cols
        dlon_deg = math.degrees(2.0 * math.asin(math.sqrt(sin_half_sq / denom)))
        return int(dlon_deg // self.cell_size_deg) + 1

    # -- queries --------------------------------------------------------

    def candidate_pairs(self, max_range_km: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Every index pair that could be within ``max_range_km``.

        Returns:
            ``(rows, cols)`` index arrays with ``rows[k] < cols[k]``,
            sorted lexicographically by ``(row, col)`` — the traversal
            order of ``np.triu_indices`` — and guaranteed to be a
            superset of the true within-range pairs.
        """
        empty = np.empty(0, dtype=np.int64)
        if self.count < 2:
            return empty, empty
        theta = max_central_angle_rad(max_range_km, self._radius_min)
        if theta >= math.pi:
            rows, cols = np.triu_indices(self.count, k=1)
            return rows.astype(np.int64), cols.astype(np.int64)
        band_reach, sin_half_sq = self._reaches(theta)

        lo_parts = []
        hi_parts = []
        for key_a in self._cells:
            band_a, col_a = divmod(key_a, self.n_lon_cols)
            members_a = self._cells[key_a]
            band_stop = min(band_a + band_reach, self.n_lat_bands - 1)
            for band_b in range(band_a, band_stop + 1):
                reach = self._col_reach(
                    sin_half_sq,
                    float(self._band_min_cos[band_a]),
                    float(self._band_min_cos[band_b]),
                )
                if 2 * reach + 1 >= self.n_lon_cols:
                    cols_b = range(self.n_lon_cols)
                else:
                    cols_b = (
                        (col_a + d) % self.n_lon_cols
                        for d in range(-reach, reach + 1)
                    )
                for col_b in cols_b:
                    key_b = band_b * self.n_lon_cols + col_b
                    if key_b < key_a:
                        # The symmetric scan from the other cell emits
                        # this pair of cells exactly once.
                        continue
                    members_b = self._cells.get(key_b)
                    if members_b is None:
                        continue
                    if key_b == key_a:
                        tri_r, tri_c = np.triu_indices(len(members_a), k=1)
                        lo_parts.append(members_a[tri_r])
                        hi_parts.append(members_a[tri_c])
                    else:
                        ii = np.repeat(members_a, len(members_b))
                        jj = np.tile(members_b, len(members_a))
                        lo_parts.append(np.minimum(ii, jj))
                        hi_parts.append(np.maximum(ii, jj))
        if not lo_parts:
            return empty, empty
        lo = np.concatenate(lo_parts)
        hi = np.concatenate(hi_parts)
        order = np.argsort(lo * np.int64(self.count) + hi, kind="stable")
        return lo[order], hi[order]

    def query_radius(self, position_km: np.ndarray,
                     max_range_km: float) -> np.ndarray:
        """Indices of every point that could be within range of a probe.

        A superset by the same central-angle bound, using the probe's own
        radius when it is below the fleet minimum.  Returns a sorted
        index array; empty when no occupied cell is reachable.
        """
        if self.count == 0:
            return np.empty(0, dtype=np.int64)
        probe = np.asarray(position_km, dtype=float).reshape(3)
        probe_radius = float(np.sqrt((probe * probe).sum()))
        if probe_radius <= 0.0:
            return np.arange(self.count, dtype=np.int64)
        theta = max_central_angle_rad(
            max_range_km, min(probe_radius, self._radius_min)
        )
        if theta >= math.pi:
            return np.arange(self.count, dtype=np.int64)
        band_reach, sin_half_sq = self._reaches(theta)
        lat_q = math.degrees(math.asin(max(-1.0, min(1.0, probe[2] / probe_radius))))
        lon_q = math.degrees(math.atan2(probe[1], probe[0]))
        band_q = min(
            self.n_lat_bands - 1,
            max(0, int((lat_q + 90.0) // self.cell_size_deg)),
        )
        col_q = int((lon_q + 180.0) // self.cell_size_deg) % self.n_lon_cols
        cos_q = math.cos(math.radians(lat_q))

        parts = []
        band_lo = max(0, band_q - band_reach)
        band_hi = min(self.n_lat_bands - 1, band_q + band_reach)
        for band in range(band_lo, band_hi + 1):
            reach = self._col_reach(
                sin_half_sq, cos_q, float(self._band_min_cos[band])
            )
            if 2 * reach + 1 >= self.n_lon_cols:
                cols = range(self.n_lon_cols)
            else:
                cols = (
                    (col_q + d) % self.n_lon_cols
                    for d in range(-reach, reach + 1)
                )
            for col in cols:
                members = self._cells.get(band * self.n_lon_cols + col)
                if members is not None:
                    parts.append(members)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))
