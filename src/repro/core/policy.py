"""Regional regulation and data-sovereignty policy (paper Discussion, Q3).

"Different countries and regions have varying policies on satellite
communications, such as different spectrum allocation policies, as well as
independent licensing requirements.  The ability to use satellites located
in some regions as relays for user traffic can also be impeded by diverse
user data privacy regulations ... there is the question of how to maintain
a user's data privacy requirements when their traffic is routed to a
groundstation outside their region."

This module models those constraints as data and compiles them into the
routing layer:

* a :class:`Region` is a latitude/longitude box with a spectrum policy
  (which ground bands are licensed) and a data-residency flag;
* a :class:`PolicyRegistry` classifies ground stations into regions and
  compiles a user's constraints into the edge filters the QoS router
  consumes (forbidden gateways, forbidden operators);
* :func:`apply_policy_to_graph` marks non-compliant ground links so
  policy-aware routing can avoid them while policy-blind routing is
  measured against it in the sensitivity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import networkx as nx

from repro.ground.station import GroundStation
from repro.orbits.coordinates import GeodeticPoint


@dataclass(frozen=True)
class Region:
    """One regulatory region.

    Attributes:
        name: Region label (e.g. ``"eu"``).
        min_lat_deg / max_lat_deg / min_lon_deg / max_lon_deg: Bounding
            box; longitude boxes may wrap the antimeridian (min > max).
        licensed_bands: Ground band names licensed for satellite broadband
            in this region ("the exact spectrum bands used for ground
            uplink and downlink ... may differ").
        data_residency: When True, traffic originating from users in this
            region must exit through a gateway in the same region.
    """

    name: str
    min_lat_deg: float
    max_lat_deg: float
    min_lon_deg: float
    max_lon_deg: float
    licensed_bands: FrozenSet[str] = frozenset({"ku_downlink", "ku_uplink"})
    data_residency: bool = False

    def __post_init__(self) -> None:
        if self.min_lat_deg > self.max_lat_deg:
            raise ValueError(
                f"region {self.name!r}: min_lat {self.min_lat_deg} exceeds "
                f"max_lat {self.max_lat_deg}"
            )

    def contains(self, point: GeodeticPoint) -> bool:
        """Whether a ground point falls inside the region's box."""
        if not self.min_lat_deg <= point.latitude_deg <= self.max_lat_deg:
            return False
        lon = point.longitude_deg
        if self.min_lon_deg <= self.max_lon_deg:
            return self.min_lon_deg <= lon <= self.max_lon_deg
        # Antimeridian wrap: e.g. min=150, max=-150.
        return lon >= self.min_lon_deg or lon <= self.max_lon_deg


#: A coarse default world partition (boxes, not borders — a regulatory
#: model, not a GIS).  Unlisted territory falls into "open-seas".
DEFAULT_REGIONS: List[Region] = [
    Region("north-america", 15.0, 75.0, -170.0, -50.0),
    Region("south-america", -56.0, 15.0, -85.0, -33.0),
    Region("europe", 35.0, 72.0, -12.0, 45.0,
           data_residency=True),
    Region("africa", -35.0, 35.0, -18.0, 52.0),
    Region("middle-east", 12.0, 42.0, 26.0, 63.0),
    Region("asia", -11.0, 75.0, 45.0, 150.0),
    Region("oceania", -50.0, -10.0, 110.0, 180.0),
    Region("polar", 66.0, 90.0, -180.0, 180.0),
]


class PolicyRegistry:
    """Maps ground assets to regions and compiles routing constraints.

    Args:
        regions: Regulatory regions; the first containing region wins for
            any given point (order encodes precedence, e.g. polar last).
    """

    def __init__(self, regions: Optional[Sequence[Region]] = None):
        self.regions = list(regions) if regions is not None else list(
            DEFAULT_REGIONS
        )
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")

    def region_of(self, point: GeodeticPoint) -> Optional[Region]:
        """The first region containing the point, or None (open seas)."""
        for region in self.regions:
            if region.contains(point):
                return region
        return None

    def region_by_name(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def station_regions(self, stations: Sequence[GroundStation]) -> Dict[str, Optional[str]]:
        """Station id -> region name (None for open seas)."""
        mapping = {}
        for station in stations:
            region = self.region_of(station.location)
            mapping[station.station_id] = region.name if region else None
        return mapping

    def compliant_gateways(self, user_location: GeodeticPoint,
                           stations: Sequence[GroundStation]) -> Set[str]:
        """Gateways a user's traffic may exit through.

        Applies data residency: when the user's region requires it, only
        same-region stations qualify; otherwise every station does.
        """
        user_region = self.region_of(user_location)
        if user_region is None or not user_region.data_residency:
            return {station.station_id for station in stations}
        mapping = self.station_regions(stations)
        return {
            station_id for station_id, region_name in mapping.items()
            if region_name == user_region.name
        }

    def band_licensed(self, band_name: str,
                      location: GeodeticPoint) -> bool:
        """Whether a ground band may be used at a location."""
        region = self.region_of(location)
        if region is None:
            return True  # international waters: unregulated here
        return band_name in region.licensed_bands


def apply_policy_to_graph(graph: nx.Graph, user_id: str,
                          allowed_gateways: Set[str]) -> nx.Graph:
    """A routing view excluding non-compliant gateways for one user.

    Gateways outside ``allowed_gateways`` are removed from the view, so
    any path the router finds is compliant by construction.  Satellites
    and other users are untouched (the paper's residency constraint binds
    at the ground exit, not at relays).
    """
    def node_ok(node):
        data = graph.nodes[node]
        if data.get("kind") != "ground_station":
            return True
        return node in allowed_gateways
    return nx.subgraph_view(graph, filter_node=node_ok)
