"""Standardized presence beacons.

"All OpenSpace satellites advertise their presence via standardized
periodic beacons that include orbital information.  The user can evaluate
received beacons to identify which satellite is in closest range, and
request to associate with it."  Beacons also announce ISL specifications so
peers can decide whether an optical upgrade is possible before pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs as _obs
from repro.core.interop import SpacecraftSpec
from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator
from repro.orbits.visibility import elevation_angle, slant_range


@dataclass(frozen=True)
class Beacon:
    """One broadcast beacon frame.

    Attributes:
        satellite_id: Sender.
        owner: Sender's operator.
        elements: Published orbital elements — receivers can propagate the
            sender's trajectory themselves (this enables both closest-range
            selection and predictive handover).
        supports_optical: Whether the sender carries laser terminals.
        isl_bands: RF ISL band names the sender supports.
        free_isl_slots: Spare concurrent-ISL capacity right now.
        timestamp_s: Transmission time.
    """

    satellite_id: str
    owner: str
    elements: OrbitalElements
    supports_optical: bool
    isl_bands: Tuple[str, ...]
    free_isl_slots: int
    timestamp_s: float

    @classmethod
    def from_spec(cls, spec: SpacecraftSpec, timestamp_s: float) -> "Beacon":
        """Build the beacon a spacecraft would broadcast right now."""
        bands = tuple(
            t.band_name for t in spec.rf_isl_terminals
        )
        free = max(
            0, spec.power.max_concurrent_isls - spec.power.active_isl_count
        )
        return cls(
            satellite_id=spec.satellite_id,
            owner=spec.owner,
            elements=spec.elements,
            supports_optical=spec.supports_optical,
            isl_bands=bands,
            free_isl_slots=free,
            timestamp_s=timestamp_s,
        )

    def position_at(self, time_s: float) -> np.ndarray:
        """Propagate the advertised elements to a position."""
        return KeplerPropagator(self.elements).position_at(time_s)


@dataclass
class BeaconEvaluator:
    """Receiver-side beacon processing.

    Collects beacons heard at a location and ranks candidate satellites by
    slant range (the paper's "closest range" rule), with elevation-mask and
    capacity filters.

    Attributes:
        min_elevation_deg: Mask below which a satellite is unusable.
        require_free_slot: Skip satellites with no spare ISL/association
            capacity.
    """

    min_elevation_deg: float = 25.0
    require_free_slot: bool = True
    heard: List[Beacon] = field(default_factory=list)

    def receive(self, beacon: Beacon) -> None:
        """Store a heard beacon (latest wins per satellite)."""
        self.heard = [
            b for b in self.heard if b.satellite_id != beacon.satellite_id
        ]
        self.heard.append(beacon)

    def rank(self, receiver_position_eci: np.ndarray,
             time_s: float) -> List[Tuple[float, Beacon]]:
        """Usable beacons sorted nearest-first.

        Args:
            receiver_position_eci: Receiver ECI position (km) at ``time_s``.
            time_s: Evaluation time (beacon elements are propagated to it).

        Returns:
            ``(slant_range_km, beacon)`` tuples, nearest first.
        """
        import math

        mask_rad = math.radians(self.min_elevation_deg)
        ranked = []
        for beacon in self.heard:
            if self.require_free_slot and beacon.free_isl_slots == 0:
                continue
            sat_pos = beacon.position_at(time_s)
            if elevation_angle(receiver_position_eci, sat_pos) < mask_rad:
                continue
            ranked.append((slant_range(receiver_position_eci, sat_pos), beacon))
        ranked.sort(key=lambda item: item[0])
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("beacon.rank_calls")
            recorder.count("beacon.evaluated", len(self.heard))
            recorder.count("beacon.usable", len(ranked))
        return ranked

    def best(self, receiver_position_eci: np.ndarray,
             time_s: float) -> Optional[Beacon]:
        """The closest usable satellite, or None."""
        ranked = self.rank(receiver_position_eci, time_s)
        return ranked[0][1] if ranked else None

    def best_candidates(self, receiver_position_eci: np.ndarray,
                        time_s: float, limit: int = 3) -> List[Beacon]:
        """The ``limit`` closest usable satellites, nearest first.

        Association under a lossy control plane tries these in order: when
        the nearest satellite's auth exchange keeps timing out (or its
        circuit breaker is open), the next candidate is a degraded but
        serviceable fallback.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        ranked = self.rank(receiver_position_eci, time_s)
        return [beacon for _range, beacon in ranked[:limit]]


def beacon_reception_delay_s(distance_km: float) -> float:
    """One-way beacon propagation delay."""
    if distance_km < 0.0:
        raise ValueError(f"distance must be >= 0, got {distance_km}")
    return distance_km / SPEED_OF_LIGHT_KM_S
