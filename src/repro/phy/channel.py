"""Channel models: path loss, atmospheric and rain attenuation, noise.

Formulas are the standard link-engineering forms (Friis free-space loss,
ITU-style flat approximations for gaseous and rain attenuation).  They are
intentionally simple — the purpose is to give the routing and economics
layers realistic *relative* capacities between heterogeneous RF and optical
links, not to certify a real link design.
"""

from __future__ import annotations

import math

import numpy as np

from repro.orbits.constants import BOLTZMANN_J_K, SPEED_OF_LIGHT_M_S


def free_space_path_loss_db(distance_km, frequency_hz: float):
    """Friis free-space path loss in dB.

    Polymorphic over the distance: a scalar yields a scalar loss, an
    ndarray of slant ranges yields an elementwise loss array.  Both run
    through the same numpy ufuncs, so the scalar and batched results
    are bitwise identical element for element (numpy ufuncs round
    independently of array shape).

    Args:
        distance_km: Link slant range(s) in kilometres (must be positive).
        frequency_hz: Carrier frequency in hertz.

    Returns:
        Path loss in dB (positive), scalar or array matching the input.
    """
    if np.any(np.asarray(distance_km) <= 0.0):
        raise ValueError(f"distance must be positive, got {distance_km}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    distance_m = distance_km * 1000.0
    return 20.0 * np.log10(
        4.0 * math.pi * distance_m * frequency_hz / SPEED_OF_LIGHT_M_S
    )


def atmospheric_loss_db(frequency_hz: float, elevation_rad,
                        zenith_loss_db: float = None):
    """Gaseous atmospheric attenuation for a ground-to-space path, dB.

    Uses a flat zenith attenuation scaled by the cosecant of the elevation
    angle (the standard slant-path approximation), with frequency-dependent
    zenith losses roughly matching ITU-R P.676 at sea level:
    ~0.03 dB below 2 GHz, ~0.1 dB at Ku, ~0.3 dB at Ka.

    Polymorphic over the elevation: scalar in, scalar out; ndarray in,
    elementwise array out (bitwise identical to the scalar path).

    Args:
        frequency_hz: Carrier frequency.
        elevation_rad: Ground-station elevation angle(s); clamped to
            >= 5 deg to keep the cosecant bounded.
        zenith_loss_db: Override the zenith attenuation.

    Returns:
        Attenuation in dB.
    """
    if zenith_loss_db is None:
        ghz = frequency_hz / 1e9
        if ghz < 2.0:
            zenith_loss_db = 0.03
        elif ghz < 18.0:
            zenith_loss_db = 0.10
        elif ghz < 40.0:
            zenith_loss_db = 0.30
        else:
            zenith_loss_db = 1.0
    min_elevation = math.radians(5.0)
    elevation = np.maximum(elevation_rad, min_elevation)
    return zenith_loss_db / np.sin(elevation)


def rain_attenuation_db(frequency_hz: float, elevation_rad,
                        rain_rate_mm_h: float = 0.0,
                        rain_height_km: float = 4.0):
    """Rain attenuation along a slant path, dB (simplified ITU-R P.838 form).

    Specific attenuation is ``gamma = k * R^alpha`` dB/km with
    frequency-dependent ``k`` and ``alpha`` fitted to the published tables,
    applied over the slant path through the rain layer.

    Polymorphic over the elevation: scalar in, scalar out; ndarray in,
    elementwise array out (the specific attenuation ``gamma`` depends
    only on the scalar frequency and rain rate, so it is computed once
    either way).

    Args:
        frequency_hz: Carrier frequency; attenuation is negligible below
            ~5 GHz and the function returns 0 there.
        elevation_rad: Elevation angle(s) (clamped to >= 5 degrees).
        rain_rate_mm_h: Point rain rate; 0 means clear sky.
        rain_height_km: Effective rain layer height.

    Returns:
        Attenuation in dB.
    """
    if rain_rate_mm_h < 0.0:
        raise ValueError(f"rain rate must be >= 0, got {rain_rate_mm_h}")
    is_array = isinstance(elevation_rad, np.ndarray)
    if rain_rate_mm_h == 0.0:
        return np.zeros_like(elevation_rad) if is_array else 0.0
    ghz = frequency_hz / 1e9
    if ghz < 5.0:
        return np.zeros_like(elevation_rad) if is_array else 0.0
    # Crude power-law fits to the ITU k/alpha tables (horizontal pol.).
    k = 4.21e-5 * ghz**2.42 if ghz < 54.0 else 4.09e-2 * ghz**0.699
    alpha = 1.41 * ghz**-0.0779 if ghz < 25.0 else 2.63 * ghz**-0.272
    gamma_db_km = k * rain_rate_mm_h**alpha
    elevation = np.maximum(elevation_rad, math.radians(5.0))
    slant_path_km = rain_height_km / np.sin(elevation)
    return gamma_db_km * slant_path_km


def noise_power_dbw(bandwidth_hz: float, system_noise_temp_k: float = 290.0) -> float:
    """Thermal noise power ``kTB`` in dBW.

    Args:
        bandwidth_hz: Receiver noise bandwidth.
        system_noise_temp_k: System noise temperature (LEO spacecraft
            receivers typically run 300-600 K; ground stations ~150-300 K).
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    if system_noise_temp_k <= 0.0:
        raise ValueError(f"noise temperature must be positive, got {system_noise_temp_k}")
    return 10.0 * math.log10(BOLTZMANN_J_K * system_noise_temp_k * bandwidth_hz)


def db_to_linear(value_db: float) -> float:
    """Convert a dB quantity to its linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a positive linear ratio to dB."""
    if value <= 0.0:
        raise ValueError(f"value must be positive to convert to dB, got {value}")
    return 10.0 * math.log10(value)
