"""Physical-layer substrate: channels, antennas, and link budgets.

OpenSpace mandates RF inter-satellite links as the minimum interoperable
capability (S-band / UHF, the bands "tried and tested in various missions")
with optional standardized laser links for high-throughput pairs, Ku-band
for ground links.  This subpackage models those links well enough that the
routing layer sees realistic heterogeneous capacities:

* free-space path loss, atmospheric/rain attenuation, thermal noise;
* parabolic/patch antenna gains and optical terminal geometry;
* pointing-acquisition-tracking (PAT) losses for the narrow laser beams;
* Shannon and MODCOD-table capacity estimates.
"""

from repro.phy.channel import (
    atmospheric_loss_db,
    free_space_path_loss_db,
    noise_power_dbw,
    rain_attenuation_db,
)
from repro.phy.antennas import (
    dish_gain_dbi,
    effective_aperture_m2,
    half_power_beamwidth_deg,
)
from repro.phy.bands import Band, BAND_CATALOG
from repro.phy.rf import RFTerminal, rf_link_budget, rf_link_budget_arrays
from repro.phy.optical import (
    OpticalTerminal,
    PATController,
    PATState,
    optical_link_budget,
    optical_link_budget_arrays,
    pointing_loss_db,
)
from repro.phy.linkbudget import (
    LinkBudget,
    LinkBudgetArrays,
    shannon_capacity_bps,
)
from repro.phy.doppler import (
    doppler_shift_hz,
    max_doppler_over_pass,
    range_rate_km_s,
    worst_case_doppler_ppm,
)
from repro.phy.interference import (
    angular_separation_rad,
    downlink_sinr_db,
    interference_pairs,
)
from repro.phy.modulation import (
    ModCod,
    MODCOD_TABLE,
    achievable_rate_bps,
    achievable_rate_bps_array,
    select_modcod,
)

__all__ = [
    "atmospheric_loss_db",
    "free_space_path_loss_db",
    "noise_power_dbw",
    "rain_attenuation_db",
    "dish_gain_dbi",
    "effective_aperture_m2",
    "half_power_beamwidth_deg",
    "Band",
    "BAND_CATALOG",
    "RFTerminal",
    "rf_link_budget",
    "rf_link_budget_arrays",
    "OpticalTerminal",
    "PATController",
    "PATState",
    "optical_link_budget",
    "optical_link_budget_arrays",
    "pointing_loss_db",
    "LinkBudget",
    "LinkBudgetArrays",
    "shannon_capacity_bps",
    "doppler_shift_hz",
    "max_doppler_over_pass",
    "range_rate_km_s",
    "worst_case_doppler_ppm",
    "angular_separation_rad",
    "downlink_sinr_db",
    "interference_pairs",
    "ModCod",
    "MODCOD_TABLE",
    "achievable_rate_bps",
    "achievable_rate_bps_array",
    "select_modcod",
]
