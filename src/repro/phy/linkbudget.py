"""Link-budget result type and capacity estimation."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkBudget:
    """The outcome of a point-to-point link-budget computation.

    Attributes:
        tx_power_dbw: Transmit power.
        tx_gain_dbi: Transmit antenna/terminal gain.
        rx_gain_dbi: Receive antenna/terminal gain.
        path_loss_db: Free-space path loss.
        extra_loss_db: Sum of atmospheric, rain, pointing, implementation
            losses.
        noise_power_dbw: Receiver noise floor.
        bandwidth_hz: Channel bandwidth used for capacity.
    """

    tx_power_dbw: float
    tx_gain_dbi: float
    rx_gain_dbi: float
    path_loss_db: float
    extra_loss_db: float
    noise_power_dbw: float
    bandwidth_hz: float

    @property
    def received_power_dbw(self) -> float:
        return (
            self.tx_power_dbw
            + self.tx_gain_dbi
            + self.rx_gain_dbi
            - self.path_loss_db
            - self.extra_loss_db
        )

    @property
    def snr_db(self) -> float:
        return self.received_power_dbw - self.noise_power_dbw

    @property
    def snr_linear(self) -> float:
        return 10.0 ** (self.snr_db / 10.0)

    @property
    def shannon_capacity_bps(self) -> float:
        """Shannon capacity ``B log2(1 + SNR)`` over the channel bandwidth."""
        return shannon_capacity_bps(self.bandwidth_hz, self.snr_db)

    def closes(self, required_snr_db: float = 0.0,
               margin_db: float = 3.0) -> bool:
        """True when the link closes with the given SNR requirement + margin."""
        return self.snr_db >= required_snr_db + margin_db


def shannon_capacity_bps(bandwidth_hz: float, snr_db: float) -> float:
    """Shannon channel capacity in bits per second.

    Args:
        bandwidth_hz: Channel bandwidth (must be positive).
        snr_db: Signal-to-noise ratio in dB; very low SNR yields ~0 capacity.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    snr = 10.0 ** (snr_db / 10.0)
    return bandwidth_hz * math.log2(1.0 + snr)
