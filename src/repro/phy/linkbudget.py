"""Link-budget result types and capacity estimation.

Two containers share one set of derived-quantity formulas:

* :class:`LinkBudget` — one point-to-point link (scalar fields);
* :class:`LinkBudgetArrays` — a whole batch of links sharing terminals
  (``path_loss_db``/``extra_loss_db`` are ndarrays over the edge axis).

Because every derived quantity is an elementwise numpy expression and
numpy ufuncs round independently of array shape, the array container is
bitwise identical, edge for edge, to evaluating :class:`LinkBudget` in a
Python loop — the property tests under ``tests/properties`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _LinkBudgetMath:
    """Derived link quantities shared by the scalar and array budgets."""

    @property
    def received_power_dbw(self):
        return (
            self.tx_power_dbw
            + self.tx_gain_dbi
            + self.rx_gain_dbi
            - self.path_loss_db
            - self.extra_loss_db
        )

    @property
    def snr_db(self):
        return self.received_power_dbw - self.noise_power_dbw

    @property
    def snr_linear(self):
        return _db_to_linear(self.snr_db)

    @property
    def shannon_capacity_bps(self):
        """Shannon capacity ``B log2(1 + SNR)`` over the channel bandwidth."""
        return shannon_capacity_bps(self.bandwidth_hz, self.snr_db)

    def closes(self, required_snr_db: float = 0.0,
               margin_db: float = 3.0):
        """True when the link closes with the given SNR requirement + margin.

        Elementwise (a boolean array) on :class:`LinkBudgetArrays`.
        """
        return self.snr_db >= required_snr_db + margin_db


@dataclass(frozen=True)
class LinkBudget(_LinkBudgetMath):
    """The outcome of a point-to-point link-budget computation.

    Attributes:
        tx_power_dbw: Transmit power.
        tx_gain_dbi: Transmit antenna/terminal gain.
        rx_gain_dbi: Receive antenna/terminal gain.
        path_loss_db: Free-space path loss.
        extra_loss_db: Sum of atmospheric, rain, pointing, implementation
            losses.
        noise_power_dbw: Receiver noise floor.
        bandwidth_hz: Channel bandwidth used for capacity.
    """

    tx_power_dbw: float
    tx_gain_dbi: float
    rx_gain_dbi: float
    path_loss_db: float
    extra_loss_db: float
    noise_power_dbw: float
    bandwidth_hz: float


@dataclass(frozen=True)
class LinkBudgetArrays(_LinkBudgetMath):
    """Link budgets for a batch of edges sharing one terminal pair.

    The terminal-side quantities (powers, gains, noise, bandwidth) are
    scalars; the geometry-side quantities (``path_loss_db``, and
    ``extra_loss_db`` when it includes elevation-dependent terms) are
    arrays over the edge axis.  All derived properties broadcast.
    """

    tx_power_dbw: float
    tx_gain_dbi: float
    rx_gain_dbi: float
    path_loss_db: np.ndarray
    extra_loss_db: np.ndarray
    noise_power_dbw: float
    bandwidth_hz: float

    def __len__(self) -> int:
        return int(np.broadcast(self.path_loss_db, self.extra_loss_db).size)

    def budget_at(self, index: int) -> LinkBudget:
        """The scalar :class:`LinkBudget` of one edge in the batch."""
        path_loss = np.broadcast_to(self.path_loss_db, (len(self),))
        extra = np.broadcast_to(self.extra_loss_db, (len(self),))
        return LinkBudget(
            tx_power_dbw=self.tx_power_dbw,
            tx_gain_dbi=self.tx_gain_dbi,
            rx_gain_dbi=self.rx_gain_dbi,
            path_loss_db=float(path_loss[index]),
            extra_loss_db=float(extra[index]),
            noise_power_dbw=self.noise_power_dbw,
            bandwidth_hz=self.bandwidth_hz,
        )


def _db_to_linear(value_db):
    """``10^(x/10)`` through the array power ufunc for any input shape.

    Numpy's scalar power kernel rounds the last ulp differently from its
    array kernel, so scalars are promoted to a one-element array first —
    array power is shape-independent, which keeps scalar and batched
    budgets bitwise identical.
    """
    if isinstance(value_db, np.ndarray):
        return 10.0 ** (value_db / 10.0)
    return float((10.0 ** (np.asarray([value_db], dtype=float) / 10.0))[0])


def shannon_capacity_bps(bandwidth_hz: float, snr_db):
    """Shannon channel capacity in bits per second.

    Polymorphic over the SNR: scalar in, scalar out; ndarray in,
    elementwise capacity array out (bitwise identical per element).

    Args:
        bandwidth_hz: Channel bandwidth (must be positive).
        snr_db: Signal-to-noise ratio(s) in dB; very low SNR yields ~0
            capacity.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    snr = _db_to_linear(snr_db)
    return bandwidth_hz * np.log2(1.0 + snr)
