"""MODCOD tables and adaptive coding/modulation selection.

A DVB-S2-style table maps required SNR to spectral efficiency.  The MAC and
routing layers use :func:`select_modcod` to turn a link budget into an
achievable data rate that is more conservative (and more realistic) than
raw Shannon capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class ModCod:
    """One modulation-and-coding operating point.

    Attributes:
        name: Label, e.g. ``"QPSK 3/4"``.
        required_snr_db: Minimum SNR at which the point achieves
            quasi-error-free operation.
        spectral_efficiency_bps_hz: Information bits per second per hertz.
    """

    name: str
    required_snr_db: float
    spectral_efficiency_bps_hz: float

    def rate_bps(self, bandwidth_hz: float) -> float:
        """Achievable information rate over the given bandwidth."""
        if bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
        return self.spectral_efficiency_bps_hz * bandwidth_hz


#: DVB-S2-inspired operating points, ascending in required SNR.
MODCOD_TABLE: List[ModCod] = [
    ModCod("BPSK 1/4", -2.35, 0.25),
    ModCod("BPSK 1/2", -1.00, 0.50),
    ModCod("QPSK 1/2", 1.00, 0.99),
    ModCod("QPSK 3/4", 4.03, 1.49),
    ModCod("QPSK 8/9", 6.20, 1.77),
    ModCod("8PSK 3/4", 7.91, 2.23),
    ModCod("8PSK 8/9", 10.69, 2.65),
    ModCod("16APSK 3/4", 10.21, 2.97),
    ModCod("16APSK 8/9", 12.89, 3.52),
    ModCod("32APSK 4/5", 13.64, 3.95),
    ModCod("32APSK 9/10", 16.05, 4.45),
]


def select_modcod(snr_db: float, margin_db: float = 1.0,
                  table: Optional[List[ModCod]] = None) -> Optional[ModCod]:
    """Pick the highest-rate MODCOD that closes at the given SNR.

    Args:
        snr_db: Link SNR.
        margin_db: Implementation margin subtracted from the available SNR.
        table: Operating points to choose from (defaults to
            :data:`MODCOD_TABLE`); need not be sorted.

    Returns:
        The best :class:`ModCod`, or None when even the most robust point
        does not close (the link is unusable).
    """
    candidates = table if table is not None else MODCOD_TABLE
    usable = [m for m in candidates if m.required_snr_db <= snr_db - margin_db]
    if not usable:
        return None
    return max(usable, key=lambda m: m.spectral_efficiency_bps_hz)


def achievable_rate_bps(snr_db: float, bandwidth_hz: float,
                        margin_db: float = 1.0) -> float:
    """Data rate through the MODCOD table; 0 when no point closes."""
    modcod = select_modcod(snr_db, margin_db)
    if modcod is None:
        return 0.0
    return modcod.rate_bps(bandwidth_hz)


# Thresholds ascending with the best (running-max) spectral efficiency at
# each threshold, so a single searchsorted answers "highest-rate MODCOD
# that closes" for a whole SNR array.
_SORTED_TABLE = sorted(MODCOD_TABLE, key=lambda m: m.required_snr_db)
_REQUIRED_SNR = np.array([m.required_snr_db for m in _SORTED_TABLE])
_BEST_EFFICIENCY = np.maximum.accumulate(
    np.array([m.spectral_efficiency_bps_hz for m in _SORTED_TABLE])
)


def achievable_rate_bps_array(snr_db: np.ndarray, bandwidth_hz: float,
                              margin_db: float = 1.0) -> np.ndarray:
    """Vectorized :func:`achievable_rate_bps` over an SNR array.

    The table lookup involves only comparisons and one multiply, so the
    result equals the scalar loop exactly (no transcendental rounding).
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    available = np.asarray(snr_db, dtype=float) - margin_db
    index = np.searchsorted(_REQUIRED_SNR, available, side="right")
    efficiency = np.where(
        index > 0, _BEST_EFFICIENCY[np.maximum(index - 1, 0)], 0.0
    )
    return efficiency * bandwidth_hz
