"""Antenna models for RF terminals.

Parabolic-dish gain/beamwidth formulas plus a small helper for effective
aperture.  Small OpenSpace spacecraft use patch or low-gain antennas
(modelled as a fixed gain); larger craft and ground stations use dishes.
"""

from __future__ import annotations

import math

from repro.orbits.constants import SPEED_OF_LIGHT_M_S


def dish_gain_dbi(diameter_m: float, frequency_hz: float,
                  efficiency: float = 0.6) -> float:
    """Boresight gain of a parabolic dish, dBi.

    ``G = eta * (pi * D / lambda)^2``.

    Args:
        diameter_m: Dish diameter in metres.
        frequency_hz: Operating frequency.
        efficiency: Aperture efficiency in (0, 1].
    """
    if diameter_m <= 0.0:
        raise ValueError(f"diameter must be positive, got {diameter_m}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    gain = efficiency * (math.pi * diameter_m / wavelength) ** 2
    return 10.0 * math.log10(gain)


def half_power_beamwidth_deg(diameter_m: float, frequency_hz: float) -> float:
    """Half-power (-3 dB) beamwidth of a dish, degrees (70 lambda/D rule)."""
    if diameter_m <= 0.0:
        raise ValueError(f"diameter must be positive, got {diameter_m}")
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    return 70.0 * wavelength / diameter_m


def effective_aperture_m2(gain_dbi: float, frequency_hz: float) -> float:
    """Effective aperture corresponding to a gain at a frequency, m^2."""
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    gain = 10.0 ** (gain_dbi / 10.0)
    return gain * wavelength**2 / (4.0 * math.pi)


def pointing_loss_db_rf(off_axis_deg: float, beamwidth_deg: float) -> float:
    """Gain loss for an RF beam pointed ``off_axis_deg`` off boresight, dB.

    Standard quadratic (Gaussian main-lobe) approximation:
    ``L = 12 * (theta / theta_3dB)^2``.
    """
    if beamwidth_deg <= 0.0:
        raise ValueError(f"beamwidth must be positive, got {beamwidth_deg}")
    return 12.0 * (off_axis_deg / beamwidth_deg) ** 2
