"""Doppler shift along satellite links.

LEO satellites move at ~7.5 km/s, producing carrier offsets of up to
~±25 ppm that every OpenSpace terminal must track; the interoperability
profile's "transceiver radios [able] to function over a wide range of
frequencies" implicitly includes this tracking range.  The functions here
compute instantaneous shift and the worst case over a pass, which the
terminal-requirements tests assert against the profile.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.orbits.constants import SPEED_OF_LIGHT_KM_S
from repro.orbits.kepler import KeplerPropagator


def range_rate_km_s(observer_pos_km: np.ndarray, observer_vel_km_s: np.ndarray,
                    target_pos_km: np.ndarray,
                    target_vel_km_s: np.ndarray) -> float:
    """Rate of change of the observer-target distance, km/s.

    Positive when the range is opening (receding target).
    """
    rel_pos = np.asarray(target_pos_km, float) - np.asarray(observer_pos_km,
                                                            float)
    rel_vel = np.asarray(target_vel_km_s, float) - np.asarray(
        observer_vel_km_s, float
    )
    distance = float(np.linalg.norm(rel_pos))
    if distance == 0.0:
        return 0.0
    return float(rel_pos @ rel_vel) / distance


def doppler_shift_hz(carrier_hz: float, range_rate: float) -> float:
    """Received-carrier offset for a given range rate.

    Args:
        carrier_hz: Transmitted carrier frequency.
        range_rate: Range rate in km/s (positive = receding = negative
            shift).

    Returns:
        Frequency offset in hertz (received minus transmitted).
    """
    if carrier_hz <= 0.0:
        raise ValueError(f"carrier must be positive, got {carrier_hz}")
    return -carrier_hz * range_rate / SPEED_OF_LIGHT_KM_S


def max_doppler_over_pass(carrier_hz: float, propagator: KeplerPropagator,
                          observer_ecef_to_eci, start_s: float, end_s: float,
                          step_s: float = 10.0) -> Tuple[float, float]:
    """Extreme Doppler offsets seen from a ground observer over a window.

    Args:
        carrier_hz: Carrier frequency.
        propagator: The satellite's propagator.
        observer_ecef_to_eci: Callable ``time_s -> (pos_eci, vel_eci)`` for
            the observer (ground stations rotate with the Earth).
        start_s: Window start.
        end_s: Window end.
        step_s: Sampling step.

    Returns:
        ``(min_shift_hz, max_shift_hz)``.
    """
    if end_s <= start_s:
        raise ValueError(f"end {end_s} must be after start {start_s}")
    shifts = []
    for time_s in np.arange(start_s, end_s + step_s, step_s):
        obs_pos, obs_vel = observer_ecef_to_eci(float(time_s))
        sat_pos, sat_vel = propagator.state_at(float(time_s))
        rate = range_rate_km_s(obs_pos, obs_vel, sat_pos, sat_vel)
        shifts.append(doppler_shift_hz(carrier_hz, rate))
    return float(min(shifts)), float(max(shifts))


def ground_observer(location) -> "callable":
    """Position/velocity provider for a rotating ground observer.

    Args:
        location: A :class:`~repro.orbits.coordinates.GeodeticPoint`.

    Returns:
        Callable ``time_s -> (pos_eci_km, vel_eci_km_s)``.
    """
    from repro.orbits.constants import EARTH_ROTATION_RAD_S
    from repro.orbits.coordinates import ecef_to_eci

    ecef = location.ecef()
    omega = np.array([0.0, 0.0, EARTH_ROTATION_RAD_S])

    def provider(time_s: float):
        pos = ecef_to_eci(ecef, time_s)
        vel = np.cross(omega, pos)
        return pos, vel

    return provider


def worst_case_doppler_ppm(altitude_km: float = 780.0) -> float:
    """Upper bound on |Doppler|/carrier for a circular LEO pass, in ppm.

    The bound is the orbital speed over c (the observer's rotation adds a
    small correction already inside the bound for retrograde passes).
    """
    from repro.orbits.constants import EARTH_MU_KM3_S2, EARTH_RADIUS_KM

    speed = math.sqrt(EARTH_MU_KM3_S2 / (EARTH_RADIUS_KM + altitude_km))
    return speed / SPEED_OF_LIGHT_KM_S * 1e6
