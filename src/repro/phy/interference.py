"""Co-channel interference between satellites sharing spectrum.

OpenSpace's premise is *shared* spectrum: many operators' satellites
transmit in the same bands.  Two satellites serving nearby ground areas on
the same channel interfere; a ground terminal discriminates between them
only by the angular separation its antenna sees (the standard
ITU-style geometry for NGSO sharing).  This module computes:

* the angular separation of two satellites as seen from a ground point;
* the interference power a victim terminal receives from an off-axis
  interferer (transmit power through the victim antenna's off-axis gain);
* SINR given a serving link and a set of co-channel interferers.

The coordination protocol that *avoids* these collisions lives in
:mod:`repro.core.spectrum`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.phy.antennas import pointing_loss_db_rf
from repro.phy.channel import free_space_path_loss_db, noise_power_dbw
from repro.phy.rf import RFTerminal


def angular_separation_rad(ground_km: np.ndarray, sat_a_km: np.ndarray,
                           sat_b_km: np.ndarray) -> float:
    """Angle between two satellites as seen from a ground point, radians."""
    ground = np.asarray(ground_km, float)
    to_a = np.asarray(sat_a_km, float) - ground
    to_b = np.asarray(sat_b_km, float) - ground
    norm_a = float(np.linalg.norm(to_a))
    norm_b = float(np.linalg.norm(to_b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    cosine = float(to_a @ to_b) / (norm_a * norm_b)
    return math.acos(max(-1.0, min(1.0, cosine)))


def received_power_dbw(tx: RFTerminal, rx: RFTerminal, distance_km: float,
                       off_axis_deg: float,
                       rx_beamwidth_deg: float) -> float:
    """Power a terminal receives from a (possibly off-axis) transmitter.

    The receive antenna is pointed at its serving satellite; an
    interferer ``off_axis_deg`` away is attenuated by the main-lobe
    roll-off (quadratic model, floored at a -10 dBi sidelobe level).

    Args:
        tx: Transmitting (serving or interfering) space terminal.
        rx: Victim ground terminal.
        distance_km: Transmitter-victim slant range.
        off_axis_deg: Angle between the victim's boresight and the
            transmitter.
        rx_beamwidth_deg: Victim antenna's half-power beamwidth.
    """
    path_loss = free_space_path_loss_db(
        distance_km, tx.band.centre_frequency_hz
    )
    rolloff = pointing_loss_db_rf(off_axis_deg, rx_beamwidth_deg)
    # Sidelobe floor: gain never drops below -10 dBi.
    effective_rx_gain = max(rx.gain_dbi - rolloff, -10.0)
    return (
        tx.tx_power_dbw + tx.gain_dbi + effective_rx_gain - path_loss
        - tx.implementation_loss_db - rx.implementation_loss_db
    )


def downlink_sinr_db(ground_km: np.ndarray, serving_pos_km: np.ndarray,
                     serving_tx: RFTerminal, user_rx: RFTerminal,
                     interferer_positions_km: Sequence[np.ndarray],
                     interferer_txs: Sequence[RFTerminal],
                     rx_beamwidth_deg: float = 6.0) -> float:
    """SINR at a user terminal with co-channel interferers.

    Args:
        ground_km: User position (same frame as the satellites).
        serving_pos_km: Serving satellite position.
        serving_tx: Serving satellite's downlink terminal.
        user_rx: The user's terminal.
        interferer_positions_km: Co-channel satellites' positions.
        interferer_txs: Their downlink terminals (same length).
        rx_beamwidth_deg: User antenna beamwidth (discrimination).

    Returns:
        SINR in dB.
    """
    if len(interferer_positions_km) != len(interferer_txs):
        raise ValueError(
            f"{len(interferer_positions_km)} interferer positions for "
            f"{len(interferer_txs)} terminals"
        )
    ground = np.asarray(ground_km, float)
    serving_distance = float(np.linalg.norm(
        np.asarray(serving_pos_km, float) - ground
    ))
    signal_dbw = received_power_dbw(
        serving_tx, user_rx, serving_distance, 0.0, rx_beamwidth_deg
    )
    noise_w = 10.0 ** (
        noise_power_dbw(user_rx.band.bandwidth_hz, user_rx.noise_temp_k)
        / 10.0
    )
    interference_w = 0.0
    for position, tx in zip(interferer_positions_km, interferer_txs):
        separation_deg = math.degrees(angular_separation_rad(
            ground, serving_pos_km, position
        ))
        distance = float(np.linalg.norm(np.asarray(position, float) - ground))
        power_dbw = received_power_dbw(
            tx, user_rx, distance, separation_deg, rx_beamwidth_deg
        )
        interference_w += 10.0 ** (power_dbw / 10.0)
    signal_w = 10.0 ** (signal_dbw / 10.0)
    return 10.0 * math.log10(signal_w / (noise_w + interference_w))


def interference_pairs(ground_points_km: Sequence[np.ndarray],
                       satellite_positions_km: Sequence[np.ndarray],
                       min_separation_deg: float = 10.0,
                       min_elevation_deg: float = 10.0) -> List[tuple]:
    """Satellite pairs that would interfere somewhere on the ground.

    Two co-channel satellites conflict when some ground point sees both
    above the elevation mask within ``min_separation_deg`` of each other —
    the victim antenna cannot discriminate them.  The result is the edge
    list of the interference graph the spectrum coordinator colors.

    Returns:
        Sorted list of ``(i, j)`` index pairs with ``i < j``.
    """
    from repro.orbits.visibility import elevation_angle

    mask_rad = math.radians(min_elevation_deg)
    conflict_rad = math.radians(min_separation_deg)
    pairs = set()
    for ground in ground_points_km:
        visible = [
            index for index, pos in enumerate(satellite_positions_km)
            if elevation_angle(ground, pos) >= mask_rad
        ]
        for a_idx in range(len(visible)):
            for b_idx in range(a_idx + 1, len(visible)):
                i, j = visible[a_idx], visible[b_idx]
                separation = angular_separation_rad(
                    ground,
                    satellite_positions_km[i],
                    satellite_positions_km[j],
                )
                if separation < conflict_rad:
                    pairs.add((min(i, j), max(i, j)))
    return sorted(pairs)
