"""Optical (laser) ISL terminals and pointing-acquisition-tracking (PAT).

The paper: laser ISLs offer "higher throughput than RF, with lower energy
cost", but terminals cost ~$500,000, occupy 0.0234 m^3 and weigh at least
15 kg — infeasible for small spacecraft.  The narrow transmission beam
"poses unique challenges in accurate data transfer"; pointing, acquisition,
and tracking methods from prior work are adapted here as a three-state
controller whose residual jitter drives a pointing loss in the link budget.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.phy.channel import free_space_path_loss_db, noise_power_dbw
from repro.phy.linkbudget import LinkBudget, LinkBudgetArrays

#: Paper-cited terminal economics (ConLCT80 datasheet via satsearch).
LASER_TERMINAL_COST_USD = 500_000.0
LASER_TERMINAL_MASS_KG = 15.0
LASER_TERMINAL_VOLUME_M3 = 0.0234


@dataclass(frozen=True)
class OpticalTerminal:
    """A laser communication terminal.

    Attributes:
        tx_power_w: Optical transmit power.
        aperture_m: Telescope aperture diameter.
        wavelength_nm: Operating wavelength (1550 nm standard).
        beam_divergence_urad: Full-angle beam divergence in microradians;
            narrow beams give huge gain but demand tight pointing.
        pointing_jitter_urad: Residual RMS pointing error while tracking.
        data_bandwidth_hz: Electrical bandwidth used for capacity.
        mass_kg: Terminal mass (paper: >= 15 kg).
        unit_cost_usd: Terminal cost (paper: ~$500k).
        volume_m3: Terminal volume (paper: 0.0234 m^3).
    """

    tx_power_w: float = 2.0
    aperture_m: float = 0.08
    wavelength_nm: float = 1550.0
    beam_divergence_urad: float = 15.0
    pointing_jitter_urad: float = 2.0
    data_bandwidth_hz: float = 10e9
    mass_kg: float = LASER_TERMINAL_MASS_KG
    unit_cost_usd: float = LASER_TERMINAL_COST_USD
    volume_m3: float = LASER_TERMINAL_VOLUME_M3

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0.0:
            raise ValueError(f"tx power must be positive, got {self.tx_power_w}")
        if self.beam_divergence_urad <= 0.0:
            raise ValueError(
                f"beam divergence must be positive, got {self.beam_divergence_urad}"
            )

    @property
    def frequency_hz(self) -> float:
        return 299792458.0 / (self.wavelength_nm * 1e-9)

    @property
    def tx_gain_dbi(self) -> float:
        """Transmit gain from the beam divergence: ``G = (4/theta)^2``."""
        theta_rad = self.beam_divergence_urad * 1e-6
        return 10.0 * math.log10((4.0 / theta_rad) ** 2)

    @property
    def rx_gain_dbi(self) -> float:
        """Receive gain of the telescope aperture: ``(pi D / lambda)^2``."""
        wavelength_m = self.wavelength_nm * 1e-9
        return 10.0 * math.log10((math.pi * self.aperture_m / wavelength_m) ** 2)

    @property
    def tx_power_dbw(self) -> float:
        return 10.0 * math.log10(self.tx_power_w)


def pointing_loss_db(jitter_urad: float, beam_divergence_urad: float) -> float:
    """Average pointing loss for a Gaussian beam under RMS jitter, dB.

    Uses the Gaussian-beam form ``L = 8 * (sigma / theta_div)^2 * 10/ln10``
    truncated at 30 dB (beyond that the link is effectively lost and the PAT
    controller drops back to acquisition).
    """
    if beam_divergence_urad <= 0.0:
        raise ValueError(
            f"beam divergence must be positive, got {beam_divergence_urad}"
        )
    if jitter_urad < 0.0:
        raise ValueError(f"jitter must be >= 0, got {jitter_urad}")
    ratio = jitter_urad / beam_divergence_urad
    loss = 8.0 * ratio * ratio * (10.0 / math.log(10.0))
    return min(loss, 30.0)


def optical_link_budget(tx: OpticalTerminal, rx: OpticalTerminal,
                        distance_km: float,
                        tracking: bool = True) -> LinkBudget:
    """Link budget for a laser ISL.

    Args:
        tx: Transmitting terminal.
        rx: Receiving terminal.
        distance_km: Slant range.
        tracking: When False, the link is still in acquisition and suffers
            the worst-case pointing loss (30 dB), so budgets computed before
            PAT lock reflect the unusable pre-lock state.
    """
    path_loss = free_space_path_loss_db(distance_km, tx.frequency_hz)
    jitter = tx.pointing_jitter_urad if tracking else tx.beam_divergence_urad * 2.0
    extra = pointing_loss_db(jitter, tx.beam_divergence_urad) + 3.0  # 3 dB impl.
    bandwidth = min(tx.data_bandwidth_hz, rx.data_bandwidth_hz)
    return LinkBudget(
        tx_power_dbw=tx.tx_power_dbw,
        tx_gain_dbi=tx.tx_gain_dbi,
        rx_gain_dbi=rx.rx_gain_dbi,
        path_loss_db=path_loss,
        extra_loss_db=extra,
        noise_power_dbw=noise_power_dbw(bandwidth, 1000.0),
        bandwidth_hz=bandwidth,
    )


def optical_link_budget_arrays(tx: OpticalTerminal, rx: OpticalTerminal,
                               distances_km: np.ndarray,
                               tracking: bool = True) -> LinkBudgetArrays:
    """Batched laser link budgets over an array of slant ranges.

    One vectorized pass over the edge axis; bitwise identical, edge for
    edge, to calling :func:`optical_link_budget` per distance (the
    per-edge terms run through the same shape-independent ufuncs).
    """
    distances = np.asarray(distances_km, dtype=float)
    path_loss = free_space_path_loss_db(distances, tx.frequency_hz)
    jitter = tx.pointing_jitter_urad if tracking else tx.beam_divergence_urad * 2.0
    extra = pointing_loss_db(jitter, tx.beam_divergence_urad) + 3.0  # 3 dB impl.
    bandwidth = min(tx.data_bandwidth_hz, rx.data_bandwidth_hz)
    return LinkBudgetArrays(
        tx_power_dbw=tx.tx_power_dbw,
        tx_gain_dbi=tx.tx_gain_dbi,
        rx_gain_dbi=rx.rx_gain_dbi,
        path_loss_db=path_loss,
        extra_loss_db=np.full_like(path_loss, extra),
        noise_power_dbw=noise_power_dbw(bandwidth, 1000.0),
        bandwidth_hz=bandwidth,
    )


class PATState(enum.Enum):
    """Pointing-acquisition-tracking controller states."""

    IDLE = "idle"
    POINTING = "pointing"
    ACQUIRING = "acquiring"
    TRACKING = "tracking"


@dataclass
class PATController:
    """A simple PAT state machine for establishing a laser ISL.

    Timing follows the beaconless-pointing literature the paper cites:
    open-loop pointing from orbital knowledge, a spiral-scan acquisition
    whose duration scales with the pointing uncertainty cone over the beam
    divergence, then closed-loop tracking.

    Attributes:
        terminal: The local optical terminal.
        open_loop_error_urad: Pointing uncertainty after open-loop slewing
            (star-tracker + ephemeris error budget).
        slew_rate_deg_s: Body/gimbal slew rate used for the pointing phase.
        acquisition_scan_rate_hz: Spiral scan cells examined per second.
    """

    terminal: OpticalTerminal
    open_loop_error_urad: float = 500.0
    slew_rate_deg_s: float = 1.0
    acquisition_scan_rate_hz: float = 200.0
    state: PATState = PATState.IDLE

    def pointing_time_s(self, slew_angle_deg: float) -> float:
        """Time to slew the terminal onto the open-loop pointing solution."""
        if slew_angle_deg < 0.0:
            raise ValueError(f"slew angle must be >= 0, got {slew_angle_deg}")
        return slew_angle_deg / self.slew_rate_deg_s

    def acquisition_time_s(self) -> float:
        """Expected spiral-scan time to find the peer's beacon.

        The uncertainty cone holds ``(uncertainty / divergence)^2`` beam
        cells; on average half are scanned before lock.
        """
        cells = (
            self.open_loop_error_urad / self.terminal.beam_divergence_urad
        ) ** 2
        return max(cells, 1.0) / (2.0 * self.acquisition_scan_rate_hz)

    def establish(self, slew_angle_deg: float) -> float:
        """Run the full PAT sequence; returns total time to tracking, s."""
        self.state = PATState.POINTING
        total = self.pointing_time_s(slew_angle_deg)
        self.state = PATState.ACQUIRING
        total += self.acquisition_time_s()
        self.state = PATState.TRACKING
        return total

    def drop(self) -> None:
        """Lose lock (peer out of range or occluded); back to idle."""
        self.state = PATState.IDLE

    @property
    def is_tracking(self) -> bool:
        return self.state is PATState.TRACKING
