"""Frequency band catalog for OpenSpace links.

The paper specifies S-band and UHF for RF ISLs ("tried and tested in
various missions"), Ku-band for ground links (licensed in the US for
satellite broadband), and 1550 nm laser terminals for optical ISLs.
Each entry carries the centre frequency, a representative usable bandwidth,
and whether the band suffers atmospheric attenuation (ISL bands do not; the
path never enters the atmosphere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Band:
    """One allocated frequency band.

    Attributes:
        name: Catalog key, e.g. ``"s_band"``.
        centre_frequency_hz: Carrier centre frequency.
        bandwidth_hz: Usable channel bandwidth for a single link.
        atmospheric: True when links in this band traverse the atmosphere
            (ground links); False for exo-atmospheric ISL bands.
        description: Human-readable note on the band's role in OpenSpace.
    """

    name: str
    centre_frequency_hz: float
    bandwidth_hz: float
    atmospheric: bool
    description: str = ""

    def __post_init__(self) -> None:
        if self.centre_frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive: {self.centre_frequency_hz}")
        if self.bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_hz}")

    @property
    def wavelength_m(self) -> float:
        return 299792458.0 / self.centre_frequency_hz


#: Bands the OpenSpace interoperability profile recognises.
BAND_CATALOG: Dict[str, Band] = {
    "uhf": Band(
        name="uhf",
        centre_frequency_hz=435e6,
        bandwidth_hz=1e6,
        atmospheric=False,
        description="UHF ISL band: minimum mandatory RF ISL capability",
    ),
    "s_band": Band(
        name="s_band",
        centre_frequency_hz=2.25e9,
        bandwidth_hz=10e6,
        atmospheric=False,
        description="S-band ISL: higher-bandwidth mandatory-compatible RF ISL",
    ),
    "ku_uplink": Band(
        name="ku_uplink",
        centre_frequency_hz=14.25e9,
        bandwidth_hz=250e6,
        atmospheric=True,
        description="Ku-band ground-to-satellite uplink",
    ),
    "ku_downlink": Band(
        name="ku_downlink",
        centre_frequency_hz=11.7e9,
        bandwidth_hz=250e6,
        atmospheric=True,
        description="Ku-band satellite-to-ground downlink (OFDM, Starlink-style)",
    ),
    "ka_gateway": Band(
        name="ka_gateway",
        centre_frequency_hz=28.5e9,
        bandwidth_hz=500e6,
        atmospheric=True,
        description="Ka-band gateway feeder link for high-capacity ground stations",
    ),
    "optical_1550nm": Band(
        name="optical_1550nm",
        centre_frequency_hz=193.4e12,
        bandwidth_hz=10e9,
        atmospheric=False,
        description="1550 nm laser ISL: optional high-throughput terminal",
    ),
}


def get_band(name: str) -> Band:
    """Look up a band by catalog key.

    Raises:
        KeyError: With the list of known bands when the name is unknown.
    """
    try:
        return BAND_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(BAND_CATALOG))
        raise KeyError(f"unknown band {name!r}; known bands: {known}") from None
