"""RF terminals and RF link budgets.

Every OpenSpace spacecraft "must permit RF-based communication links at a
minimum"; this module models those terminals across the ISL bands (UHF,
S-band) and the ground bands (Ku, Ka).  Terminals carry the hardware
parameters that the pairing protocol exchanges during association.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.antennas import dish_gain_dbi
from repro.phy.bands import Band, get_band
from repro.phy.channel import (
    atmospheric_loss_db,
    free_space_path_loss_db,
    noise_power_dbw,
    rain_attenuation_db,
)
from repro.phy.linkbudget import LinkBudget, LinkBudgetArrays


@dataclass(frozen=True)
class RFTerminal:
    """An RF transceiver on a spacecraft, user terminal, or ground station.

    Attributes:
        band_name: Key into the band catalog (e.g. ``"s_band"``).
        tx_power_w: Transmit power in watts.
        antenna_gain_dbi: Fixed antenna gain; if None, ``dish_diameter_m``
            must be given and a parabolic gain is derived.
        dish_diameter_m: Dish diameter when the terminal uses a dish.
        noise_temp_k: Receiver system noise temperature.
        implementation_loss_db: Lumped feed/cable/implementation losses.
        mass_kg: Terminal mass — feeds the capex model.
        unit_cost_usd: Terminal cost — feeds the capex model.  RF ISL
            terminals are cheap relative to the paper's $500k laser figure.
    """

    band_name: str
    tx_power_w: float = 5.0
    antenna_gain_dbi: Optional[float] = None
    dish_diameter_m: Optional[float] = None
    noise_temp_k: float = 500.0
    implementation_loss_db: float = 2.0
    mass_kg: float = 1.5
    unit_cost_usd: float = 25_000.0

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0.0:
            raise ValueError(f"tx power must be positive, got {self.tx_power_w}")
        if self.antenna_gain_dbi is None and self.dish_diameter_m is None:
            raise ValueError(
                "terminal needs either antenna_gain_dbi or dish_diameter_m"
            )
        get_band(self.band_name)  # validate eagerly

    @property
    def band(self) -> Band:
        return get_band(self.band_name)

    @property
    def gain_dbi(self) -> float:
        """Antenna gain: fixed value, or derived from the dish diameter."""
        if self.antenna_gain_dbi is not None:
            return self.antenna_gain_dbi
        return dish_gain_dbi(self.dish_diameter_m, self.band.centre_frequency_hz)

    @property
    def tx_power_dbw(self) -> float:
        return 10.0 * math.log10(self.tx_power_w)

    @property
    def eirp_dbw(self) -> float:
        """Effective isotropic radiated power."""
        return self.tx_power_dbw + self.gain_dbi


def rf_link_budget(tx: RFTerminal, rx: RFTerminal, distance_km: float,
                   elevation_rad: Optional[float] = None,
                   rain_rate_mm_h: float = 0.0) -> LinkBudget:
    """Compute the link budget for an RF link between two terminals.

    Args:
        tx: Transmitting terminal.
        rx: Receiving terminal; must be in the same band as ``tx``
            (the whole point of the OpenSpace interoperability profile).
        distance_km: Slant range.
        elevation_rad: For atmospheric (ground) bands, the ground-station
            elevation angle; ignored for ISL bands.
        rain_rate_mm_h: Rain rate for ground links; 0 means clear sky.

    Raises:
        ValueError: When the terminals are in different bands.
    """
    if tx.band_name != rx.band_name:
        raise ValueError(
            f"band mismatch: tx in {tx.band_name!r}, rx in {rx.band_name!r}; "
            "OpenSpace links require a common band"
        )
    band = tx.band
    path_loss = free_space_path_loss_db(distance_km, band.centre_frequency_hz)
    extra = tx.implementation_loss_db + rx.implementation_loss_db
    if band.atmospheric:
        elevation = elevation_rad if elevation_rad is not None else math.pi / 2.0
        extra += atmospheric_loss_db(band.centre_frequency_hz, elevation)
        extra += rain_attenuation_db(
            band.centre_frequency_hz, elevation, rain_rate_mm_h
        )
    bandwidth = min(band.bandwidth_hz, band.bandwidth_hz)
    return LinkBudget(
        tx_power_dbw=tx.tx_power_dbw,
        tx_gain_dbi=tx.gain_dbi,
        rx_gain_dbi=rx.gain_dbi,
        path_loss_db=path_loss,
        extra_loss_db=extra,
        noise_power_dbw=noise_power_dbw(bandwidth, rx.noise_temp_k),
        bandwidth_hz=bandwidth,
    )


def rf_link_budget_arrays(tx: RFTerminal, rx: RFTerminal,
                          distances_km: np.ndarray,
                          elevations_rad: Optional[np.ndarray] = None,
                          rain_rate_mm_h: float = 0.0) -> LinkBudgetArrays:
    """Batched RF link budgets over stacked edge geometry.

    The array counterpart of :func:`rf_link_budget`: one vectorized pass
    over the edge axis instead of a Python call per edge.  Every per-edge
    term runs through the same shape-independent numpy ufuncs the scalar
    path uses, so the result is bitwise identical, edge for edge, to a
    scalar loop (pinned by the property tests).

    Args:
        tx: Transmitting terminal (shared by every edge).
        rx: Receiving terminal (shared; must match ``tx``'s band).
        distances_km: Slant ranges, one per edge.
        elevations_rad: Ground-station elevation angles per edge, for
            atmospheric bands; ``None`` means zenith, as in the scalar
            path.
        rain_rate_mm_h: Rain rate shared by every edge (one station).

    Raises:
        ValueError: When the terminals are in different bands.
    """
    if tx.band_name != rx.band_name:
        raise ValueError(
            f"band mismatch: tx in {tx.band_name!r}, rx in {rx.band_name!r}; "
            "OpenSpace links require a common band"
        )
    band = tx.band
    distances = np.asarray(distances_km, dtype=float)
    path_loss = free_space_path_loss_db(distances, band.centre_frequency_hz)
    extra = np.full_like(
        path_loss, tx.implementation_loss_db + rx.implementation_loss_db
    )
    if band.atmospheric:
        if elevations_rad is None:
            elevations = np.full_like(distances, math.pi / 2.0)
        else:
            elevations = np.asarray(elevations_rad, dtype=float)
        extra = extra + atmospheric_loss_db(band.centre_frequency_hz, elevations)
        extra = extra + rain_attenuation_db(
            band.centre_frequency_hz, elevations, rain_rate_mm_h
        )
    bandwidth = min(band.bandwidth_hz, band.bandwidth_hz)
    return LinkBudgetArrays(
        tx_power_dbw=tx.tx_power_dbw,
        tx_gain_dbi=tx.gain_dbi,
        rx_gain_dbi=rx.gain_dbi,
        path_loss_db=path_loss,
        extra_loss_db=extra,
        noise_power_dbw=noise_power_dbw(bandwidth, rx.noise_temp_k),
        bandwidth_hz=bandwidth,
    )


def standard_uhf_isl_terminal() -> RFTerminal:
    """The minimum mandatory OpenSpace ISL terminal: UHF, low-gain antenna."""
    return RFTerminal(
        band_name="uhf",
        tx_power_w=5.0,
        antenna_gain_dbi=8.0,
        noise_temp_k=400.0,
        mass_kg=0.5,
        unit_cost_usd=8_000.0,
    )


def standard_sband_isl_terminal() -> RFTerminal:
    """S-band ISL terminal: the higher-bandwidth mandatory-compatible option."""
    return RFTerminal(
        band_name="s_band",
        tx_power_w=15.0,
        antenna_gain_dbi=18.0,
        noise_temp_k=450.0,
        mass_kg=1.2,
        unit_cost_usd=30_000.0,
    )


def standard_ku_user_terminal() -> RFTerminal:
    """A Ku-band user terminal (phased array modelled as a 0.5 m dish)."""
    return RFTerminal(
        band_name="ku_downlink",
        tx_power_w=3.0,
        dish_diameter_m=0.5,
        noise_temp_k=250.0,
        mass_kg=4.0,
        unit_cost_usd=2_000.0,
    )


def standard_ku_space_terminal() -> RFTerminal:
    """A satellite's Ku-band ground-facing terminal."""
    return RFTerminal(
        band_name="ku_downlink",
        tx_power_w=20.0,
        antenna_gain_dbi=32.0,
        noise_temp_k=550.0,
        mass_kg=6.0,
        unit_cost_usd=120_000.0,
    )


def standard_gateway_terminal() -> RFTerminal:
    """A ground-station gateway dish (Ka-band, 3.5 m)."""
    return RFTerminal(
        band_name="ka_gateway",
        tx_power_w=50.0,
        dish_diameter_m=3.5,
        noise_temp_k=180.0,
        mass_kg=400.0,
        unit_cost_usd=500_000.0,
    )
