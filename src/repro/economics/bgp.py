"""BGP-style autonomous-system economics (the traditional baseline).

"The BGP cost model is a hierarchical relationship between different ASs
which agree to route traffic through each other's infrastructure.  Much of
BGP involves providers (often larger ASes) charging customers (smaller
ASes) with fees for bi-directional traffic, based on mutually agreed upon
contracts."

The model implements Gao-Rexford relationships (customer/provider, peer,
sibling), valley-free path validity, and the resulting money flows —
the comparator the ledger-based OpenSpace model is evaluated against in
the economics ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


class RelationshipKind(enum.Enum):
    """Gao-Rexford business relationship between two ASes."""

    CUSTOMER_PROVIDER = "customer_provider"  # first pays second
    PEER = "peer"                            # settlement-free
    SIBLING = "sibling"                      # same organization


@dataclass(frozen=True)
class AsRelationship:
    """One contracted relationship.

    Attributes:
        a: First AS name (the customer in CUSTOMER_PROVIDER).
        b: Second AS name (the provider in CUSTOMER_PROVIDER).
        kind: Relationship kind.
        price_per_gb: $/GB the customer pays the provider (0 for peers
            and siblings).
    """

    a: str
    b: str
    kind: RelationshipKind
    price_per_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.price_per_gb < 0.0:
            raise ValueError(f"price must be >= 0, got {self.price_per_gb}")
        if self.kind is not RelationshipKind.CUSTOMER_PROVIDER and self.price_per_gb:
            raise ValueError(f"{self.kind.value} relationships are settlement-free")


class BgpEconomy:
    """A set of ASes, their relationships, and traffic settlement.

    The key limitation the paper identifies — "the notion of a 'customer'
    and a 'provider' in BGP is not translatable to a meshed system like
    OpenSpace since the infrastructure that belongs to the different
    entities are mobile" — shows up here as :meth:`is_valley_free`
    rejecting the provider-customer-provider weaves that satellite paths
    naturally produce.
    """

    def __init__(self):
        self._relationships: Dict[Tuple[str, str], AsRelationship] = {}
        self._ases: set = set()
        self.balances: Dict[str, float] = {}

    def add_relationship(self, relationship: AsRelationship) -> None:
        """Register a relationship (symmetric lookup)."""
        key = (relationship.a, relationship.b)
        if key in self._relationships or key[::-1] in self._relationships:
            raise ValueError(
                f"relationship between {relationship.a!r} and "
                f"{relationship.b!r} already exists"
            )
        self._relationships[key] = relationship
        self._ases.update(key)
        for as_name in key:
            self.balances.setdefault(as_name, 0.0)

    def relationship_between(self, a: str, b: str) -> Optional[AsRelationship]:
        return self._relationships.get((a, b)) or self._relationships.get((b, a))

    def _edge_type(self, from_as: str, to_as: str) -> Optional[str]:
        """Direction-sensitive edge type: 'up' (to provider), 'down', 'peer'."""
        rel = self.relationship_between(from_as, to_as)
        if rel is None:
            return None
        if rel.kind is RelationshipKind.PEER:
            return "peer"
        if rel.kind is RelationshipKind.SIBLING:
            return "sibling"
        # CUSTOMER_PROVIDER: a is the customer of b.
        return "up" if from_as == rel.a else "down"

    def is_valley_free(self, as_path: Sequence[str]) -> bool:
        """Gao-Rexford export validity of an AS path.

        A valid path is uphill (customer->provider) edges, then at most one
        peer edge, then downhill edges; siblings are transparent.  Paths
        with missing relationships are invalid.
        """
        if len(as_path) < 2:
            return True
        phase = "up"  # up -> peer -> down
        for from_as, to_as in zip(as_path[:-1], as_path[1:]):
            edge = self._edge_type(from_as, to_as)
            if edge is None:
                return False
            if edge == "sibling":
                continue
            if edge == "up":
                if phase != "up":
                    return False
            elif edge == "peer":
                if phase == "down":
                    return False
                phase = "down"
            else:  # down
                phase = "down"
        return True

    def settle_path(self, as_path: Sequence[str], gigabytes: float,
                    require_valley_free: bool = True) -> Dict[str, float]:
        """Settle traffic along an AS path; returns per-AS balance deltas.

        On every customer->provider or provider->customer edge the customer
        pays the contracted rate (BGP transit is billed regardless of
        direction); peer and sibling edges are free.

        Raises:
            ValueError: When the path is not valley-free (and checking is
                on) or uses an uncontracted adjacency.
        """
        if gigabytes < 0.0:
            raise ValueError(f"gigabytes must be >= 0, got {gigabytes}")
        if require_valley_free and not self.is_valley_free(as_path):
            raise ValueError(
                f"path {list(as_path)} is not valley-free under the "
                "contracted relationships"
            )
        deltas: Dict[str, float] = {}
        for from_as, to_as in zip(as_path[:-1], as_path[1:]):
            rel = self.relationship_between(from_as, to_as)
            if rel is None:
                raise ValueError(
                    f"no relationship contracted between {from_as!r} and {to_as!r}"
                )
            if rel.kind is RelationshipKind.CUSTOMER_PROVIDER:
                amount = rel.price_per_gb * gigabytes
                deltas[rel.a] = deltas.get(rel.a, 0.0) - amount
                deltas[rel.b] = deltas.get(rel.b, 0.0) + amount
        for as_name, delta in deltas.items():
            self.balances[as_name] = self.balances.get(as_name, 0.0) + delta
        return deltas

    def valley_free_fraction(self, as_paths: Sequence[Sequence[str]]) -> float:
        """Fraction of observed AS paths the BGP model can even express.

        The economics ablation runs real OpenSpace routing paths through
        this check to quantify how badly the hierarchical model fits a
        meshed satellite system.
        """
        if not as_paths:
            return 1.0
        valid = sum(1 for path in as_paths if self.is_valley_free(path))
        return valid / len(as_paths)
