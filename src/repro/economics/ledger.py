"""The cross-verifiable traffic ledger (the paper's proposed cost model).

"The volume of traffic along this path is tracked by all parties involved
to create an easily cross-verifiable account of the extent to which any
given ISP's traffic was carried by the rest of the network."

Every party on a path files its own :class:`TransitRecord` for each
transfer; the ledger cross-verifies that all observers of the same
transfer agree on the volume, flags mismatches (which feed the bad-actor
monitor), and aggregates carried-traffic matrices for settlement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TransitRecord:
    """One party's account of one transfer.

    Attributes:
        transfer_id: Identifier shared by all observers of the transfer.
        reporter: The ISP filing this record.
        source_isp: Whose customer originated the traffic.
        carrier_isp: Whose infrastructure carried this segment.
        gigabytes: Volume the reporter observed.
        time_s: When the transfer completed.
    """

    transfer_id: str
    reporter: str
    source_isp: str
    carrier_isp: str
    gigabytes: float
    time_s: float

    def __post_init__(self) -> None:
        if self.gigabytes < 0.0:
            raise ValueError(f"gigabytes must be >= 0, got {self.gigabytes}")


@dataclass(frozen=True)
class LedgerMismatch:
    """A disagreement between observers of the same transfer segment.

    Attributes:
        transfer_id: The disputed transfer.
        carrier_isp: The segment in dispute.
        reported: ``(reporter, gigabytes)`` for every filed record.
        spread_gb: Max minus min reported volume.
    """

    transfer_id: str
    carrier_isp: str
    reported: Tuple[Tuple[str, float], ...]
    spread_gb: float


class TrafficLedger:
    """Collects transit records and cross-verifies them.

    Args:
        tolerance_gb: Reported volumes within this of each other are
            considered agreeing (metering jitter allowance).
    """

    def __init__(self, tolerance_gb: float = 1e-6):
        if tolerance_gb < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance_gb}")
        self.tolerance_gb = tolerance_gb
        self._records: List[TransitRecord] = []
        # (transfer_id, carrier) -> records from each observer
        self._by_segment: Dict[Tuple[str, str], List[TransitRecord]] = {}

    def file(self, record: TransitRecord) -> None:
        """File one party's record of a transfer segment."""
        self._records.append(record)
        key = (record.transfer_id, record.carrier_isp)
        self._by_segment.setdefault(key, []).append(record)

    def file_path_transfer(self, transfer_id: str, source_isp: str,
                           carrier_path: Sequence[str], gigabytes: float,
                           time_s: float,
                           misreport: Optional[Dict[str, float]] = None) -> None:
        """File the full record set a clean path transfer produces.

        For each carrier on the path, both the source ISP and the carrier
        itself file records ("tracked by all parties involved").

        Args:
            transfer_id: Shared transfer identifier.
            source_isp: Originating ISP.
            carrier_path: ISPs whose infrastructure carried the traffic,
                in path order (may repeat; duplicates are collapsed).
            gigabytes: True transferred volume.
            time_s: Completion time.
            misreport: Optional carrier -> claimed_gigabytes overrides used
                by tests/benchmarks to inject fraudulent accounting.
        """
        seen = []
        for carrier in carrier_path:
            if carrier not in seen:
                seen.append(carrier)
        for carrier in seen:
            claimed = (misreport or {}).get(carrier, gigabytes)
            self.file(TransitRecord(
                transfer_id=transfer_id, reporter=source_isp,
                source_isp=source_isp, carrier_isp=carrier,
                gigabytes=gigabytes, time_s=time_s,
            ))
            self.file(TransitRecord(
                transfer_id=transfer_id, reporter=carrier,
                source_isp=source_isp, carrier_isp=carrier,
                gigabytes=claimed, time_s=time_s,
            ))

    def cross_verify(self) -> List[LedgerMismatch]:
        """All segments whose observers disagree beyond tolerance."""
        mismatches = []
        for (transfer_id, carrier), records in sorted(self._by_segment.items()):
            volumes = [r.gigabytes for r in records]
            spread = max(volumes) - min(volumes)
            if spread > self.tolerance_gb:
                mismatches.append(LedgerMismatch(
                    transfer_id=transfer_id,
                    carrier_isp=carrier,
                    reported=tuple((r.reporter, r.gigabytes) for r in records),
                    spread_gb=spread,
                ))
        return mismatches

    def agreed_volume(self, transfer_id: str, carrier_isp: str) -> Optional[float]:
        """The agreed volume for a segment (None when disputed or absent).

        The agreed figure is the minimum report — a carrier cannot charge
        for more than every observer concedes.
        """
        records = self._by_segment.get((transfer_id, carrier_isp))
        if not records:
            return None
        volumes = [r.gigabytes for r in records]
        if max(volumes) - min(volumes) > self.tolerance_gb:
            return None
        return min(volumes)

    def carried_matrix(self, exclude_disputed: bool = True) -> Dict[Tuple[str, str], float]:
        """``(source_isp, carrier_isp) -> total agreed GB carried``.

        This is the input to settlement and peering analysis: "the extent
        to which any given ISP's traffic was carried by the rest of the
        network".
        """
        matrix: Dict[Tuple[str, str], float] = {}
        for (transfer_id, carrier), records in self._by_segment.items():
            volumes = [r.gigabytes for r in records]
            disputed = max(volumes) - min(volumes) > self.tolerance_gb
            if disputed and exclude_disputed:
                continue
            source = records[0].source_isp
            if source == carrier:
                continue  # carrying your own traffic is not billable
            matrix[(source, carrier)] = (
                matrix.get((source, carrier), 0.0) + min(volumes)
            )
        return matrix

    @property
    def record_count(self) -> int:
        return len(self._records)
