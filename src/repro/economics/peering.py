"""Peering recommendation.

"If two providers realize they are routing similar amounts of traffic
through each other's systems, and that their routing paths are heavily
interdependent, they may decide to peer."

The advisor inspects the ledger's carried-traffic matrix and recommends
peering for pairs whose mutual volumes are both substantial and
symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.economics.ledger import TrafficLedger


@dataclass(frozen=True)
class PeeringRecommendation:
    """One recommended (or evaluated) peering.

    Attributes:
        isp_a: First provider.
        isp_b: Second provider.
        a_through_b_gb: A's traffic carried by B.
        b_through_a_gb: B's traffic carried by A.
        symmetry: ``min/max`` of the two volumes (1.0 = perfectly
            symmetric).
        recommended: Whether the advisor recommends peering.
        rationale: Human-readable explanation.
    """

    isp_a: str
    isp_b: str
    a_through_b_gb: float
    b_through_a_gb: float
    symmetry: float
    recommended: bool
    rationale: str

    @property
    def mutual_volume_gb(self) -> float:
        return self.a_through_b_gb + self.b_through_a_gb


class PeeringAdvisor:
    """Recommends peering from cross-verified traffic volumes.

    Args:
        min_mutual_gb: Minimum combined bidirectional volume before
            peering is worth the contractual overhead.
        min_symmetry: Minimum min/max volume ratio; asymmetric pairs keep
            the customer/carrier relationship instead.
    """

    def __init__(self, min_mutual_gb: float = 100.0,
                 min_symmetry: float = 0.5):
        if min_mutual_gb < 0.0:
            raise ValueError(f"min mutual volume must be >= 0, got {min_mutual_gb}")
        if not 0.0 <= min_symmetry <= 1.0:
            raise ValueError(f"min symmetry must be in [0, 1], got {min_symmetry}")
        self.min_mutual_gb = min_mutual_gb
        self.min_symmetry = min_symmetry

    def evaluate_pair(self, isp_a: str, isp_b: str,
                      matrix: Dict[Tuple[str, str], float]) -> PeeringRecommendation:
        """Evaluate one pair against the carried-traffic matrix."""
        a_via_b = matrix.get((isp_a, isp_b), 0.0)
        b_via_a = matrix.get((isp_b, isp_a), 0.0)
        high = max(a_via_b, b_via_a)
        symmetry = (min(a_via_b, b_via_a) / high) if high > 0.0 else 0.0
        mutual = a_via_b + b_via_a
        if mutual < self.min_mutual_gb:
            return PeeringRecommendation(
                isp_a, isp_b, a_via_b, b_via_a, symmetry, False,
                f"mutual volume {mutual:.1f} GB below threshold "
                f"{self.min_mutual_gb:.1f} GB",
            )
        if symmetry < self.min_symmetry:
            return PeeringRecommendation(
                isp_a, isp_b, a_via_b, b_via_a, symmetry, False,
                f"volumes too asymmetric (symmetry {symmetry:.2f} < "
                f"{self.min_symmetry:.2f}); transit relationship fits better",
            )
        return PeeringRecommendation(
            isp_a, isp_b, a_via_b, b_via_a, symmetry, True,
            f"symmetric interdependence: {a_via_b:.1f} GB vs "
            f"{b_via_a:.1f} GB (symmetry {symmetry:.2f})",
        )

    def recommendations(self, ledger: TrafficLedger) -> List[PeeringRecommendation]:
        """Evaluate every provider pair appearing in the ledger.

        Returns:
            Recommendations for all pairs with any mutual traffic,
            recommended ones first, then by mutual volume descending.
        """
        matrix = ledger.carried_matrix()
        providers = sorted(
            {src for src, _ in matrix} | {car for _, car in matrix}
        )
        results = []
        for i, isp_a in enumerate(providers):
            for isp_b in providers[i + 1:]:
                if (isp_a, isp_b) in matrix or (isp_b, isp_a) in matrix:
                    results.append(self.evaluate_pair(isp_a, isp_b, matrix))
        results.sort(key=lambda r: (not r.recommended, -r.mutual_volume_gb))
        return results
