"""Cost models (paper Section 3).

* :mod:`repro.economics.bgp` — the traditional baseline: BGP-style
  hierarchical provider/customer/peer relationships between autonomous
  systems (the model the paper argues does not map cleanly to OpenSpace).
* :mod:`repro.economics.ledger` — the proposed model: per-path traffic
  accounting "tracked by all parties involved to create an easily
  cross-verifiable account of the extent to which any given ISP's traffic
  was carried by the rest of the network."
* :mod:`repro.economics.settlement` — rate cards and per-path settlement.
* :mod:`repro.economics.peering` — peering recommendation when two
  providers route similar volumes through each other.
* :mod:`repro.economics.capex` — satellite build/launch/licensing costs,
  including the paper's cited figures (FCC small-sat fee, $500k laser
  terminals).
"""

from repro.economics.bgp import (
    AsRelationship,
    BgpEconomy,
    RelationshipKind,
)
from repro.economics.ledger import TrafficLedger, TransitRecord, LedgerMismatch
from repro.economics.settlement import RateCard, SettlementEngine, Invoice
from repro.economics.peering import PeeringAdvisor, PeeringRecommendation
from repro.economics.capex import (
    SatelliteCostModel,
    ConstellationBudget,
    FCC_SMALLSAT_FEE_USD,
)
from repro.economics.incentives import (
    IncentiveReport,
    coverage_utility,
    revenue_sharing,
    shapley_values,
    viable_service_utility,
)

__all__ = [
    "AsRelationship",
    "BgpEconomy",
    "RelationshipKind",
    "TrafficLedger",
    "TransitRecord",
    "LedgerMismatch",
    "RateCard",
    "SettlementEngine",
    "Invoice",
    "PeeringAdvisor",
    "PeeringRecommendation",
    "SatelliteCostModel",
    "ConstellationBudget",
    "FCC_SMALLSAT_FEE_USD",
    "IncentiveReport",
    "coverage_utility",
    "revenue_sharing",
    "shapley_values",
    "viable_service_utility",
]
