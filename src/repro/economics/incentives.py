"""Collaboration incentives (paper Discussion, Q4).

"Relatively larger providers may find that collaborating with smaller
providers is not a net benefit for them, and it is worth expanding the
cost model presented in Section 3 to include an incentive for this
collaboration."

This module expands the cost model with contribution-weighted revenue
sharing: a pool of subscription revenue is split among operators by their
*marginal* contribution to system utility (coverage or served traffic),
computed as an exact Shapley value over operator coalitions.  Because
Shapley payments reward enabling others' traffic, a large operator earns
more inside the federation than alone whenever collaboration grows the
total pie — making the incentive explicit and auditable.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Sequence, Tuple


@dataclass(frozen=True)
class IncentiveReport:
    """Outcome of one revenue-sharing computation.

    Attributes:
        utilities: Coalition -> utility (the characteristic function, as
            evaluated; useful for auditing).
        shapley: Operator -> Shapley share of the grand-coalition utility.
        payments: Operator -> revenue payment (share x revenue pool).
        standalone: Operator -> utility the operator achieves alone.
        collaboration_surplus: Operator -> payment minus the revenue the
            operator would collect alone under the same per-utility rate.
    """

    utilities: Dict[FrozenSet[str], float]
    shapley: Dict[str, float]
    payments: Dict[str, float]
    standalone: Dict[str, float]
    collaboration_surplus: Dict[str, float]

    @property
    def all_gain(self) -> bool:
        """True when every operator is better off inside the federation."""
        return all(v >= -1e-9 for v in self.collaboration_surplus.values())


def shapley_values(operators: Sequence[str],
                   utility: Callable[[FrozenSet[str]], float]) -> Tuple[
                       Dict[str, float], Dict[FrozenSet[str], float]]:
    """Exact Shapley values for a coalition utility function.

    Exponential in the operator count — fine for the handfuls of
    operators the paper contemplates; raises beyond 12 to avoid surprise
    blowups.

    Args:
        operators: The players.
        utility: Characteristic function over frozensets of operators;
            must satisfy ``utility(frozenset()) == 0`` (checked).

    Returns:
        ``(values, cached_utilities)``.
    """
    players = list(operators)
    if len(players) > 12:
        raise ValueError(
            f"exact Shapley over {len(players)} operators is intractable; "
            "sample or aggregate first"
        )
    if len(set(players)) != len(players):
        raise ValueError(f"duplicate operators: {players}")
    cache: Dict[FrozenSet[str], float] = {}

    def value(coalition: FrozenSet[str]) -> float:
        if coalition not in cache:
            cache[coalition] = float(utility(coalition))
        return cache[coalition]

    empty = value(frozenset())
    if abs(empty) > 1e-12:
        raise ValueError(f"utility of the empty coalition must be 0, got {empty}")

    n = len(players)
    shapley = {p: 0.0 for p in players}
    for player in players:
        others = [p for p in players if p != player]
        for size in range(n):
            weight = (
                math.factorial(size) * math.factorial(n - size - 1)
                / math.factorial(n)
            )
            for subset in itertools.combinations(others, size):
                coalition = frozenset(subset)
                marginal = value(coalition | {player}) - value(coalition)
                shapley[player] += weight * marginal
    return shapley, cache


def revenue_sharing(operators: Sequence[str],
                    utility: Callable[[FrozenSet[str]], float],
                    revenue_pool: float) -> IncentiveReport:
    """Split a revenue pool by Shapley contribution.

    Args:
        operators: Federation members.
        utility: Coalition utility (coverage fraction, served demand, ...).
        revenue_pool: Total subscription revenue to distribute.

    Returns:
        An :class:`IncentiveReport`; ``collaboration_surplus`` compares
        each operator's federated payment against the revenue it could
        collect alone at the same revenue-per-utility rate.
    """
    if revenue_pool < 0.0:
        raise ValueError(f"revenue pool must be >= 0, got {revenue_pool}")
    shapley, cache = shapley_values(operators, utility)
    grand = cache[frozenset(operators)] if operators else 0.0
    total_shapley = sum(shapley.values())
    # Shapley efficiency: shares sum to the grand utility.
    payments = {}
    for operator in operators:
        share = shapley[operator] / total_shapley if total_shapley > 0 else 0.0
        payments[operator] = share * revenue_pool
    standalone = {
        operator: cache.get(frozenset({operator}),
                            float(utility(frozenset({operator}))))
        for operator in operators
    }
    rate = revenue_pool / grand if grand > 0 else 0.0
    surplus = {
        operator: payments[operator] - standalone[operator] * rate
        for operator in operators
    }
    return IncentiveReport(
        utilities=dict(cache),
        shapley=shapley,
        payments=payments,
        standalone=standalone,
        collaboration_surplus=surplus,
    )


def coverage_utility(fleet_by_operator: Dict[str, Sequence],
                     altitude_km: float = 780.0,
                     time_s: float = 0.0) -> Callable[[FrozenSet[str]], float]:
    """A coalition utility: union footprint coverage of the joint fleet.

    Superadditive by construction (more satellites never shrink the
    union), which is what makes collaboration a positive-sum game.

    Args:
        fleet_by_operator: Operator -> list of objects with a
            ``position_at``/``positions`` convention; accepts either
            :class:`SpacecraftSpec` lists (propagated here) or prebuilt
            ``(N, 3)`` position arrays.
    """
    import numpy as np

    from repro.orbits.kepler import KeplerPropagator
    from repro.orbits.visibility import coverage_fraction

    positions_by_operator: Dict[str, "np.ndarray"] = {}
    for operator, fleet in fleet_by_operator.items():
        if hasattr(fleet, "shape"):
            positions_by_operator[operator] = fleet
        else:
            positions_by_operator[operator] = np.array([
                KeplerPropagator(spec.elements).position_at(time_s)
                for spec in fleet
            ])

    def utility(coalition: FrozenSet[str]) -> float:
        if not coalition:
            return 0.0
        stacked = np.vstack([
            positions_by_operator[op] for op in sorted(coalition)
        ])
        return coverage_fraction(stacked, altitude_km)

    return utility


def viable_service_utility(fleet_by_operator: Dict[str, Sequence],
                           viability_threshold: float = 0.9,
                           altitude_km: float = 780.0,
                           time_s: float = 0.0) -> Callable[[FrozenSet[str]], float]:
    """Coalition utility under the paper's all-or-nothing business model.

    "LEO satellites have an all-or-nothing business model, where a
    constellation needs wide geographical coverage from the start to
    achieve reliable connectivity."  A coalition whose joint coverage
    falls below the viability threshold earns nothing — no customers
    subscribe to patchwork service; above it, utility is the coverage.

    This is the characteristic function under which collaboration is an
    incentive for *everyone*: small operators are individually worthless,
    and even a large operator below the threshold monetizes nothing until
    it federates.

    Args:
        fleet_by_operator: As in :func:`coverage_utility`.
        viability_threshold: Minimum joint coverage for a sellable service.
        altitude_km: Constellation altitude for footprints.
        time_s: Evaluation epoch.
    """
    if not 0.0 < viability_threshold <= 1.0:
        raise ValueError(
            f"viability threshold must be in (0, 1], got {viability_threshold}"
        )
    base = coverage_utility(fleet_by_operator, altitude_km, time_s)

    def utility(coalition: FrozenSet[str]) -> float:
        coverage = base(coalition)
        return coverage if coverage >= viability_threshold else 0.0

    return utility
