"""Per-path settlement from the cross-verified ledger.

"The precise monetary amounts that ISPs charge to carry said traffic is
left to agreements between individual ISPs in OpenSpace, much like in BGP"
— so each carrier publishes a rate card, and the settlement engine turns
the ledger's agreed carried-traffic matrix into invoices.  Rate cards are
technology-aware: "since RF-based ISLs are likely to offer less bandwidth
availability, these routes will likely be cheaper than laser-based ISLs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.economics.ledger import TrafficLedger


@dataclass(frozen=True)
class RateCard:
    """One carrier's published transit prices.

    Attributes:
        carrier: The publishing ISP.
        rf_rate_per_gb: $/GB for traffic carried over its RF ISLs.
        optical_rate_per_gb: $/GB over laser ISLs (premium QoS class).
        gateway_rate_per_gb: $/GB through its ground gateways.
        peer_discount: Multiplier applied for ISPs it peers with
            (1.0 = no discount; 0.0 = settlement-free peering).
    """

    carrier: str
    rf_rate_per_gb: float = 0.04
    optical_rate_per_gb: float = 0.10
    gateway_rate_per_gb: float = 0.05
    peer_discount: float = 1.0

    def __post_init__(self) -> None:
        for name in ("rf_rate_per_gb", "optical_rate_per_gb",
                     "gateway_rate_per_gb"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.peer_discount <= 1.0:
            raise ValueError(
                f"peer discount must be in [0, 1], got {self.peer_discount}"
            )

    def rate_for(self, segment_kind: str, is_peer: bool) -> float:
        """$/GB for a segment kind (``"rf"``, ``"optical"``, ``"gateway"``)."""
        rates = {
            "rf": self.rf_rate_per_gb,
            "optical": self.optical_rate_per_gb,
            "gateway": self.gateway_rate_per_gb,
        }
        if segment_kind not in rates:
            raise ValueError(
                f"unknown segment kind {segment_kind!r}; "
                f"expected one of {sorted(rates)}"
            )
        rate = rates[segment_kind]
        return rate * (self.peer_discount if is_peer else 1.0)


@dataclass(frozen=True)
class Invoice:
    """One carrier's bill to one source ISP for a settlement period.

    Attributes:
        carrier: The billing ISP.
        customer: The ISP whose traffic was carried.
        gigabytes: Agreed carried volume.
        amount_usd: Total charge.
    """

    carrier: str
    customer: str
    gigabytes: float
    amount_usd: float


class SettlementEngine:
    """Turns ledger matrices into invoices and net positions.

    Args:
        rate_cards: Carrier name -> its published rate card; carriers
            without a card bill at a default card.
        peers: Set of frozenset({a, b}) pairs with peering agreements.
    """

    def __init__(self, rate_cards: Optional[Dict[str, RateCard]] = None,
                 peers: Optional[set] = None):
        self.rate_cards = dict(rate_cards or {})
        self.peers = set(peers or set())

    def card_for(self, carrier: str) -> RateCard:
        return self.rate_cards.get(carrier, RateCard(carrier=carrier))

    def are_peers(self, a: str, b: str) -> bool:
        return frozenset({a, b}) in self.peers

    def add_peering(self, a: str, b: str) -> None:
        """Record a peering agreement between two ISPs."""
        if a == b:
            raise ValueError("an ISP cannot peer with itself")
        self.peers.add(frozenset({a, b}))

    def invoices_from_ledger(self, ledger: TrafficLedger,
                             segment_kind: str = "rf") -> List[Invoice]:
        """Bill every agreed (source, carrier) cell of the ledger matrix.

        Args:
            ledger: The cross-verified traffic ledger.
            segment_kind: Technology class applied to all segments (the
                ledger does not retain per-segment technology; callers
                tracking mixed technologies settle per-kind matrices).
        """
        invoices = []
        for (source, carrier), gigabytes in sorted(
            ledger.carried_matrix().items()
        ):
            card = self.card_for(carrier)
            rate = card.rate_for(segment_kind, self.are_peers(source, carrier))
            invoices.append(Invoice(
                carrier=carrier,
                customer=source,
                gigabytes=gigabytes,
                amount_usd=rate * gigabytes,
            ))
        return invoices

    def net_positions(self, invoices: List[Invoice]) -> Dict[str, float]:
        """Per-ISP net cash position across a set of invoices."""
        positions: Dict[str, float] = {}
        for invoice in invoices:
            positions[invoice.carrier] = (
                positions.get(invoice.carrier, 0.0) + invoice.amount_usd
            )
            positions[invoice.customer] = (
                positions.get(invoice.customer, 0.0) - invoice.amount_usd
            )
        return positions

    def bilateral_flows(self, invoices: List[Invoice]) -> Dict[Tuple[str, str], float]:
        """Money flowing customer -> carrier per ordered pair."""
        flows: Dict[Tuple[str, str], float] = {}
        for invoice in invoices:
            key = (invoice.customer, invoice.carrier)
            flows[key] = flows.get(key, 0.0) + invoice.amount_usd
        return flows
