"""Satellite capital-cost model.

"Manufacturing and launching satellites poses a significant cost, due to
cost of materials, the expertise required for designing and building
hardware and software systems, paying for licensing requirements, and
launching and maneuvering satellites into the desired orbit.  As an
example of licensing requirements, the FCC has proposed small satellite
regulatory fees of about $12,145."

The model prices a spacecraft from its spec (bus class + terminal bill of
materials, launch mass, licensing) and aggregates constellation budgets —
the numbers behind the paper's argument that collaboration lowers the
entry barrier versus each small firm buying global coverage alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.interop import SizeClass, SpacecraftSpec

#: The paper's cited FCC small-satellite regulatory fee.
FCC_SMALLSAT_FEE_USD = 12_145.0

#: Bus (structure, power, ADCS, OBC, integration) cost by size class.
_BUS_COST_USD: Dict[SizeClass, float] = {
    SizeClass.SMALL: 350_000.0,
    SizeClass.MEDIUM: 2_500_000.0,
    SizeClass.LARGE: 9_000_000.0,
}

#: Dry bus mass by size class, kg (terminals add their own mass).
_BUS_MASS_KG: Dict[SizeClass, float] = {
    SizeClass.SMALL: 12.0,
    SizeClass.MEDIUM: 150.0,
    SizeClass.LARGE: 700.0,
}


@dataclass(frozen=True)
class SatelliteCostModel:
    """Pricing assumptions.

    Attributes:
        launch_cost_per_kg: Rideshare launch price (Falcon-9-class
            rideshare runs ~$5,500-6,500/kg).
        licensing_fee: Regulatory fee per spacecraft (paper's FCC figure).
        integration_overhead: Fraction of hardware cost spent on assembly,
            integration, and test.
        annual_operations_per_sat: Yearly ground-ops cost per spacecraft.
    """

    launch_cost_per_kg: float = 6_000.0
    licensing_fee: float = FCC_SMALLSAT_FEE_USD
    integration_overhead: float = 0.15
    annual_operations_per_sat: float = 100_000.0

    def hardware_cost(self, spec: SpacecraftSpec) -> float:
        """Bus + terminal bill of materials."""
        cost = _BUS_COST_USD[spec.size_class]
        for terminal in spec.isl_terminals:
            cost += terminal.unit_cost_usd
        if spec.ground_terminal is not None:
            cost += spec.ground_terminal.unit_cost_usd
        return cost

    def launch_mass_kg(self, spec: SpacecraftSpec) -> float:
        """Wet mass: bus plus every terminal."""
        mass = _BUS_MASS_KG[spec.size_class]
        for terminal in spec.isl_terminals:
            mass += terminal.mass_kg
        if spec.ground_terminal is not None:
            mass += spec.ground_terminal.mass_kg
        return mass

    def unit_cost(self, spec: SpacecraftSpec) -> float:
        """All-in cost to put one spacecraft on orbit."""
        hardware = self.hardware_cost(spec)
        launch = self.launch_mass_kg(spec) * self.launch_cost_per_kg
        return (
            hardware * (1.0 + self.integration_overhead)
            + launch
            + self.licensing_fee
        )


@dataclass
class ConstellationBudget:
    """Aggregated budget for a fleet.

    Attributes:
        fleet_size: Number of spacecraft.
        hardware_usd: Total hardware cost.
        launch_usd: Total launch cost.
        licensing_usd: Total regulatory fees.
        total_usd: All-in capital cost.
        annual_operations_usd: Recurring yearly cost.
    """

    fleet_size: int
    hardware_usd: float
    launch_usd: float
    licensing_usd: float
    total_usd: float
    annual_operations_usd: float

    @property
    def per_satellite_usd(self) -> float:
        if self.fleet_size == 0:
            return 0.0
        return self.total_usd / self.fleet_size


def constellation_budget(fleet: Sequence[SpacecraftSpec],
                         model: SatelliteCostModel = SatelliteCostModel()) -> ConstellationBudget:
    """Price a whole fleet under a cost model."""
    hardware = sum(
        model.hardware_cost(s) * (1.0 + model.integration_overhead)
        for s in fleet
    )
    launch = sum(
        model.launch_mass_kg(s) * model.launch_cost_per_kg for s in fleet
    )
    licensing = model.licensing_fee * len(fleet)
    return ConstellationBudget(
        fleet_size=len(fleet),
        hardware_usd=hardware,
        launch_usd=launch,
        licensing_usd=licensing,
        total_usd=hardware + launch + licensing,
        annual_operations_usd=model.annual_operations_per_sat * len(fleet),
    )


def entry_cost_comparison(solo_fleet: Sequence[SpacecraftSpec],
                          shared_fleet: Sequence[SpacecraftSpec],
                          participant_count: int,
                          model: SatelliteCostModel = SatelliteCostModel()) -> Dict[str, float]:
    """Entry cost: going it alone vs a share of a federated fleet.

    The paper's core economic claim: a small firm cannot afford the
    all-or-nothing constellation a monolith needs, but can afford its
    share of a collaboratively assembled one.

    Args:
        solo_fleet: The fleet a firm would need for viable solo service.
        shared_fleet: The collectively assembled OpenSpace fleet.
        participant_count: Firms sharing the federated fleet's cost.

    Returns:
        ``{"solo_usd", "shared_total_usd", "per_participant_usd",
        "savings_factor"}``.
    """
    if participant_count < 1:
        raise ValueError(
            f"need at least one participant, got {participant_count}"
        )
    solo = constellation_budget(solo_fleet, model).total_usd
    shared = constellation_budget(shared_fleet, model).total_usd
    per_participant = shared / participant_count
    return {
        "solo_usd": solo,
        "shared_total_usd": shared,
        "per_participant_usd": per_participant,
        "savings_factor": solo / per_participant if per_participant else float("inf"),
    }
