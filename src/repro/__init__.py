"""repro — an OpenSpace simulation stack.

A from-scratch reproduction of "A Roadmap for the Democratization of
Space-Based Communications" (HotNets '24): orbital mechanics, physical
and MAC layers, inter-satellite links, routing, ground segment, security,
economics, and the OpenSpace federation protocols, plus the experiment
drivers that regenerate the paper's evaluation.

Subpackages (bottom-up):

* :mod:`repro.orbits` — propagation, frames, constellations, visibility.
* :mod:`repro.phy` — channels, antennas, link budgets, MODCODs.
* :mod:`repro.mac` — CSMA/CA, TDMA, OFDMA.
* :mod:`repro.isl` — link selection, power, topology.
* :mod:`repro.routing` — proactive / QoS / on-demand / adaptive /
  time-expanded routing.
* :mod:`repro.ground` — stations, users, gateway pricing.
* :mod:`repro.security` — authentication, certificates, bad actors.
* :mod:`repro.core` — the OpenSpace architecture itself.
* :mod:`repro.economics` — cost models, ledger, settlement, incentives.
* :mod:`repro.simulation` — engine, workloads, metrics, flow simulation.
* :mod:`repro.experiments` — paper figure and ablation drivers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
