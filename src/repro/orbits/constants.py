"""Physical constants used throughout the orbital substrate.

Values follow the WGS-84 / IERS conventions commonly used in LEO
constellation studies.  Distances are kilometres, times are seconds, and
angles are radians unless a name states otherwise.
"""

import math

#: Mean equatorial radius of the Earth (WGS-84), km.
EARTH_RADIUS_KM = 6378.137

#: Polar radius of the Earth (WGS-84), km.
EARTH_POLAR_RADIUS_KM = 6356.752314245

#: WGS-84 flattening factor.
EARTH_FLATTENING = 1.0 / 298.257223563

#: Standard gravitational parameter of the Earth, km^3/s^2.
EARTH_MU_KM3_S2 = 398600.4418

#: Second zonal harmonic of the Earth's gravity field (dimensionless).
EARTH_J2 = 1.08262668e-3

#: Earth rotation rate, rad/s (sidereal).
EARTH_ROTATION_RAD_S = 7.2921150e-5

#: One sidereal day, seconds.
SIDEREAL_DAY_S = 2.0 * math.pi / EARTH_ROTATION_RAD_S

#: Speed of light in vacuum, km/s.
SPEED_OF_LIGHT_KM_S = 299792.458

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT_M_S = 299792458.0

#: Boltzmann constant, J/K — used by the PHY link budgets.
BOLTZMANN_J_K = 1.380649e-23

#: Surface area of the (spherical) Earth, km^2.
EARTH_SURFACE_AREA_KM2 = 4.0 * math.pi * EARTH_RADIUS_KM**2

#: Altitude of the Iridium constellation used in the paper's Figure 2, km.
IRIDIUM_ALTITUDE_KM = 780.0

#: Number of satellites in the operational Iridium constellation.
IRIDIUM_SATELLITE_COUNT = 66

#: Number of orbital planes in the Iridium constellation.
IRIDIUM_PLANE_COUNT = 6

#: Inclination of the Iridium constellation, degrees.  The paper's text says
#: "8.4 degree inclinations", an obvious typo for Iridium's near-polar 86.4°.
IRIDIUM_INCLINATION_DEG = 86.4

#: CBO reference design (cited by the paper): 72 satellites, 12 per plane in
#: 6 planes at 80 degrees inclination give about 95% global coverage.
CBO_SATELLITE_COUNT = 72
CBO_PLANE_COUNT = 6
CBO_INCLINATION_DEG = 80.0
CBO_EXPECTED_COVERAGE = 0.95
