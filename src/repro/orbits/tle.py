"""Two-Line Element (TLE) codec.

The paper's routing design rests on the observation that "the radar-tracked
orbital paths of satellites are well-known and readily available on public
websites" (N2YO, AstriaGraph).  This module is the stand-in for those
catalogs: it parses standard TLE records into orbital elements and emits
checksummed TLE records from elements, so synthetic constellations can be
published/consumed through the same public-data format real systems use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.orbits.constants import EARTH_MU_KM3_S2
from repro.orbits.elements import OrbitalElements

_TWO_PI = 2.0 * math.pi
_SECONDS_PER_DAY = 86400.0


def _checksum(line: str) -> int:
    """TLE modulo-10 checksum: digits count as themselves, '-' counts as 1."""
    total = 0
    for char in line[:68]:
        if char.isdigit():
            total += int(char)
        elif char == "-":
            total += 1
    return total % 10


@dataclass(frozen=True)
class TwoLineElement:
    """A parsed TLE record.

    Attributes:
        name: Satellite name from the (optional) title line.
        catalog_number: NORAD catalog number.
        epoch_year: Two-digit epoch year as encoded in the TLE.
        epoch_day: Fractional day of year.
        inclination_deg: Inclination in degrees.
        raan_deg: RAAN in degrees.
        eccentricity: Eccentricity (the TLE field has an implied leading dot).
        arg_perigee_deg: Argument of perigee in degrees.
        mean_anomaly_deg: Mean anomaly in degrees.
        mean_motion_rev_day: Mean motion in revolutions per day.
    """

    name: str
    catalog_number: int
    epoch_year: int
    epoch_day: float
    inclination_deg: float
    raan_deg: float
    eccentricity: float
    arg_perigee_deg: float
    mean_anomaly_deg: float
    mean_motion_rev_day: float

    def to_elements(self, epoch_s: float = 0.0) -> OrbitalElements:
        """Convert to :class:`OrbitalElements` (epoch remapped to sim time)."""
        n_rad_s = self.mean_motion_rev_day * _TWO_PI / _SECONDS_PER_DAY
        semi_major = (EARTH_MU_KM3_S2 / n_rad_s**2) ** (1.0 / 3.0)
        return OrbitalElements(
            semi_major_axis_km=semi_major,
            eccentricity=self.eccentricity,
            inclination_rad=math.radians(self.inclination_deg),
            raan_rad=math.radians(self.raan_deg),
            arg_perigee_rad=math.radians(self.arg_perigee_deg),
            mean_anomaly_rad=math.radians(self.mean_anomaly_deg),
            epoch_s=epoch_s,
        )


def parse_tle(lines: List[str]) -> TwoLineElement:
    """Parse a 2- or 3-line TLE record (title line optional).

    Raises:
        ValueError: On malformed lines or checksum failure.
    """
    stripped = [line.rstrip("\n") for line in lines if line.strip()]
    if len(stripped) == 3:
        name, line1, line2 = stripped
    elif len(stripped) == 2:
        name, (line1, line2) = "UNKNOWN", stripped
    else:
        raise ValueError(f"expected 2 or 3 TLE lines, got {len(stripped)}")
    if not line1.startswith("1 ") or not line2.startswith("2 "):
        raise ValueError("TLE lines must start with '1 ' and '2 '")
    for line in (line1, line2):
        if len(line) < 69:
            raise ValueError(f"TLE line too short ({len(line)} chars): {line!r}")
        if int(line[68]) != _checksum(line):
            raise ValueError(f"TLE checksum mismatch on line: {line!r}")
    catalog = int(line1[2:7])
    epoch_year = int(line1[18:20])
    epoch_day = float(line1[20:32])
    inclination = float(line2[8:16])
    raan = float(line2[17:25])
    eccentricity = float("0." + line2[26:33].strip())
    arg_perigee = float(line2[34:42])
    mean_anomaly = float(line2[43:51])
    mean_motion = float(line2[52:63])
    return TwoLineElement(
        name=name.strip(),
        catalog_number=catalog,
        epoch_year=epoch_year,
        epoch_day=epoch_day,
        inclination_deg=inclination,
        raan_deg=raan,
        eccentricity=eccentricity,
        arg_perigee_deg=arg_perigee,
        mean_anomaly_deg=mean_anomaly,
        mean_motion_rev_day=mean_motion,
    )


def emit_tle(tle: TwoLineElement) -> List[str]:
    """Render a :class:`TwoLineElement` to a checksummed 3-line record."""
    ecc_field = f"{tle.eccentricity:.7f}"[2:9]
    line1 = (
        f"1 {tle.catalog_number:05d}U 00000A   "
        f"{tle.epoch_year:02d}{tle.epoch_day:012.8f}  .00000000  00000-0"
        f"  00000-0 0  999"
    )
    line1 = line1[:68].ljust(68)
    line1 += str(_checksum(line1))
    line2 = (
        f"2 {tle.catalog_number:05d} {tle.inclination_deg:8.4f} "
        f"{tle.raan_deg:8.4f} {ecc_field} {tle.arg_perigee_deg:8.4f} "
        f"{tle.mean_anomaly_deg:8.4f} {tle.mean_motion_rev_day:11.8f}    0"
    )
    line2 = line2[:68].ljust(68)
    line2 += str(_checksum(line2))
    return [tle.name, line1, line2]


def elements_from_tle(lines: List[str], epoch_s: float = 0.0) -> OrbitalElements:
    """Parse a TLE record straight into orbital elements."""
    return parse_tle(lines).to_elements(epoch_s)


def tle_from_elements(elements: OrbitalElements, name: str = "SYNTHETIC",
                      catalog_number: int = 1) -> List[str]:
    """Encode orbital elements as a synthetic TLE record.

    The epoch is stamped as day-of-year within a fixed synthetic year; round
    trips through :func:`elements_from_tle` preserve the orbital geometry
    (the simulation-time epoch is supplied at parse time instead).
    """
    mean_motion = elements.mean_motion_rad_s * _SECONDS_PER_DAY / _TWO_PI
    return emit_tle(
        TwoLineElement(
            name=name,
            catalog_number=catalog_number,
            epoch_year=26,
            epoch_day=1.0 + elements.epoch_s / _SECONDS_PER_DAY,
            inclination_deg=math.degrees(elements.inclination_rad),
            raan_deg=math.degrees(elements.raan_rad),
            eccentricity=elements.eccentricity,
            arg_perigee_deg=math.degrees(elements.arg_perigee_rad),
            mean_anomaly_deg=math.degrees(elements.mean_anomaly_rad),
            mean_motion_rev_day=mean_motion,
        )
    )


def catalog_from_constellation(constellation, name_prefix: str = "OPENSPACE"):
    """Emit a full public catalog (list of 3-line records) for a fleet.

    This is what an OpenSpace operator would publish so every other firm has
    "a full public view of the topology of the entire network".
    """
    records = []
    for index, elements in enumerate(constellation):
        records.append(
            tle_from_elements(
                elements,
                name=f"{name_prefix}-{index:04d}",
                catalog_number=10000 + index,
            )
        )
    return records
