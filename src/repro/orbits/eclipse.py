"""Eclipse geometry and orbit-average solar power.

Spacecraft in OpenSpace "differ in energy budgets" (§2); the dominant
driver is eclipse time — in the Earth's shadow panels generate nothing and
ISLs run off the battery.  The model is the standard cylindrical-shadow
approximation: a satellite is eclipsed when it is on the anti-sun side and
its distance from the shadow axis is less than the Earth's radius.

The sun direction is modelled as a unit vector advancing around the
ecliptic with simulation time (epoch t=0 at the vernal equinox), which is
accurate enough for eclipse-fraction statistics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.kepler import KeplerPropagator

#: Obliquity of the ecliptic, radians.
ECLIPTIC_OBLIQUITY_RAD = math.radians(23.439)

#: Length of the (modelled) year, seconds.
YEAR_S = 365.25 * 86400.0


def sun_direction(time_s: float) -> np.ndarray:
    """Unit vector from the Earth to the Sun in ECI at ``time_s``.

    The Sun advances uniformly along the ecliptic from the vernal equinox
    at t=0 — a mean-sun model, adequate for eclipse statistics.
    """
    mean_longitude = 2.0 * math.pi * (time_s / YEAR_S)
    cos_l, sin_l = math.cos(mean_longitude), math.sin(mean_longitude)
    cos_e, sin_e = math.cos(ECLIPTIC_OBLIQUITY_RAD), math.sin(
        ECLIPTIC_OBLIQUITY_RAD
    )
    return np.array([cos_l, sin_l * cos_e, sin_l * sin_e])


def in_eclipse(position_eci_km: np.ndarray, time_s: float) -> bool:
    """Whether a satellite is inside the Earth's (cylindrical) shadow."""
    position = np.asarray(position_eci_km, dtype=float)
    sun = sun_direction(time_s)
    along_sun = float(position @ sun)
    if along_sun >= 0.0:
        return False  # sunward side: lit
    radial = position - along_sun * sun
    return float(np.linalg.norm(radial)) < EARTH_RADIUS_KM


def eclipse_fraction(propagator: KeplerPropagator, start_s: float = 0.0,
                     samples: int = 120) -> float:
    """Fraction of one orbit spent in eclipse (sampled).

    Args:
        propagator: The satellite's propagator.
        start_s: Orbit start time (the sun direction is effectively
            frozen over one LEO orbit).
        samples: Samples around the orbit.

    Returns:
        Eclipse fraction in [0, 1]; LEO orbits see up to ~40%.
    """
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")
    period = propagator.period_s
    eclipsed = 0
    for k in range(samples):
        t = start_s + period * k / samples
        if in_eclipse(propagator.position_at(t), t):
            eclipsed += 1
    return eclipsed / samples


def orbit_average_generation_w(panel_power_w: float,
                               propagator: KeplerPropagator,
                               start_s: float = 0.0,
                               samples: int = 120) -> float:
    """Orbit-average electrical generation given full-sun panel power.

    The number to put into :class:`~repro.isl.power.PowerBudget` as
    ``solar_generation_w`` — the budget treats generation as
    eclipse-averaged.
    """
    if panel_power_w < 0.0:
        raise ValueError(f"panel power must be >= 0, got {panel_power_w}")
    fraction = eclipse_fraction(propagator, start_s, samples)
    return panel_power_w * (1.0 - fraction)


def eclipse_windows(propagator: KeplerPropagator, start_s: float,
                    end_s: float, step_s: float = 30.0) -> list:
    """``(entry_s, exit_s)`` eclipse intervals over a time span."""
    if end_s <= start_s:
        raise ValueError(f"end {end_s} must be after start {start_s}")
    windows = []
    entry: float = None
    times = np.arange(start_s, end_s + step_s, step_s)
    for t in times:
        dark = in_eclipse(propagator.position_at(float(t)), float(t))
        if dark and entry is None:
            entry = float(t)
        elif not dark and entry is not None:
            windows.append((entry, float(t)))
            entry = None
    if entry is not None:
        windows.append((entry, float(times[-1])))
    return windows
