"""Coordinate frames: ECI <-> ECEF <-> geodetic, plus ground-observer geometry.

The simulation treats the Earth as a rotating sphere of mean radius
``EARTH_RADIUS_KM`` for visibility/coverage purposes (matching the paper's
simplified study) but provides WGS-84 geodetic conversions for realistic
ground-station placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.orbits.constants import (
    EARTH_FLATTENING,
    EARTH_RADIUS_KM,
    EARTH_ROTATION_RAD_S,
)

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class GeodeticPoint:
    """A point on or above the Earth in geodetic coordinates.

    Attributes:
        latitude_deg: Geodetic latitude in degrees, positive north.
        longitude_deg: Longitude in degrees, positive east, in (-180, 180].
        altitude_km: Height above the reference ellipsoid in kilometres.
    """

    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")

    @property
    def latitude_rad(self) -> float:
        return math.radians(self.latitude_deg)

    @property
    def longitude_rad(self) -> float:
        return math.radians(self.longitude_deg)

    def ecef(self) -> np.ndarray:
        """ECEF position vector in kilometres."""
        return geodetic_to_ecef(self)


def geodetic_to_ecef(point: GeodeticPoint) -> np.ndarray:
    """Convert geodetic coordinates to an ECEF vector (km), WGS-84 ellipsoid."""
    lat = point.latitude_rad
    lon = point.longitude_rad
    e2 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING)
    sin_lat = math.sin(lat)
    n = EARTH_RADIUS_KM / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    x = (n + point.altitude_km) * math.cos(lat) * math.cos(lon)
    y = (n + point.altitude_km) * math.cos(lat) * math.sin(lon)
    z = (n * (1.0 - e2) + point.altitude_km) * sin_lat
    return np.array([x, y, z])


def ecef_to_geodetic(ecef_km: np.ndarray, tol: float = 1e-10,
                     max_iterations: int = 20) -> GeodeticPoint:
    """Convert an ECEF vector (km) to geodetic coordinates (iterative)."""
    x, y, z = (float(v) for v in ecef_km)
    lon = math.atan2(y, x)
    p = math.hypot(x, y)
    e2 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING)
    if p < 1e-9:
        # On the polar axis the longitude is undefined; pick 0.
        lat = math.copysign(math.pi / 2.0, z)
        n = EARTH_RADIUS_KM / math.sqrt(1.0 - e2)
        alt = abs(z) - n * (1.0 - e2)
        return GeodeticPoint(math.degrees(lat), 0.0, alt)
    lat = math.atan2(z, p * (1.0 - e2))
    for _ in range(max_iterations):
        sin_lat = math.sin(lat)
        n = EARTH_RADIUS_KM / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
        alt = p / math.cos(lat) - n
        new_lat = math.atan2(z, p * (1.0 - e2 * n / (n + alt)))
        if abs(new_lat - lat) < tol:
            lat = new_lat
            break
        lat = new_lat
    sin_lat = math.sin(lat)
    n = EARTH_RADIUS_KM / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    alt = p / math.cos(lat) - n
    lon_deg = math.degrees(lon)
    if lon_deg <= -180.0:
        lon_deg += 360.0
    return GeodeticPoint(math.degrees(lat), lon_deg, alt)


def _gmst_rad(time_s: float) -> float:
    """Greenwich mean sidereal angle at simulation time ``time_s``.

    The simulation epoch (t=0) is defined to have the prime meridian aligned
    with the ECI x-axis, so GMST is simply the accumulated Earth rotation.
    """
    return (EARTH_ROTATION_RAD_S * time_s) % _TWO_PI


def eci_to_ecef(eci_km: np.ndarray, time_s: float) -> np.ndarray:
    """Rotate an ECI vector into the Earth-fixed frame at ``time_s``."""
    theta = _gmst_rad(time_s)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rot = np.array([[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]])
    return rot @ np.asarray(eci_km, dtype=float)


def ecef_to_eci(ecef_km: np.ndarray, time_s: float) -> np.ndarray:
    """Rotate an Earth-fixed vector into the inertial frame at ``time_s``."""
    theta = _gmst_rad(time_s)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rot = np.array([[cos_t, -sin_t, 0.0], [sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]])
    return rot @ np.asarray(ecef_km, dtype=float)


def ecef_to_eci_over(ecef_km: np.ndarray, times_s) -> np.ndarray:
    """Rotate one Earth-fixed vector into ECI at many times at once.

    Args:
        ecef_km: A single ``(3,)`` Earth-fixed position.
        times_s: 1-D array of T simulation times.

    Returns:
        ``(T, 3)`` array of inertial positions — the batched counterpart
        of calling :func:`ecef_to_eci` per time.
    """
    times = np.asarray(times_s, dtype=float)
    theta = (EARTH_ROTATION_RAD_S * times) % _TWO_PI
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    x, y, z = np.asarray(ecef_km, dtype=float)
    return np.stack(
        [cos_t * x - sin_t * y, sin_t * x + cos_t * y,
         np.full_like(times, z)], axis=-1
    )


def look_angles(observer: GeodeticPoint,
                target_ecef_km: np.ndarray) -> Tuple[float, float, float]:
    """Azimuth, elevation (radians) and slant range (km) from an observer.

    Azimuth is measured clockwise from true north; elevation is positive
    above the local horizon.

    Args:
        observer: Ground observer location.
        target_ecef_km: Target position in the Earth-fixed frame, km.

    Returns:
        ``(azimuth_rad, elevation_rad, range_km)``.
    """
    obs_ecef = observer.ecef()
    delta = np.asarray(target_ecef_km, dtype=float) - obs_ecef
    lat, lon = observer.latitude_rad, observer.longitude_rad
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_lon, cos_lon = math.sin(lon), math.cos(lon)
    # Rotate the ECEF delta into the local East-North-Up frame.
    east = -sin_lon * delta[0] + cos_lon * delta[1]
    north = (
        -sin_lat * cos_lon * delta[0]
        - sin_lat * sin_lon * delta[1]
        + cos_lat * delta[2]
    )
    up = (
        cos_lat * cos_lon * delta[0]
        + cos_lat * sin_lon * delta[1]
        + sin_lat * delta[2]
    )
    range_km = float(np.linalg.norm(delta))
    if range_km == 0.0:
        return 0.0, math.pi / 2.0, 0.0
    elevation = math.asin(max(-1.0, min(1.0, up / range_km)))
    azimuth = math.atan2(east, north) % _TWO_PI
    return azimuth, elevation, range_km


def subsatellite_point(eci_km: np.ndarray, time_s: float) -> GeodeticPoint:
    """The geodetic point directly beneath a satellite at ``time_s``."""
    return ecef_to_geodetic(eci_to_ecef(eci_km, time_s))
