"""Classical (Keplerian) orbital elements.

A small immutable value type shared by the propagator, the Walker
constellation generators, and the TLE codec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.orbits.constants import EARTH_MU_KM3_S2, EARTH_RADIUS_KM

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class OrbitalElements:
    """Classical orbital elements at a reference epoch.

    Attributes:
        semi_major_axis_km: Semi-major axis ``a`` in kilometres.
        eccentricity: Eccentricity ``e`` (0 for circular orbits).
        inclination_rad: Inclination ``i`` in radians.
        raan_rad: Right ascension of the ascending node in radians.
        arg_perigee_rad: Argument of perigee in radians (0 for circular).
        mean_anomaly_rad: Mean anomaly at epoch in radians.
        epoch_s: Simulation time of the epoch in seconds.
    """

    semi_major_axis_km: float
    eccentricity: float = 0.0
    inclination_rad: float = 0.0
    raan_rad: float = 0.0
    arg_perigee_rad: float = 0.0
    mean_anomaly_rad: float = 0.0
    epoch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.semi_major_axis_km <= 0.0:
            raise ValueError(
                f"semi-major axis must be positive, got {self.semi_major_axis_km}"
            )
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValueError(
                f"eccentricity must be in [0, 1) for a closed orbit, "
                f"got {self.eccentricity}"
            )

    @classmethod
    def circular(
        cls,
        altitude_km: float,
        inclination_rad: float,
        raan_rad: float = 0.0,
        mean_anomaly_rad: float = 0.0,
        epoch_s: float = 0.0,
    ) -> "OrbitalElements":
        """Build elements for a circular orbit at the given altitude."""
        if altitude_km <= 0.0:
            raise ValueError(f"altitude must be positive, got {altitude_km}")
        return cls(
            semi_major_axis_km=EARTH_RADIUS_KM + altitude_km,
            eccentricity=0.0,
            inclination_rad=inclination_rad,
            raan_rad=raan_rad % _TWO_PI,
            arg_perigee_rad=0.0,
            mean_anomaly_rad=mean_anomaly_rad % _TWO_PI,
            epoch_s=epoch_s,
        )

    @property
    def altitude_km(self) -> float:
        """Altitude above the mean equatorial radius (exact for circular)."""
        return self.semi_major_axis_km - EARTH_RADIUS_KM

    @property
    def perigee_altitude_km(self) -> float:
        return self.semi_major_axis_km * (1.0 - self.eccentricity) - EARTH_RADIUS_KM

    @property
    def apogee_altitude_km(self) -> float:
        return self.semi_major_axis_km * (1.0 + self.eccentricity) - EARTH_RADIUS_KM

    @property
    def mean_motion_rad_s(self) -> float:
        """Mean motion ``n = sqrt(mu / a^3)`` in rad/s."""
        return math.sqrt(EARTH_MU_KM3_S2 / self.semi_major_axis_km**3)

    @property
    def period_s(self) -> float:
        """Orbital period in seconds."""
        return _TWO_PI / self.mean_motion_rad_s

    def with_mean_anomaly(self, mean_anomaly_rad: float) -> "OrbitalElements":
        """Return a copy shifted to a new mean anomaly at the same epoch."""
        return replace(self, mean_anomaly_rad=mean_anomaly_rad % _TWO_PI)

    def with_raan(self, raan_rad: float) -> "OrbitalElements":
        """Return a copy with a new right ascension of the ascending node."""
        return replace(self, raan_rad=raan_rad % _TWO_PI)
