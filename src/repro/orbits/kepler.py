"""Keplerian orbit propagation with optional J2 secular perturbations.

The propagator turns :class:`~repro.orbits.elements.OrbitalElements` into
Earth-Centred Inertial (ECI) position and velocity vectors at an arbitrary
simulation time.  For the near-circular LEO orbits the paper studies, the
dominant perturbation is the Earth's oblateness (J2), which causes secular
drift of the ascending node and the argument of perigee; both are modelled.

The module deliberately avoids any external ephemeris dependencies so the
whole stack is self-contained, per the reproduction's substitution rule
(synthetic orbital data in place of the radar-tracked catalogs the paper
cites).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.orbits.constants import EARTH_J2, EARTH_MU_KM3_S2, EARTH_RADIUS_KM
from repro.orbits.elements import OrbitalElements

_TWO_PI = 2.0 * math.pi


def mean_motion(semi_major_axis_km: float) -> float:
    """Mean motion ``n = sqrt(mu/a^3)`` in rad/s for the given ``a``."""
    if semi_major_axis_km <= 0.0:
        raise ValueError(f"semi-major axis must be positive, got {semi_major_axis_km}")
    return math.sqrt(EARTH_MU_KM3_S2 / semi_major_axis_km**3)


def orbital_period(semi_major_axis_km: float) -> float:
    """Orbital period in seconds for the given semi-major axis."""
    return _TWO_PI / mean_motion(semi_major_axis_km)


def solve_kepler_array(mean_anomaly_rad: np.ndarray, eccentricity: float,
                       tol: float = 1e-12,
                       max_iterations: int = 50) -> np.ndarray:
    """Vectorized Kepler solve: ``M = E - e sin E`` for an array of ``M``.

    Runs the same Newton-Raphson iteration as :func:`solve_kepler` on the
    whole array at once.  Each element stops updating as soon as its own
    step falls below ``tol`` (a convergence mask, not a global break), so
    every element sees the same update sequence the scalar solver applies.
    In practice the two paths agree to within a few ulps (numpy's sin/cos
    may round differently from ``math``'s on some platforms), which is far
    below the solver's own ``tol``.

    Args:
        mean_anomaly_rad: Mean anomalies ``M`` in radians, any shape.
        eccentricity: Orbit eccentricity ``e`` in [0, 1) (shared).
        tol: Convergence tolerance on ``|E_{k+1} - E_k|``.
        max_iterations: Safety bound on Newton iterations.

    Returns:
        Eccentric anomalies, same shape as the input.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")
    m = np.asarray(mean_anomaly_rad, dtype=float) % _TWO_PI
    if eccentricity == 0.0:
        # E = M exactly; skip the iteration entirely.
        return m.copy()
    e_anom = m.copy() if eccentricity < 0.8 else np.full_like(m, math.pi)
    active = np.ones(m.shape, dtype=bool)
    for _ in range(max_iterations):
        if not active.any():
            break
        e_act = e_anom[active]
        delta = (e_act - eccentricity * np.sin(e_act) - m[active]) / (
            1.0 - eccentricity * np.cos(e_act)
        )
        e_anom[active] = e_act - delta
        still = np.abs(delta) >= tol
        active[active] = still
    return e_anom


def true_anomaly_from_eccentric_array(eccentric_anomaly_rad: np.ndarray,
                                      eccentricity: float) -> np.ndarray:
    """Vectorized eccentric-to-true anomaly conversion."""
    half_e = np.asarray(eccentric_anomaly_rad, dtype=float) / 2.0
    return 2.0 * np.arctan2(
        math.sqrt(1.0 + eccentricity) * np.sin(half_e),
        math.sqrt(1.0 - eccentricity) * np.cos(half_e),
    )


def solve_kepler(mean_anomaly_rad: float, eccentricity: float, tol: float = 1e-12,
                 max_iterations: int = 50) -> float:
    """Solve Kepler's equation ``M = E - e sin E`` for eccentric anomaly E.

    Uses Newton-Raphson with a starting guess of ``M`` (adequate for the
    small eccentricities of LEO orbits, but the iteration converges for any
    ``e < 1``).

    Args:
        mean_anomaly_rad: Mean anomaly ``M`` in radians.
        eccentricity: Orbit eccentricity ``e`` in [0, 1).
        tol: Convergence tolerance on ``|E_{k+1} - E_k|``.
        max_iterations: Safety bound on Newton iterations.

    Returns:
        Eccentric anomaly ``E`` in radians, in the same revolution as ``M``.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")
    m = mean_anomaly_rad % _TWO_PI
    # High-eccentricity orbits converge faster from E0 = pi.
    e_anom = m if eccentricity < 0.8 else math.pi
    for _ in range(max_iterations):
        delta = (e_anom - eccentricity * math.sin(e_anom) - m) / (
            1.0 - eccentricity * math.cos(e_anom)
        )
        e_anom -= delta
        if abs(delta) < tol:
            break
    return e_anom


def true_anomaly_from_eccentric(eccentric_anomaly_rad: float,
                                eccentricity: float) -> float:
    """Convert eccentric anomaly to true anomaly."""
    half_e = eccentric_anomaly_rad / 2.0
    return 2.0 * math.atan2(
        math.sqrt(1.0 + eccentricity) * math.sin(half_e),
        math.sqrt(1.0 - eccentricity) * math.cos(half_e),
    )


def _perifocal_to_eci_matrix(inclination_rad: float, raan_rad: float,
                             arg_perigee_rad: float) -> np.ndarray:
    """Rotation matrix from the perifocal frame to ECI (3-1-3 Euler)."""
    cos_o, sin_o = math.cos(raan_rad), math.sin(raan_rad)
    cos_i, sin_i = math.cos(inclination_rad), math.sin(inclination_rad)
    cos_w, sin_w = math.cos(arg_perigee_rad), math.sin(arg_perigee_rad)
    return np.array(
        [
            [
                cos_o * cos_w - sin_o * sin_w * cos_i,
                -cos_o * sin_w - sin_o * cos_w * cos_i,
                sin_o * sin_i,
            ],
            [
                sin_o * cos_w + cos_o * sin_w * cos_i,
                -sin_o * sin_w + cos_o * cos_w * cos_i,
                -cos_o * sin_i,
            ],
            [sin_w * sin_i, cos_w * sin_i, cos_i],
        ]
    )


def _perifocal_to_eci_matrices(inclination_rad: float, raan_rad: np.ndarray,
                               arg_perigee_rad: np.ndarray) -> np.ndarray:
    """Rotation matrices from the perifocal frame to ECI for angle arrays.

    Broadcasts ``raan_rad`` against ``arg_perigee_rad``; the result has
    shape ``broadcast_shape + (3, 3)``.  Inclination is shared (one
    element set), matching the secular-J2 model where only RAAN and the
    argument of perigee drift.
    """
    raan = np.asarray(raan_rad, dtype=float)
    argp = np.asarray(arg_perigee_rad, dtype=float)
    raan, argp = np.broadcast_arrays(raan, argp)
    cos_o, sin_o = np.cos(raan), np.sin(raan)
    cos_i, sin_i = math.cos(inclination_rad), math.sin(inclination_rad)
    cos_w, sin_w = np.cos(argp), np.sin(argp)
    rot = np.empty(raan.shape + (3, 3), dtype=float)
    rot[..., 0, 0] = cos_o * cos_w - sin_o * sin_w * cos_i
    rot[..., 0, 1] = -cos_o * sin_w - sin_o * cos_w * cos_i
    rot[..., 0, 2] = sin_o * sin_i
    rot[..., 1, 0] = sin_o * cos_w + cos_o * sin_w * cos_i
    rot[..., 1, 1] = -sin_o * sin_w + cos_o * cos_w * cos_i
    rot[..., 1, 2] = -cos_o * sin_i
    rot[..., 2, 0] = sin_w * sin_i
    rot[..., 2, 1] = cos_w * sin_i
    rot[..., 2, 2] = cos_i
    return rot


class KeplerPropagator:
    """Propagates one set of orbital elements to ECI state vectors.

    Args:
        elements: Orbital elements at their epoch.
        include_j2: When True, apply secular J2 drift to the RAAN, argument
            of perigee, and mean anomaly.  The short-period oscillations are
            not modelled; they are negligible at the fidelity of the paper's
            simulation (propagation latency and footprint coverage).
    """

    def __init__(self, elements: OrbitalElements, include_j2: bool = False):
        self.elements = elements
        self.include_j2 = include_j2
        self._n = elements.mean_motion_rad_s
        if include_j2:
            a = elements.semi_major_axis_km
            e = elements.eccentricity
            i = elements.inclination_rad
            p = a * (1.0 - e * e)
            factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p) ** 2 * self._n
            self._raan_dot = -factor * math.cos(i)
            self._argp_dot = factor * (2.0 - 2.5 * math.sin(i) ** 2)
            self._mean_dot = self._n + factor * math.sqrt(1.0 - e * e) * (
                1.0 - 1.5 * math.sin(i) ** 2
            )
        else:
            self._raan_dot = 0.0
            self._argp_dot = 0.0
            self._mean_dot = self._n

    def state_at(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """ECI position (km) and velocity (km/s) at simulation time ``time_s``."""
        el = self.elements
        dt = time_s - el.epoch_s
        mean_anomaly = el.mean_anomaly_rad + self._mean_dot * dt
        raan = el.raan_rad + self._raan_dot * dt
        argp = el.arg_perigee_rad + self._argp_dot * dt

        ecc_anom = solve_kepler(mean_anomaly, el.eccentricity)
        nu = true_anomaly_from_eccentric(ecc_anom, el.eccentricity)

        a = el.semi_major_axis_km
        e = el.eccentricity
        r = a * (1.0 - e * math.cos(ecc_anom))
        # Perifocal position and velocity.
        p_semi_latus = a * (1.0 - e * e)
        pos_pf = np.array([r * math.cos(nu), r * math.sin(nu), 0.0])
        v_factor = math.sqrt(EARTH_MU_KM3_S2 / p_semi_latus)
        vel_pf = np.array(
            [-v_factor * math.sin(nu), v_factor * (e + math.cos(nu)), 0.0]
        )
        rot = _perifocal_to_eci_matrix(el.inclination_rad, raan, argp)
        return rot @ pos_pf, rot @ vel_pf

    def position_at(self, time_s: float) -> np.ndarray:
        """ECI position vector (km) at simulation time ``time_s``."""
        position, _ = self.state_at(time_s)
        return position

    def states_at(self, times_s) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ECI states for an array of times.

        One broadcast pass computes every timestep at once: the mean
        anomalies become one array Newton-Raphson solve, the perifocal
        coordinates one trig pass, and the frame rotation one matrix
        product (a single shared matrix when J2 is off, per-time matrices
        when the node and perigee drift).

        Args:
            times_s: Scalar or 1-D array of simulation times.  Scalars
                are normalized to a length-1 array, so the output shape
                contract below always holds.

        Returns:
            ``(positions, velocities)`` arrays, each of shape ``(T, 3)``
            where ``T = len(times_s)`` (``T = 1`` for scalar input,
            ``T = 0`` for empty input), in km and km/s.
        """
        times = _normalize_times(times_s)
        el = self.elements
        dt = times - el.epoch_s
        mean_anomaly = el.mean_anomaly_rad + self._mean_dot * dt

        ecc_anom = solve_kepler_array(mean_anomaly, el.eccentricity)
        nu = true_anomaly_from_eccentric_array(ecc_anom, el.eccentricity)

        a = el.semi_major_axis_km
        e = el.eccentricity
        r = a * (1.0 - e * np.cos(ecc_anom))
        p_semi_latus = a * (1.0 - e * e)
        cos_nu, sin_nu = np.cos(nu), np.sin(nu)
        pos_pf = np.stack(
            [r * cos_nu, r * sin_nu, np.zeros_like(r)], axis=-1
        )
        v_factor = math.sqrt(EARTH_MU_KM3_S2 / p_semi_latus)
        vel_pf = np.stack(
            [-v_factor * sin_nu, v_factor * (e + cos_nu),
             np.zeros_like(sin_nu)], axis=-1
        )
        if self._raan_dot == 0.0 and self._argp_dot == 0.0:
            # Without J2 the orbital plane is inertially fixed: one
            # rotation matrix serves every timestep.  The transpose is
            # materialized contiguously because matmul dispatches a
            # different (last-ulp-different) kernel for strided views
            # depending on T — the contiguous product is shape-
            # independent, which keeps primed epoch grids bitwise equal
            # to per-epoch solves.
            rot = _perifocal_to_eci_matrix(
                el.inclination_rad, el.raan_rad, el.arg_perigee_rad
            )
            rot_t = np.ascontiguousarray(rot.T)
            return pos_pf @ rot_t, vel_pf @ rot_t
        raan = el.raan_rad + self._raan_dot * dt
        argp = el.arg_perigee_rad + self._argp_dot * dt
        rot = _perifocal_to_eci_matrices(el.inclination_rad, raan, argp)
        positions = np.einsum("tij,tj->ti", rot, pos_pf)
        velocities = np.einsum("tij,tj->ti", rot, vel_pf)
        return positions, velocities

    def positions_at(self, times_s) -> np.ndarray:
        """ECI positions for an array of times; always shape ``(T, 3)``.

        Input is normalized before propagation: a scalar time becomes a
        length-1 array (result shape ``(1, 3)``), an empty array yields
        ``(0, 3)``, and anything with more than one dimension is
        rejected.  The computation is fully vectorized — see
        :meth:`states_at`.
        """
        positions, _ = self.states_at(times_s)
        return positions

    @property
    def period_s(self) -> float:
        """Orbital period (two-body) in seconds."""
        return self.elements.period_s


def _normalize_times(times_s) -> np.ndarray:
    """Coerce a scalar/sequence of times to a 1-D float array.

    Raises:
        ValueError: When the input has more than one dimension.
    """
    times = np.asarray(times_s, dtype=float)
    if times.ndim == 0:
        times = times.reshape(1)
    if times.ndim != 1:
        raise ValueError(
            f"times must be scalar or 1-D, got shape {times.shape}"
        )
    return times


def batch_states(propagators: Sequence[KeplerPropagator],
                 times_s) -> Tuple[np.ndarray, np.ndarray]:
    """ECI states for a whole fleet over a whole time grid at once.

    The heart of the vectorized sweep path: all satellites x all
    timesteps in broadcast numpy operations.  Non-J2 fleets (the default
    everywhere in the repo) take a fully flattened ``(N, T)`` tensor
    solve — one Kepler iteration, one trig pass, and one batched frame
    rotation for the whole fleet, with no per-satellite Python loop.
    J2-perturbed propagators fall back to the per-satellite vectorized
    path.

    The flat path is bitwise identical to per-satellite
    :meth:`KeplerPropagator.states_at` calls: every elementwise
    operation is shape-independent, the frame rotation is the same
    stacked ``matmul``, and satellites are grouped by eccentricity so
    the Newton solve sees the same per-element update sequence
    (``tests/orbits`` pins this equality as a regression test).

    Args:
        propagators: One propagator per satellite (N of them).
        times_s: Scalar or 1-D array of T simulation times.

    Returns:
        ``(positions, velocities)`` arrays of shape ``(N, T, 3)`` in km
        and km/s.  ``N = 0`` or ``T = 0`` yield empty arrays of the
        documented shape.
    """
    times = _normalize_times(times_s)
    count = len(propagators)
    if count and times.shape[0] and all(
        p._raan_dot == 0.0 and p._argp_dot == 0.0 for p in propagators
    ):
        return _batch_states_flat(propagators, times)
    positions = np.empty((count, times.shape[0], 3), dtype=float)
    velocities = np.empty((count, times.shape[0], 3), dtype=float)
    for index, propagator in enumerate(propagators):
        pos, vel = propagator.states_at(times)
        positions[index] = pos
        velocities[index] = vel
    return positions, velocities


def _batch_states_flat(propagators: Sequence[KeplerPropagator],
                       times: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``(N, T)`` tensor solve for non-J2 fleets.

    Replicates the exact operation sequence of
    :meth:`KeplerPropagator.states_at` across the whole fleet so the
    result is bitwise identical to the per-satellite loop.
    """
    elements = [p.elements for p in propagators]
    epoch = np.array([el.epoch_s for el in elements])
    m0 = np.array([el.mean_anomaly_rad for el in elements])
    mean_dot = np.array([p._mean_dot for p in propagators])
    ecc = np.array([el.eccentricity for el in elements])
    a = np.array([el.semi_major_axis_km for el in elements])

    dt = times[None, :] - epoch[:, None]
    mean_anomaly = m0[:, None] + mean_dot[:, None] * dt

    # Group by eccentricity (one group for the common all-circular
    # Walker case) so each group runs the same masked Newton iteration
    # the per-satellite solver applies.
    ecc_anom = np.empty_like(mean_anomaly)
    nu = np.empty_like(mean_anomaly)
    for e_value in np.unique(ecc):
        rows = ecc == e_value
        e_float = float(e_value)
        ecc_anom[rows] = solve_kepler_array(mean_anomaly[rows], e_float)
        nu[rows] = true_anomaly_from_eccentric_array(ecc_anom[rows], e_float)

    r = a[:, None] * (1.0 - ecc[:, None] * np.cos(ecc_anom))
    cos_nu, sin_nu = np.cos(nu), np.sin(nu)
    zeros = np.zeros_like(r)
    pos_pf = np.stack([r * cos_nu, r * sin_nu, zeros], axis=-1)
    # v_factor per satellite with the scalar path's exact float ops.
    v_factor = np.array([
        math.sqrt(
            EARTH_MU_KM3_S2
            / (el.semi_major_axis_km * (1.0 - el.eccentricity * el.eccentricity))
        )
        for el in elements
    ])[:, None]
    vel_pf = np.stack(
        [-v_factor * sin_nu, v_factor * (ecc[:, None] + cos_nu), zeros],
        axis=-1,
    )
    rots = np.stack([
        _perifocal_to_eci_matrix(
            el.inclination_rad, el.raan_rad, el.arg_perigee_rad
        )
        for el in elements
    ])
    # Contiguous transpose: matmul over a strided view picks a different
    # kernel (and rounds the last ulp differently) depending on T; the
    # contiguous product is shape-independent, so a whole primed grid is
    # bitwise equal to T separate single-epoch solves.
    rots_t = np.ascontiguousarray(rots.transpose(0, 2, 1))
    return np.matmul(pos_pf, rots_t), np.matmul(vel_pf, rots_t)


def batch_positions(propagators: Sequence[KeplerPropagator],
                    times_s) -> np.ndarray:
    """ECI positions for a fleet over a time grid; shape ``(N, T, 3)``."""
    positions, _ = batch_states(propagators, times_s)
    return positions
