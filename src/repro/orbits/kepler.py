"""Keplerian orbit propagation with optional J2 secular perturbations.

The propagator turns :class:`~repro.orbits.elements.OrbitalElements` into
Earth-Centred Inertial (ECI) position and velocity vectors at an arbitrary
simulation time.  For the near-circular LEO orbits the paper studies, the
dominant perturbation is the Earth's oblateness (J2), which causes secular
drift of the ascending node and the argument of perigee; both are modelled.

The module deliberately avoids any external ephemeris dependencies so the
whole stack is self-contained, per the reproduction's substitution rule
(synthetic orbital data in place of the radar-tracked catalogs the paper
cites).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.orbits.constants import EARTH_J2, EARTH_MU_KM3_S2, EARTH_RADIUS_KM
from repro.orbits.elements import OrbitalElements

_TWO_PI = 2.0 * math.pi


def mean_motion(semi_major_axis_km: float) -> float:
    """Mean motion ``n = sqrt(mu/a^3)`` in rad/s for the given ``a``."""
    if semi_major_axis_km <= 0.0:
        raise ValueError(f"semi-major axis must be positive, got {semi_major_axis_km}")
    return math.sqrt(EARTH_MU_KM3_S2 / semi_major_axis_km**3)


def orbital_period(semi_major_axis_km: float) -> float:
    """Orbital period in seconds for the given semi-major axis."""
    return _TWO_PI / mean_motion(semi_major_axis_km)


def solve_kepler(mean_anomaly_rad: float, eccentricity: float, tol: float = 1e-12,
                 max_iterations: int = 50) -> float:
    """Solve Kepler's equation ``M = E - e sin E`` for eccentric anomaly E.

    Uses Newton-Raphson with a starting guess of ``M`` (adequate for the
    small eccentricities of LEO orbits, but the iteration converges for any
    ``e < 1``).

    Args:
        mean_anomaly_rad: Mean anomaly ``M`` in radians.
        eccentricity: Orbit eccentricity ``e`` in [0, 1).
        tol: Convergence tolerance on ``|E_{k+1} - E_k|``.
        max_iterations: Safety bound on Newton iterations.

    Returns:
        Eccentric anomaly ``E`` in radians, in the same revolution as ``M``.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")
    m = mean_anomaly_rad % _TWO_PI
    # High-eccentricity orbits converge faster from E0 = pi.
    e_anom = m if eccentricity < 0.8 else math.pi
    for _ in range(max_iterations):
        delta = (e_anom - eccentricity * math.sin(e_anom) - m) / (
            1.0 - eccentricity * math.cos(e_anom)
        )
        e_anom -= delta
        if abs(delta) < tol:
            break
    return e_anom


def true_anomaly_from_eccentric(eccentric_anomaly_rad: float,
                                eccentricity: float) -> float:
    """Convert eccentric anomaly to true anomaly."""
    half_e = eccentric_anomaly_rad / 2.0
    return 2.0 * math.atan2(
        math.sqrt(1.0 + eccentricity) * math.sin(half_e),
        math.sqrt(1.0 - eccentricity) * math.cos(half_e),
    )


def _perifocal_to_eci_matrix(inclination_rad: float, raan_rad: float,
                             arg_perigee_rad: float) -> np.ndarray:
    """Rotation matrix from the perifocal frame to ECI (3-1-3 Euler)."""
    cos_o, sin_o = math.cos(raan_rad), math.sin(raan_rad)
    cos_i, sin_i = math.cos(inclination_rad), math.sin(inclination_rad)
    cos_w, sin_w = math.cos(arg_perigee_rad), math.sin(arg_perigee_rad)
    return np.array(
        [
            [
                cos_o * cos_w - sin_o * sin_w * cos_i,
                -cos_o * sin_w - sin_o * cos_w * cos_i,
                sin_o * sin_i,
            ],
            [
                sin_o * cos_w + cos_o * sin_w * cos_i,
                -sin_o * sin_w + cos_o * cos_w * cos_i,
                -cos_o * sin_i,
            ],
            [sin_w * sin_i, cos_w * sin_i, cos_i],
        ]
    )


class KeplerPropagator:
    """Propagates one set of orbital elements to ECI state vectors.

    Args:
        elements: Orbital elements at their epoch.
        include_j2: When True, apply secular J2 drift to the RAAN, argument
            of perigee, and mean anomaly.  The short-period oscillations are
            not modelled; they are negligible at the fidelity of the paper's
            simulation (propagation latency and footprint coverage).
    """

    def __init__(self, elements: OrbitalElements, include_j2: bool = False):
        self.elements = elements
        self.include_j2 = include_j2
        self._n = elements.mean_motion_rad_s
        if include_j2:
            a = elements.semi_major_axis_km
            e = elements.eccentricity
            i = elements.inclination_rad
            p = a * (1.0 - e * e)
            factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p) ** 2 * self._n
            self._raan_dot = -factor * math.cos(i)
            self._argp_dot = factor * (2.0 - 2.5 * math.sin(i) ** 2)
            self._mean_dot = self._n + factor * math.sqrt(1.0 - e * e) * (
                1.0 - 1.5 * math.sin(i) ** 2
            )
        else:
            self._raan_dot = 0.0
            self._argp_dot = 0.0
            self._mean_dot = self._n

    def state_at(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """ECI position (km) and velocity (km/s) at simulation time ``time_s``."""
        el = self.elements
        dt = time_s - el.epoch_s
        mean_anomaly = el.mean_anomaly_rad + self._mean_dot * dt
        raan = el.raan_rad + self._raan_dot * dt
        argp = el.arg_perigee_rad + self._argp_dot * dt

        ecc_anom = solve_kepler(mean_anomaly, el.eccentricity)
        nu = true_anomaly_from_eccentric(ecc_anom, el.eccentricity)

        a = el.semi_major_axis_km
        e = el.eccentricity
        r = a * (1.0 - e * math.cos(ecc_anom))
        # Perifocal position and velocity.
        p_semi_latus = a * (1.0 - e * e)
        pos_pf = np.array([r * math.cos(nu), r * math.sin(nu), 0.0])
        v_factor = math.sqrt(EARTH_MU_KM3_S2 / p_semi_latus)
        vel_pf = np.array(
            [-v_factor * math.sin(nu), v_factor * (e + math.cos(nu)), 0.0]
        )
        rot = _perifocal_to_eci_matrix(el.inclination_rad, raan, argp)
        return rot @ pos_pf, rot @ vel_pf

    def position_at(self, time_s: float) -> np.ndarray:
        """ECI position vector (km) at simulation time ``time_s``."""
        position, _ = self.state_at(time_s)
        return position

    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        """ECI positions for an array of times; shape ``(len(times), 3)``."""
        return np.array([self.position_at(float(t)) for t in np.asarray(times_s)])

    @property
    def period_s(self) -> float:
        """Orbital period (two-body) in seconds."""
        return self.elements.period_s
