"""Contact-window prediction.

Because every OpenSpace participant can see the public orbital catalog, the
set of overhead satellites at any ground location — and the times at which
they will be available — is "entirely predictable".  This module computes
those prediction tables: time windows during which a satellite is visible
from a ground point (or two satellites have line of sight), which feed the
proactive routing and predictive handover machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci, ecef_to_eci_over
from repro.orbits.kepler import KeplerPropagator, batch_positions
from repro.orbits.visibility import (
    elevation_angle,
    elevation_angles,
    line_of_sight_mask,
)
import math


@dataclass(frozen=True)
class ContactWindow:
    """One visibility interval between a ground point and a satellite.

    Attributes:
        satellite_index: Index of the satellite in the fleet being scanned.
        start_s: Window start, simulation seconds (rise time).
        end_s: Window end, simulation seconds (set time).
        max_elevation_rad: Peak elevation reached during the window.
    """

    satellite_index: int
    start_s: float
    end_s: float
    max_elevation_rad: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """True when ``time_s`` falls within this window."""
        return self.start_s <= time_s <= self.end_s


def contact_windows(ground: GeodeticPoint,
                    propagators: List[KeplerPropagator],
                    start_s: float, end_s: float, step_s: float = 10.0,
                    min_elevation_deg: float = 10.0) -> List[ContactWindow]:
    """Scan for visibility windows between a ground point and a fleet.

    A straightforward fixed-step scan: adequate because LEO passes last
    minutes while the default step is ten seconds.  Window edges are refined
    by bisection to sub-second accuracy.

    Args:
        ground: Ground observer.
        propagators: One propagator per satellite.
        start_s: Scan start time.
        end_s: Scan end time.
        step_s: Coarse scan step.
        min_elevation_deg: Elevation mask.

    Returns:
        Windows sorted by start time (then satellite index).
    """
    if end_s <= start_s:
        raise ValueError(f"end {end_s} must be after start {start_s}")
    if step_s <= 0.0:
        raise ValueError(f"step must be positive, got {step_s}")
    mask_rad = math.radians(min_elevation_deg)
    ground_ecef = ground.ecef()
    windows: List[ContactWindow] = []

    def elevation(sat: KeplerPropagator, t: float) -> float:
        # Compare in the inertial frame: rotate the ground point to ECI.
        ground_eci = ecef_to_eci(ground_ecef, t)
        return elevation_angle(ground_eci, sat.position_at(t))

    def refine(sat: KeplerPropagator, lo: float, hi: float,
               rising: bool) -> float:
        # Bisect for the elevation-mask crossing between lo and hi.
        for _ in range(24):
            mid = (lo + hi) / 2.0
            above = elevation(sat, mid) >= mask_rad
            if above == rising:
                hi = mid
            else:
                lo = mid
        return (lo + hi) / 2.0

    times = np.arange(start_s, end_s + step_s, step_s)
    # The coarse scan is batched: one ground-track rotation for all
    # sample times, then per satellite one vectorized propagation and one
    # elevation pass.  Only the sub-second edge refinement stays scalar.
    ground_eci_all = ecef_to_eci_over(ground_ecef, times)
    for index, sat in enumerate(propagators):
        elevations = elevation_angles(ground_eci_all, sat.positions_at(times))
        above_prev = bool(elevations[0] >= mask_rad)
        window_start: Optional[float] = float(times[0]) if above_prev else None
        max_elev = float(elevations[0]) if above_prev else -math.pi
        for k, (t_prev, t) in enumerate(zip(times[:-1], times[1:]), start=1):
            elev = float(elevations[k])
            above = elev >= mask_rad
            if above and not above_prev:
                window_start = refine(sat, float(t_prev), float(t), rising=True)
                max_elev = elev
            elif above:
                max_elev = max(max_elev, elev)
            elif above_prev and window_start is not None:
                window_end = refine(sat, float(t_prev), float(t), rising=False)
                windows.append(
                    ContactWindow(index, window_start, window_end, max_elev)
                )
                window_start = None
            above_prev = above
        if window_start is not None:
            windows.append(
                ContactWindow(index, window_start, float(times[-1]), max_elev)
            )
    windows.sort(key=lambda w: (w.start_s, w.satellite_index))
    return windows


def isl_feasibility_schedule(propagators: List[KeplerPropagator],
                             start_s: float, end_s: float,
                             step_s: float = 30.0,
                             max_range_km: Optional[float] = None) -> dict:
    """For each satellite pair, the fraction of time an ISL is feasible.

    Feasible means line-of-sight above the atmosphere and (optionally)
    within ``max_range_km``.  Used by the topology planner to pick stable
    ISL assignments.

    Returns:
        Mapping ``(i, j) -> feasible_fraction`` for ``i < j``.
    """
    times = np.arange(start_s, end_s + step_s, step_s)
    count = len(propagators)
    feasible = {}
    # (N, T, 3) in one batched propagation, then one vectorized range +
    # line-of-sight pass per pair over the whole time grid.
    positions = batch_positions(propagators, times)
    for i in range(count):
        for j in range(i + 1, count):
            hits = line_of_sight_mask(positions[i], positions[j])
            if max_range_km is not None:
                diff = positions[i] - positions[j]
                within = np.sqrt((diff * diff).sum(axis=-1)) <= max_range_km
                hits = hits & within
            feasible[(i, j)] = float(hits.sum()) / len(times)
    return feasible
