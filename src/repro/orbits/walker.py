"""Walker constellation generators.

The paper's Figure 2 uses an Iridium-like Walker Star constellation
(66 satellites, 780 km altitude, 6 near-polar planes) and cites the CBO
reference design (72 satellites, 12 per plane in 6 planes at 80 degrees,
about 95% global coverage).  Both are provided as ready-made factories, plus
general Walker Delta/Star generators and a randomized-constellation helper
matching the paper's "randomly distributing satellites' orbital paths"
methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.orbits.constants import (
    CBO_INCLINATION_DEG,
    CBO_PLANE_COUNT,
    CBO_SATELLITE_COUNT,
    IRIDIUM_ALTITUDE_KM,
    IRIDIUM_INCLINATION_DEG,
    IRIDIUM_PLANE_COUNT,
    IRIDIUM_SATELLITE_COUNT,
)
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator, batch_positions

_TWO_PI = 2.0 * math.pi


@dataclass
class WalkerConstellation:
    """A constellation as a list of per-satellite orbital elements.

    Attributes:
        elements: One :class:`OrbitalElements` per satellite, ordered
            plane-major (all satellites of plane 0 first, then plane 1, ...).
        plane_count: Number of orbital planes.
        satellites_per_plane: Satellites in each plane.
        name: Human-readable label used in experiment output.
    """

    elements: List[OrbitalElements]
    plane_count: int
    satellites_per_plane: int
    name: str = "walker"
    _propagators: Optional[List[KeplerPropagator]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[OrbitalElements]:
        return iter(self.elements)

    def plane_of(self, satellite_index: int) -> int:
        """Plane index of the given satellite (plane-major ordering)."""
        return satellite_index // self.satellites_per_plane

    def slot_of(self, satellite_index: int) -> int:
        """In-plane slot index of the given satellite."""
        return satellite_index % self.satellites_per_plane

    def propagators(self, include_j2: bool = False) -> List[KeplerPropagator]:
        """One propagator per satellite (cached for the non-J2 case)."""
        if include_j2:
            return [KeplerPropagator(el, include_j2=True) for el in self.elements]
        if self._propagators is None:
            self._propagators = [KeplerPropagator(el) for el in self.elements]
        return self._propagators

    def positions_at(self, time_s: float, include_j2: bool = False) -> np.ndarray:
        """ECI positions of every satellite at ``time_s``; shape (N, 3)."""
        return batch_positions(self.propagators(include_j2), time_s)[:, 0, :]

    def positions_over(self, times_s,
                       include_j2: bool = False) -> np.ndarray:
        """ECI positions over a whole time grid; shape ``(N, T, 3)``.

        One :func:`~repro.orbits.kepler.batch_positions` broadcast pass —
        the fast path for sweeps that sample many epochs.
        """
        return batch_positions(self.propagators(include_j2), times_s)

    def subset(self, count: int) -> "WalkerConstellation":
        """The first ``count`` satellites, preserving plane bookkeeping."""
        if not 0 < count <= len(self.elements):
            raise ValueError(
                f"subset size {count} out of range 1..{len(self.elements)}"
            )
        return WalkerConstellation(
            elements=self.elements[:count],
            plane_count=self.plane_count,
            satellites_per_plane=self.satellites_per_plane,
            name=f"{self.name}-subset{count}",
        )


def _walker(total_satellites: int, plane_count: int, phasing: int,
            altitude_km: float, inclination_deg: float, raan_spread_rad: float,
            name: str, epoch_s: float = 0.0) -> WalkerConstellation:
    """Shared Walker generator; ``raan_spread_rad`` is pi (Star) or 2pi (Delta)."""
    if total_satellites <= 0:
        raise ValueError(f"need at least one satellite, got {total_satellites}")
    if plane_count <= 0 or total_satellites % plane_count != 0:
        raise ValueError(
            f"plane count {plane_count} must evenly divide {total_satellites}"
        )
    per_plane = total_satellites // plane_count
    if not 0 <= phasing < plane_count:
        raise ValueError(f"phasing {phasing} must be in [0, {plane_count})")
    inclination = math.radians(inclination_deg)
    elements = []
    for plane in range(plane_count):
        raan = raan_spread_rad * plane / plane_count
        for slot in range(per_plane):
            # Walker phasing: adjacent planes are offset by F * 2pi / T.
            anomaly = (
                _TWO_PI * slot / per_plane
                + _TWO_PI * phasing * plane / total_satellites
            )
            elements.append(
                OrbitalElements.circular(
                    altitude_km=altitude_km,
                    inclination_rad=inclination,
                    raan_rad=raan,
                    mean_anomaly_rad=anomaly,
                    epoch_s=epoch_s,
                )
            )
    return WalkerConstellation(
        elements=elements,
        plane_count=plane_count,
        satellites_per_plane=per_plane,
        name=name,
    )


def walker_star(total_satellites: int, plane_count: int, phasing: int = 0,
                altitude_km: float = IRIDIUM_ALTITUDE_KM,
                inclination_deg: float = IRIDIUM_INCLINATION_DEG,
                epoch_s: float = 0.0) -> WalkerConstellation:
    """A Walker Star constellation (planes spread over 180 degrees of RAAN).

    Walker Star designs, like Iridium's, spread ascending nodes over half
    the equator so ascending and descending passes interleave — the paper
    highlights them for the relative simplicity of intra- and inter-plane
    ISLs.
    """
    return _walker(
        total_satellites, plane_count, phasing, altitude_km, inclination_deg,
        raan_spread_rad=math.pi, name=f"walker-star-{total_satellites}/{plane_count}",
        epoch_s=epoch_s,
    )


def walker_delta(total_satellites: int, plane_count: int, phasing: int = 0,
                 altitude_km: float = 550.0, inclination_deg: float = 53.0,
                 epoch_s: float = 0.0) -> WalkerConstellation:
    """A Walker Delta constellation (planes spread over the full equator).

    Walker Delta is the Starlink-style layout; it is provided as the
    monolithic-megaconstellation comparator in the federation experiments.
    """
    return _walker(
        total_satellites, plane_count, phasing, altitude_km, inclination_deg,
        raan_spread_rad=_TWO_PI,
        name=f"walker-delta-{total_satellites}/{plane_count}",
        epoch_s=epoch_s,
    )


def iridium_like(epoch_s: float = 0.0) -> WalkerConstellation:
    """The paper's reference constellation: 66 sats, 780 km, 6 polar planes."""
    constellation = walker_star(
        total_satellites=IRIDIUM_SATELLITE_COUNT,
        plane_count=IRIDIUM_PLANE_COUNT,
        phasing=1,
        altitude_km=IRIDIUM_ALTITUDE_KM,
        inclination_deg=IRIDIUM_INCLINATION_DEG,
        epoch_s=epoch_s,
    )
    constellation.name = "iridium-like"
    return constellation


def cbo_reference(altitude_km: float = IRIDIUM_ALTITUDE_KM,
                  epoch_s: float = 0.0) -> WalkerConstellation:
    """The CBO 95%-coverage reference: 72 sats, 12 per plane, 6 planes, 80 deg."""
    constellation = walker_star(
        total_satellites=CBO_SATELLITE_COUNT,
        plane_count=CBO_PLANE_COUNT,
        phasing=1,
        altitude_km=altitude_km,
        inclination_deg=CBO_INCLINATION_DEG,
        epoch_s=epoch_s,
    )
    constellation.name = "cbo-reference"
    return constellation


def random_constellation(satellite_count: int, rng: np.random.Generator,
                         altitude_km: float = IRIDIUM_ALTITUDE_KM,
                         inclination_deg: Optional[float] = None,
                         epoch_s: float = 0.0) -> WalkerConstellation:
    """Satellites with randomly distributed orbital paths.

    Matches the paper's Figure 2(b)/(c) methodology: "randomly distributing
    satellites' orbital paths".  Each satellite gets a uniform random RAAN
    and mean anomaly; inclination defaults to near-polar (so coverage can
    reach high latitudes, as in the Iridium-like design) unless fixed.

    Args:
        satellite_count: Number of satellites to generate.
        rng: Seeded NumPy generator — all experiment randomness flows
            through explicit generators for reproducibility.
        altitude_km: Circular orbit altitude.
        inclination_deg: Fixed inclination, or None to draw uniformly from
            [70, 100] degrees (near-polar band).
        epoch_s: Epoch assigned to every satellite.
    """
    if satellite_count <= 0:
        raise ValueError(f"need at least one satellite, got {satellite_count}")
    elements = []
    for _ in range(satellite_count):
        incl = (
            inclination_deg
            if inclination_deg is not None
            else float(rng.uniform(70.0, 100.0))
        )
        elements.append(
            OrbitalElements.circular(
                altitude_km=altitude_km,
                inclination_rad=math.radians(incl),
                raan_rad=float(rng.uniform(0.0, _TWO_PI)),
                mean_anomaly_rad=float(rng.uniform(0.0, _TWO_PI)),
                epoch_s=epoch_s,
            )
        )
    return WalkerConstellation(
        elements=elements,
        plane_count=satellite_count,
        satellites_per_plane=1,
        name=f"random-{satellite_count}",
    )


def merge_constellations(parts: Sequence[WalkerConstellation],
                         name: str = "merged") -> WalkerConstellation:
    """Concatenate several constellations into one federated fleet.

    Plane bookkeeping degenerates to one-satellite-per-plane because the
    merged fleet generally has no common plane structure.
    """
    if not parts:
        raise ValueError("need at least one constellation to merge")
    elements: List[OrbitalElements] = []
    for part in parts:
        elements.extend(part.elements)
    return WalkerConstellation(
        elements=elements,
        plane_count=len(elements),
        satellites_per_plane=1,
        name=name,
    )
