"""Orbital mechanics substrate for OpenSpace.

This subpackage provides everything the paper's simulation study relies on:
Keplerian orbit propagation (with optional J2 secular perturbations),
coordinate transforms between inertial, Earth-fixed, and geodetic frames,
Walker Star / Delta constellation generators (the paper's Iridium-like
reference design), a TLE parser/emitter standing in for the public orbital
catalogs the paper cites (N2YO, AstriaGraph), and geometric visibility /
coverage computations.

All angles are radians and all distances are kilometres unless a name says
otherwise (``*_deg``, ``*_m``).
"""

from repro.orbits.constants import (
    EARTH_RADIUS_KM,
    EARTH_MU_KM3_S2,
    EARTH_J2,
    EARTH_ROTATION_RAD_S,
    SPEED_OF_LIGHT_KM_S,
    SIDEREAL_DAY_S,
)
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import (
    KeplerPropagator,
    mean_motion,
    orbital_period,
    solve_kepler,
)
from repro.orbits.coordinates import (
    GeodeticPoint,
    ecef_to_geodetic,
    eci_to_ecef,
    ecef_to_eci,
    geodetic_to_ecef,
    look_angles,
)
from repro.orbits.walker import (
    WalkerConstellation,
    walker_delta,
    walker_star,
    iridium_like,
    cbo_reference,
)
from repro.orbits.visibility import (
    cluster_coverage_fraction,
    coverage_fraction,
    elevation_angle,
    footprint_half_angle,
    footprint_area_km2,
    has_line_of_sight,
    is_visible,
    slant_range,
    worst_case_coverage_fraction,
)
from repro.orbits.tle import TwoLineElement, elements_from_tle, tle_from_elements
from repro.orbits.contact import ContactWindow, contact_windows
from repro.orbits.eclipse import (
    eclipse_fraction,
    eclipse_windows,
    in_eclipse,
    orbit_average_generation_w,
    sun_direction,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "EARTH_MU_KM3_S2",
    "EARTH_J2",
    "EARTH_ROTATION_RAD_S",
    "SPEED_OF_LIGHT_KM_S",
    "SIDEREAL_DAY_S",
    "OrbitalElements",
    "KeplerPropagator",
    "mean_motion",
    "orbital_period",
    "solve_kepler",
    "GeodeticPoint",
    "ecef_to_geodetic",
    "eci_to_ecef",
    "ecef_to_eci",
    "geodetic_to_ecef",
    "look_angles",
    "WalkerConstellation",
    "walker_delta",
    "walker_star",
    "iridium_like",
    "cbo_reference",
    "cluster_coverage_fraction",
    "coverage_fraction",
    "elevation_angle",
    "footprint_half_angle",
    "footprint_area_km2",
    "has_line_of_sight",
    "is_visible",
    "slant_range",
    "worst_case_coverage_fraction",
    "TwoLineElement",
    "elements_from_tle",
    "tle_from_elements",
    "ContactWindow",
    "contact_windows",
    "eclipse_fraction",
    "eclipse_windows",
    "in_eclipse",
    "orbit_average_generation_w",
    "sun_direction",
]
