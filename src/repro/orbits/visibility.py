"""Visibility, footprints, and coverage geometry.

Implements the geometric primitives behind the paper's Figure 2:

* line-of-sight between two satellites (Earth-grazing test, used to decide
  which ISLs are feasible);
* satellite-to-ground visibility with an elevation mask;
* nadir footprints as spherical caps, and the paper's *worst-case* coverage
  rule: "if there is any overlap between a pair of satellite ranges, their
  effective coverage will be reduced to that of a single satellite".
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.orbits.constants import EARTH_RADIUS_KM, EARTH_SURFACE_AREA_KM2


def slant_range(pos_a_km: np.ndarray, pos_b_km: np.ndarray) -> float:
    """Euclidean distance between two position vectors, km."""
    return float(np.linalg.norm(np.asarray(pos_a_km) - np.asarray(pos_b_km)))


def pairwise_slant_ranges(positions_km: np.ndarray) -> np.ndarray:
    """All pairwise distances for ``(N, 3)`` positions; shape ``(N, N)``.

    One broadcast pass replacing the O(N^2) scalar :func:`slant_range`
    loop in topology construction and relay-graph building.
    """
    pos = np.atleast_2d(np.asarray(positions_km, dtype=float))
    diff = pos[:, None, :] - pos[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def line_of_sight_mask(pos_a_km: np.ndarray, pos_b_km: np.ndarray,
                       grazing_altitude_km: float = 80.0) -> np.ndarray:
    """Vectorized :func:`has_line_of_sight` over paired position rows.

    Args:
        pos_a_km: ``(..., 3)`` segment start positions.
        pos_b_km: ``(..., 3)`` segment end positions (broadcastable
            against ``pos_a_km``).
        grazing_altitude_km: Minimum ray altitude.

    Returns:
        Boolean array of the broadcast shape (without the last axis):
        True where the segment clears the atmosphere.
    """
    a = np.asarray(pos_a_km, dtype=float)
    b = np.asarray(pos_b_km, dtype=float)
    a, b = np.broadcast_arrays(a, b)
    limit = EARTH_RADIUS_KM + grazing_altitude_km
    d = b - a
    dd = (d * d).sum(axis=-1)
    # Closest point of each segment to the Earth's centre; degenerate
    # (zero-length) segments test the endpoint itself.
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(dd > 0.0, -(a * d).sum(axis=-1) / np.where(dd > 0.0, dd, 1.0), 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = a + t[..., None] * d
    return np.sqrt((closest * closest).sum(axis=-1)) >= limit


def pairwise_line_of_sight(positions_km: np.ndarray,
                           grazing_altitude_km: float = 80.0) -> np.ndarray:
    """Line-of-sight matrix for ``(N, 3)`` positions; shape ``(N, N)``."""
    pos = np.atleast_2d(np.asarray(positions_km, dtype=float))
    return line_of_sight_mask(pos[:, None, :], pos[None, :, :],
                              grazing_altitude_km)


def elevation_angles(ground_ecef_km: np.ndarray,
                     satellite_ecef_km: np.ndarray) -> np.ndarray:
    """Vectorized :func:`elevation_angle`, radians.

    Supports one ground point against ``(N, 3)`` satellites (returns
    ``(N,)``) and paired ``(T, 3)`` vs ``(T, 3)`` rows (returns ``(T,)``)
    — any broadcastable combination of ``(..., 3)`` shapes works.
    Degenerate zero ranges report zenith, matching the scalar function.
    """
    ground = np.asarray(ground_ecef_km, dtype=float)
    sats = np.asarray(satellite_ecef_km, dtype=float)
    ground, sats = np.broadcast_arrays(ground, sats)
    delta = sats - ground
    range_km = np.sqrt((delta * delta).sum(axis=-1))
    ground_norm = np.sqrt((ground * ground).sum(axis=-1))
    denom = range_km * ground_norm
    safe = denom > 0.0
    sin_el = np.where(
        safe, (delta * ground).sum(axis=-1) / np.where(safe, denom, 1.0), 1.0
    )
    return np.arcsin(np.clip(sin_el, -1.0, 1.0))


def has_line_of_sight(pos_a_km: np.ndarray, pos_b_km: np.ndarray,
                      grazing_altitude_km: float = 80.0) -> bool:
    """True when the segment between two satellites clears the atmosphere.

    The segment must not dip below ``EARTH_RADIUS_KM + grazing_altitude_km``;
    the default keeps ISLs above the bulk of the atmosphere, the usual
    criterion in LEO ISL studies.
    """
    a = np.asarray(pos_a_km, dtype=float)
    b = np.asarray(pos_b_km, dtype=float)
    limit = EARTH_RADIUS_KM + grazing_altitude_km
    d = b - a
    dd = float(d @ d)
    if dd == 0.0:
        return float(np.linalg.norm(a)) >= limit
    # Closest point of the segment to the Earth's centre.
    t = max(0.0, min(1.0, float(-(a @ d)) / dd))
    closest = a + t * d
    return float(np.linalg.norm(closest)) >= limit


def elevation_angle(ground_ecef_km: np.ndarray,
                    satellite_ecef_km: np.ndarray) -> float:
    """Elevation of a satellite above a ground point's local horizon, radians.

    Treats the local vertical as the geocentric radial direction, which is
    exact for the spherical-Earth model used in the coverage study.
    """
    ground = np.asarray(ground_ecef_km, dtype=float)
    delta = np.asarray(satellite_ecef_km, dtype=float) - ground
    range_km = float(np.linalg.norm(delta))
    ground_norm = float(np.linalg.norm(ground))
    if range_km == 0.0 or ground_norm == 0.0:
        return math.pi / 2.0
    sin_el = float(delta @ ground) / (range_km * ground_norm)
    return math.asin(max(-1.0, min(1.0, sin_el)))


def is_visible(ground_ecef_km: np.ndarray, satellite_ecef_km: np.ndarray,
               min_elevation_deg: float = 10.0) -> bool:
    """True when the satellite is above the ground point's elevation mask."""
    return elevation_angle(ground_ecef_km, satellite_ecef_km) >= math.radians(
        min_elevation_deg
    )


def footprint_half_angle(altitude_km: float,
                         min_elevation_deg: float = 0.0) -> float:
    """Earth-central half-angle of a satellite's coverage cap, radians.

    For a satellite at altitude ``h`` serving users above elevation ``e``,
    the cap half-angle is ``lambda = acos(R cos e / (R + h)) - e``.

    Args:
        altitude_km: Satellite altitude above the mean radius.
        min_elevation_deg: User elevation mask; 0 gives the horizon-limited
            footprint the paper's worst-case coverage estimate implies.
    """
    if altitude_km <= 0.0:
        raise ValueError(f"altitude must be positive, got {altitude_km}")
    elev = math.radians(min_elevation_deg)
    ratio = EARTH_RADIUS_KM * math.cos(elev) / (EARTH_RADIUS_KM + altitude_km)
    return math.acos(max(-1.0, min(1.0, ratio))) - elev


def footprint_area_km2(altitude_km: float,
                       min_elevation_deg: float = 0.0) -> float:
    """Area of a satellite's spherical-cap footprint, km^2."""
    half_angle = footprint_half_angle(altitude_km, min_elevation_deg)
    return (
        2.0 * math.pi * EARTH_RADIUS_KM**2 * (1.0 - math.cos(half_angle))
    )


def _central_angles(positions_eci_km: np.ndarray) -> np.ndarray:
    """Pairwise Earth-central angles between subsatellite points, radians."""
    pos = np.asarray(positions_eci_km, dtype=float)
    unit = pos / np.linalg.norm(pos, axis=1, keepdims=True)
    cosines = np.clip(unit @ unit.T, -1.0, 1.0)
    return np.arccos(cosines)


def worst_case_coverage_fraction(positions_eci_km: np.ndarray,
                                 altitude_km: float,
                                 min_elevation_deg: float = 0.0) -> float:
    """Coverage under the paper's worst-case overlap rule.

    "We assume that if there is any overlap between a pair of satellite
    ranges, their effective coverage will be reduced to that of a single
    satellite — that is, we take the worst case where two satellites have
    completely overlapping ground coverage."

    Implemented as a greedy pairwise reduction: walk the satellites in
    order; whenever a satellite's footprint overlaps one already counted,
    the pair contributes a single footprint (the new satellite is dropped).
    The counted satellites have pairwise-disjoint footprints, so summing
    their cap areas never double-counts ground area.  The result is capped
    at 1.0.

    (A stricter transitive reading — collapsing whole overlap *clusters* to
    one footprint — is available as :func:`cluster_coverage_fraction`; it
    cannot reach full coverage and is provided for sensitivity analysis.)

    Args:
        positions_eci_km: ``(N, 3)`` satellite position vectors.
        altitude_km: Common constellation altitude (footprint size).
        min_elevation_deg: User elevation mask for the footprint.

    Returns:
        Fraction of the Earth's surface covered, in [0, 1].
    """
    pos = np.atleast_2d(np.asarray(positions_eci_km, dtype=float))
    count = pos.shape[0]
    if count == 0:
        return 0.0
    half_angle = footprint_half_angle(altitude_km, min_elevation_deg)
    angles = _central_angles(pos)
    overlap_limit = 2.0 * half_angle
    kept: list = []
    for i in range(count):
        if all(angles[i, j] >= overlap_limit for j in kept):
            kept.append(i)
    cap_area = footprint_area_km2(altitude_km, min_elevation_deg)
    return min(1.0, len(kept) * cap_area / EARTH_SURFACE_AREA_KM2)


def cluster_coverage_fraction(positions_eci_km: np.ndarray,
                              altitude_km: float,
                              min_elevation_deg: float = 0.0) -> float:
    """Strictest transitive reading of the worst-case rule.

    Groups satellites into overlap clusters (connected components of the
    pairwise-overlap graph); each cluster contributes the footprint of a
    single satellite.  This lower-bounds every other estimator.
    """
    pos = np.atleast_2d(np.asarray(positions_eci_km, dtype=float))
    count = pos.shape[0]
    if count == 0:
        return 0.0
    half_angle = footprint_half_angle(altitude_km, min_elevation_deg)
    angles = _central_angles(pos)
    overlap = angles < (2.0 * half_angle)
    parent = list(range(count))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(count):
        for j in range(i + 1, count):
            if overlap[i, j]:
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    parent[root_j] = root_i
    cluster_count = len({find(i) for i in range(count)})
    cap_area = footprint_area_km2(altitude_km, min_elevation_deg)
    return min(1.0, cluster_count * cap_area / EARTH_SURFACE_AREA_KM2)


def coverage_fraction(positions_eci_km: np.ndarray, altitude_km: float,
                      min_elevation_deg: float = 0.0,
                      grid_points: Optional[np.ndarray] = None,
                      grid_resolution: int = 24) -> float:
    """Monte-Carlo/grid estimate of the true footprint-union coverage.

    Provided as the realistic comparator to the paper's worst-case rule.
    Samples points on an equal-area-ish latitude/longitude grid (weighted by
    ``cos(latitude)``) and reports the covered weight fraction.

    Args:
        positions_eci_km: ``(N, 3)`` satellite position vectors.
        altitude_km: Common constellation altitude.
        min_elevation_deg: User elevation mask.
        grid_points: Optional precomputed ``(M, 3)`` unit vectors to test.
        grid_resolution: Latitude bands when building the default grid.

    Returns:
        Fraction of the Earth's surface covered, in [0, 1].
    """
    pos = np.atleast_2d(np.asarray(positions_eci_km, dtype=float))
    if pos.shape[0] == 0:
        return 0.0
    if grid_points is None:
        grid_points, weights = surface_grid(grid_resolution)
    else:
        grid_points = np.asarray(grid_points, dtype=float)
        weights = np.full(grid_points.shape[0], 1.0 / grid_points.shape[0])
    half_angle = footprint_half_angle(altitude_km, min_elevation_deg)
    sat_unit = pos / np.linalg.norm(pos, axis=1, keepdims=True)
    cos_limit = math.cos(half_angle)
    # A grid point is covered when some satellite's subsatellite direction
    # is within the cap half-angle.
    cosines = grid_points @ sat_unit.T
    covered = (cosines >= cos_limit).any(axis=1)
    return float(weights[covered].sum())


def surface_grid(resolution: int = 24):
    """Latitude/longitude sample grid with cos-latitude area weights.

    Returns:
        ``(points, weights)`` where ``points`` is an ``(M, 3)`` array of unit
        vectors and ``weights`` sums to 1.
    """
    if resolution < 2:
        raise ValueError(f"grid resolution must be >= 2, got {resolution}")
    lats = np.linspace(-math.pi / 2.0, math.pi / 2.0, resolution)
    points = []
    weights = []
    for lat in lats:
        band = max(4, int(round(2 * resolution * math.cos(lat))))
        lons = np.linspace(0.0, 2.0 * math.pi, band, endpoint=False)
        for lon in lons:
            points.append(
                [
                    math.cos(lat) * math.cos(lon),
                    math.cos(lat) * math.sin(lon),
                    math.sin(lat),
                ]
            )
            weights.append(math.cos(lat) / band if math.cos(lat) > 0 else 1e-9)
    points_arr = np.array(points)
    weights_arr = np.array(weights)
    weights_arr /= weights_arr.sum()
    return points_arr, weights_arr


def visible_satellites(ground_ecef_km: np.ndarray,
                       satellite_positions_ecef_km: Sequence[np.ndarray],
                       min_elevation_deg: float = 10.0) -> list:
    """Indices of satellites visible from a ground point, nearest first."""
    ground = np.asarray(ground_ecef_km, dtype=float)
    hits = []
    for index, sat in enumerate(satellite_positions_ecef_km):
        sat = np.asarray(sat, dtype=float)
        if is_visible(ground, sat, min_elevation_deg):
            hits.append((slant_range(ground, sat), index))
    hits.sort()
    return [index for _, index in hits]
