"""Route-stability (churn) analysis over the moving topology.

The paper's overview calls out "routing in a rapidly changing network
topology" as a core interoperability problem: precomputed static routes
are only as good as the epoch they were computed for.  This module
quantifies the churn — between consecutive topology snapshots, what
fraction of (source, target) routes changed path, and by how much their
latency moved — which directly sets how often the proactive tables from
:mod:`repro.routing.proactive` must be refreshed and how much handover
signalling the fleet generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.routing.metrics import (
    EdgeCostModel,
    PROPAGATION_ONLY,
    path_metrics,
)


@dataclass(frozen=True)
class EpochChurn:
    """Route churn between one pair of consecutive snapshots.

    Attributes:
        from_time_s / to_time_s: The epoch boundary.
        pairs_evaluated: (source, target) pairs routed in both epochs.
        pairs_changed: Pairs whose node path differs.
        pairs_lost: Pairs routed in the first epoch but unroutable in the
            second (topology broke the connection entirely).
        mean_latency_delta_ms: Mean absolute latency change across pairs
            routed in both epochs.
    """

    from_time_s: float
    to_time_s: float
    pairs_evaluated: int
    pairs_changed: int
    pairs_lost: int
    mean_latency_delta_ms: float

    @property
    def churn_fraction(self) -> float:
        """Fraction of surviving routes whose path changed."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_changed / self.pairs_evaluated


@dataclass
class StabilityReport:
    """Churn across a whole snapshot series.

    Attributes:
        epochs: Per-boundary churn records.
        epoch_length_s: Spacing between snapshots.
    """

    epochs: List[EpochChurn] = field(default_factory=list)
    epoch_length_s: float = 0.0

    @property
    def mean_churn(self) -> float:
        if not self.epochs:
            return 0.0
        return sum(e.churn_fraction for e in self.epochs) / len(self.epochs)

    @property
    def worst_churn(self) -> float:
        if not self.epochs:
            return 0.0
        return max(e.churn_fraction for e in self.epochs)

    def refresh_budget_per_orbit(self, orbit_period_s: float = 6027.0) -> float:
        """Route recomputations per orbit implied by the epoch length."""
        if self.epoch_length_s <= 0.0:
            return 0.0
        return orbit_period_s / self.epoch_length_s


def _route(graph: nx.Graph, source: str, target: str,
           model: EdgeCostModel) -> Optional[List[str]]:
    try:
        return nx.dijkstra_path(graph, source, target,
                                weight=model.weight_fn())
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def route_churn(snapshots: Sequence,
                pairs: Sequence[Tuple[str, str]],
                cost_model: Optional[EdgeCostModel] = None) -> StabilityReport:
    """Measure route churn for selected pairs across a snapshot series.

    Args:
        snapshots: Time-ordered objects with ``time_s`` and ``graph``.
        pairs: (source, target) node pairs to track.
        cost_model: Routing cost model (propagation-only by default, the
            same metric the proactive tables use).

    Returns:
        A :class:`StabilityReport` with one churn record per boundary.
    """
    if len(snapshots) < 2:
        raise ValueError("need at least two snapshots to measure churn")
    if not pairs:
        raise ValueError("need at least one (source, target) pair")
    model = cost_model or PROPAGATION_ONLY
    report = StabilityReport(
        epoch_length_s=snapshots[1].time_s - snapshots[0].time_s
    )
    previous_routes: Dict[Tuple[str, str], Optional[List[str]]] = {
        pair: _route(snapshots[0].graph, *pair, model) for pair in pairs
    }
    previous_snap = snapshots[0]
    for snap in snapshots[1:]:
        evaluated = 0
        changed = 0
        lost = 0
        latency_deltas: List[float] = []
        current_routes: Dict[Tuple[str, str], Optional[List[str]]] = {}
        for pair in pairs:
            new_path = _route(snap.graph, *pair, model)
            current_routes[pair] = new_path
            old_path = previous_routes[pair]
            if old_path is None:
                continue
            if new_path is None:
                lost += 1
                continue
            evaluated += 1
            if new_path != old_path:
                changed += 1
            old_ms = path_metrics(previous_snap.graph, old_path).total_delay_ms
            new_ms = path_metrics(snap.graph, new_path).total_delay_ms
            latency_deltas.append(abs(new_ms - old_ms))
        report.epochs.append(EpochChurn(
            from_time_s=previous_snap.time_s,
            to_time_s=snap.time_s,
            pairs_evaluated=evaluated,
            pairs_changed=changed,
            pairs_lost=lost,
            mean_latency_delta_ms=(
                sum(latency_deltas) / len(latency_deltas)
                if latency_deltas else 0.0
            ),
        ))
        previous_routes = current_routes
        previous_snap = snap
    return report
