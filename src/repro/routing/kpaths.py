"""K-shortest-path enumeration (Yen's algorithm via networkx).

Providers use alternates both for load balancing across ISLs and for the
economics layer: comparing the tariff of the cheapest path against
latency-better alternatives is how an operator decides when a peering
agreement would pay off.
"""

from __future__ import annotations

from itertools import islice
from typing import List, Optional

import networkx as nx

from repro.routing.metrics import EdgeCostModel, PROPAGATION_ONLY


def k_shortest_paths(graph: nx.Graph, source: str, target: str, k: int,
                     cost_model: Optional[EdgeCostModel] = None) -> List[List[str]]:
    """The ``k`` cheapest loop-free paths between two nodes.

    Args:
        graph: Snapshot graph.
        source: Source node id.
        target: Target node id.
        k: Maximum number of paths to return (>= 1).
        cost_model: Edge-cost model; defaults to propagation delay.

    Returns:
        Up to ``k`` paths, cheapest first; empty list when unreachable.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if source not in graph or target not in graph:
        return []
    model = cost_model or PROPAGATION_ONLY
    try:
        generator = nx.shortest_simple_paths(
            graph, source, target, weight=model.weight_fn()
        )
        return list(islice(generator, k))
    except nx.NetworkXNoPath:
        return []
