"""Time-expanded (store-and-forward) routing over contact plans.

The paper's incremental-deployment story (Section 4) starts from "small
initial deployments across a small number of initial players".  Sparse
fleets rarely offer an *instantaneous* relay path between a user and a
gateway — but because every orbit is public, the future contact schedule
is known, and data can be carried onboard between contacts (delay-tolerant
store-and-forward).  This module builds the classic time-expanded graph
over a sequence of topology snapshots:

* node ``(entity, k)`` = the entity during snapshot epoch ``k``;
* a *storage* edge connects ``(entity, k)`` to ``(entity, k+1)`` with cost
  equal to the epoch length (the data waits onboard);
* a *contact* edge connects ``(a, k)`` to ``(b, k)`` for every link in
  snapshot ``k``, with the link's propagation delay.

Earliest-arrival routing over this graph answers "when can a bundle
handed to the network at time t reach the gateway?" — the metric the
sparse-deployment ablation reports against instantaneous-path routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.routing.csr import (
    BACKEND_CSR,
    CsrAdjacency,
    delay_weight,
    resolve_backend,
)


@dataclass(frozen=True)
class StoreAndForwardRoute:
    """One delay-tolerant delivery plan.

    Attributes:
        source: Originating entity.
        target: Destination entity.
        departure_s: When the bundle entered the network.
        arrival_s: When it reaches the target.
        hops: ``(time_s, from_entity, to_entity)`` transmission events;
            storage intervals are implicit between them.
        epochs_waited: Number of storage edges traversed.
    """

    source: str
    target: str
    departure_s: float
    arrival_s: float
    hops: Tuple[Tuple[float, str, str], ...]
    epochs_waited: int

    @property
    def delivery_delay_s(self) -> float:
        return self.arrival_s - self.departure_s


class TimeExpandedRouter:
    """Earliest-arrival routing over a snapshot series.

    Args:
        snapshots: Time-ordered objects with ``time_s`` and ``graph``
            (``TopologySnapshot`` / ``NetworkSnapshot`` both qualify).
        horizon_s: End of the final epoch; defaults to the last snapshot
            time plus the preceding epoch length.
        backend: Routing backend; ``None`` uses the process default.  The
            CSR backend builds the time-expanded adjacency once and
            memoizes one single-source run per distinct departure node.
    """

    def __init__(self, snapshots: Sequence, horizon_s: Optional[float] = None,
                 backend: Optional[str] = None):
        # Materialize first: a generator input must not be half-consumed
        # by the emptiness check or the time scan below.
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("need at least one snapshot")
        self.backend = backend
        self._csr: Optional[CsrAdjacency] = None
        times = [snap.time_s for snap in snapshots]
        if any(b <= a for a, b in zip(times[:-1], times[1:])):
            raise ValueError("snapshots must be strictly time-ordered")
        self.snapshots = snapshots
        self.epoch_times = times
        if horizon_s is None:
            step = times[-1] - times[-2] if len(times) > 1 else 60.0
            horizon_s = times[-1] + step
        self.horizon_s = horizon_s
        self._graph = self._build()

    def _build(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        epoch_ends = self.epoch_times[1:] + [self.horizon_s]
        entities = set()
        for snap in self.snapshots:
            entities.update(snap.graph.nodes)
        for k, (snap, end_s) in enumerate(zip(self.snapshots, epoch_ends)):
            for entity in entities:
                graph.add_node((entity, k))
            # Contact edges within the epoch (bidirectional).
            for u, v, data in snap.graph.edges(data=True):
                delay = float(data.get("delay_s", 0.0))
                graph.add_edge((u, k), (v, k), delay_s=delay, kind="contact")
                graph.add_edge((v, k), (u, k), delay_s=delay, kind="contact")
            # Storage edges into the next epoch.
            if k + 1 < len(self.snapshots):
                wait = self.epoch_times[k + 1] - self.epoch_times[k]
                for entity in entities:
                    graph.add_edge(
                        (entity, k), (entity, k + 1),
                        delay_s=wait, kind="storage",
                    )
        return graph

    def _epoch_at(self, time_s: float) -> int:
        import bisect
        index = bisect.bisect_right(self.epoch_times, time_s) - 1
        if index < 0:
            raise ValueError(
                f"departure {time_s} precedes first epoch "
                f"{self.epoch_times[0]}"
            )
        return index

    def earliest_arrival(self, source: str, target: str,
                         departure_s: float) -> Optional[StoreAndForwardRoute]:
        """The earliest-arriving store-and-forward delivery plan.

        Args:
            source: Originating entity (must exist in some snapshot).
            target: Destination entity.
            departure_s: Bundle hand-off time; must fall within the plan.

        Returns:
            The route, or None when the bundle cannot be delivered within
            the plan horizon.
        """
        start_epoch = self._epoch_at(departure_s)
        start = (source, start_epoch)
        if start not in self._graph:
            return None
        if source == target:
            # Already there: a zero-delay plan with no transmissions.
            return StoreAndForwardRoute(
                source=source, target=target, departure_s=departure_s,
                arrival_s=departure_s, hops=(), epochs_waited=0,
            )
        if resolve_backend(self.backend) == BACKEND_CSR:
            if self._csr is None:
                self._csr = CsrAdjacency.from_graph(
                    self._graph, weight=delay_weight
                )
            sp = self._csr.single_source(start)
            best_node = None
            best_cost = float("inf")
            # Increasing-k order makes tie-breaking deterministic (the
            # networkx path iterates a set; exact-tie arrivals are
            # measure-zero with float contact delays).
            for k in range(start_epoch, len(self.snapshots)):
                node = (target, k)
                if node not in self._csr:
                    continue
                cost = sp.distance(start, node)
                if cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                return None
            path = sp.path(start, best_node)
        else:
            targets = {
                (target, k) for k in range(start_epoch, len(self.snapshots))
                if (target, k) in self._graph
            }
            if not targets:
                return None
            try:
                lengths, paths = nx.single_source_dijkstra(
                    self._graph, start, weight="delay_s"
                )
            except nx.NodeNotFound:
                return None
            best_node = None
            best_cost = float("inf")
            for node in targets:
                cost = lengths.get(node)
                if cost is not None and cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                return None
            path = paths[best_node]
        hops: List[Tuple[float, str, str]] = []
        clock = departure_s
        waits = 0
        for (u, ku), (v, kv) in zip(path[:-1], path[1:]):
            edge = self._graph[(u, ku)][(v, kv)]
            clock += edge["delay_s"]
            if edge["kind"] == "contact":
                hops.append((clock, u, v))
            else:
                waits += 1
        return StoreAndForwardRoute(
            source=source,
            target=target,
            departure_s=departure_s,
            arrival_s=clock,
            hops=tuple(hops),
            epochs_waited=waits,
        )

    def delivery_ratio(self, pairs: Sequence[Tuple[str, str]],
                       departure_s: float) -> float:
        """Fraction of pairs deliverable within the plan horizon."""
        if not pairs:
            return 0.0
        delivered = sum(
            1 for source, target in pairs
            if self.earliest_arrival(source, target, departure_s) is not None
        )
        return delivered / len(pairs)

    @property
    def node_count(self) -> int:
        return self._graph.number_of_nodes()
