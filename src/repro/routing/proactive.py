"""Proactive (precomputed) routing from public orbital knowledge.

"The set of overhead satellites and the times at which they will be
available are entirely predictable ... allowing for pre-computation of
static routes between any set of satellites and fixed ground
infrastructure."  The :class:`ProactiveRouter` consumes a series of
topology snapshots and precomputes, for each snapshot epoch, all-pairs (or
selected-pairs) static routes; at run time a lookup is O(1).

Two epoch representations back the table:

* :class:`MaterializedEpoch` — a plain dict of eagerly built
  :class:`StaticRoute` objects (the networkx backend, and anything tests
  hand-construct).
* :class:`LazyCsrEpoch` — distance + predecessor matrices from one
  batched multi-source :func:`scipy.sparse.csgraph.dijkstra` call
  (:mod:`repro.routing.csr`); :class:`StaticRoute` objects are
  materialized on first lookup instead of all-pairs up front.

Both maintain a by-source index (O(out-degree) contact-plan slices for
dissemination) and a node→route-keys inverted index (fault invalidation
touches only affected routes instead of rescanning every epoch).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from repro import obs as _obs
from repro.routing.metrics import (
    EdgeCostModel,
    PROPAGATION_ONLY,
    RouteMetrics,
    path_metrics,
)

RouteKey = Tuple[str, str]


@dataclass(frozen=True)
class StaticRoute:
    """One precomputed route valid during one snapshot epoch.

    Attributes:
        source: Source node id.
        target: Target node id.
        valid_from_s: Epoch start.
        valid_until_s: Epoch end (start of the next snapshot).
        metrics: End-to-end metrics at precomputation time.
    """

    source: str
    target: str
    valid_from_s: float
    valid_until_s: float
    metrics: RouteMetrics

    @property
    def path(self) -> List[str]:
        return self.metrics.path


class MaterializedEpoch(dict):
    """An epoch's routes as an eager ``{(src, dst): StaticRoute}`` dict.

    Plain dicts passed to :meth:`RoutingTable.add_epoch` are wrapped in
    this class, so table internals can rely on the epoch-store protocol
    (:meth:`from_source`, :meth:`keys_through`, :meth:`discard_route`)
    while external callers keep full dict behavior.  The lazy secondary
    indexes assume mutation goes through :meth:`discard_route`; deleting
    keys directly desynchronizes them.
    """

    def __init__(self, routes: Optional[Dict[RouteKey, StaticRoute]] = None):
        super().__init__(routes or {})
        self._by_source: Optional[Dict[str, Dict[str, StaticRoute]]] = None
        self._through: Optional[Dict[str, Set[RouteKey]]] = None

    # -- epoch-store protocol -------------------------------------------

    def from_source(self, source: str) -> Dict[str, StaticRoute]:
        """The source's slice of the plan, O(out-degree) after the first
        call builds the by-source index."""
        if self._by_source is None:
            by_source: Dict[str, Dict[str, StaticRoute]] = {}
            for (src, dst), route in self.items():
                by_source.setdefault(src, {})[dst] = route
            self._by_source = by_source
        return dict(self._by_source.get(source, {}))

    def keys_through(self, node: str) -> Iterable[RouteKey]:
        """Keys of routes whose path traverses ``node`` (endpoints
        included); first call builds the inverted index."""
        if self._through is None:
            through: Dict[str, Set[RouteKey]] = {}
            for key, route in self.items():
                for hop in route.path:
                    through.setdefault(hop, set()).add(key)
            self._through = through
        return tuple(self._through.get(node, ()))

    def discard_route(self, key: RouteKey) -> bool:
        """Remove one route, keeping secondary indexes consistent."""
        route = self.pop(key, None)
        if route is None:
            return False
        if self._by_source is not None:
            self._by_source.get(key[0], {}).pop(key[1], None)
        if self._through is not None:
            for hop in route.path:
                keys = self._through.get(hop)
                if keys is not None:
                    keys.discard(key)
        return True


class LazyCsrEpoch:
    """An epoch backed by CSR distance/predecessor matrices.

    Holds the output of one batched multi-source Dijkstra run and
    materializes :class:`StaticRoute` objects (path walk + metric
    accumulation over the snapshot graph) only when a pair is actually
    looked up.  ``len()`` — the number of precomputed routes — comes from
    the finite-distance count without materializing anything.
    """

    __slots__ = ("graph", "paths", "sources", "wanted_by_source",
                 "valid_from_s", "valid_until_s", "_cache", "_dropped",
                 "_by_source", "_through", "_count")

    def __init__(self, graph, paths, sources: Sequence[str],
                 valid_from_s: float, valid_until_s: float,
                 wanted_by_source: Optional[Dict[str, Set[str]]] = None):
        self.graph = graph
        #: A :class:`repro.routing.csr.ShortestPaths` over ``sources``.
        self.paths = paths
        self.sources = list(sources)
        self.wanted_by_source = wanted_by_source
        self.valid_from_s = valid_from_s
        self.valid_until_s = valid_until_s
        self._cache: Dict[RouteKey, StaticRoute] = {}
        self._dropped: Set[RouteKey] = set()
        self._by_source: Optional[Dict[str, List[str]]] = None
        self._through: Optional[Dict[str, Set[RouteKey]]] = None
        self._count: Optional[int] = None

    # -- validity -------------------------------------------------------

    def _is_valid(self, source: str, target: str) -> bool:
        """Whether the pair has a precomputed (finite, wanted) route,
        ignoring drops."""
        if source == target:
            return False
        if self.wanted_by_source is not None:
            targets = self.wanted_by_source.get(source)
            if targets is None or target not in targets:
                return False
        return math.isfinite(self.paths.distance(source, target))

    def _valid_targets(self, source: str) -> List[str]:
        targets = self.paths.reachable_targets(source)
        if self.wanted_by_source is not None:
            wanted = self.wanted_by_source.get(source, set())
            targets = [t for t in targets if t in wanted]
        return targets

    def __len__(self) -> int:
        if self._count is None:
            if self.wanted_by_source is None:
                self._count = sum(self.paths.reachable_count(src)
                                  for src in self.sources)
            else:
                self._count = sum(len(self._valid_targets(src))
                                  for src in self.sources)
        return self._count - len(self._dropped)

    def __contains__(self, key: RouteKey) -> bool:
        return key not in self._dropped and self._is_valid(*key)

    # -- epoch-store protocol -------------------------------------------

    def get(self, key: RouteKey, default=None) -> Optional[StaticRoute]:
        source, target = key
        if key in self._dropped:
            return default
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if not self._is_valid(source, target):
            return default
        path = self.paths.path(source, target)
        if path is None:
            return default
        route = StaticRoute(
            source=source,
            target=target,
            valid_from_s=self.valid_from_s,
            valid_until_s=self.valid_until_s,
            metrics=path_metrics(self.graph, path),
        )
        self._cache[key] = route
        return route

    def from_source(self, source: str) -> Dict[str, StaticRoute]:
        """Materialize just this source's row of the table."""
        if self._by_source is None:
            self._by_source = {}
        targets = self._by_source.get(source)
        if targets is None:
            targets = self._valid_targets(source)
            self._by_source[source] = targets
        slice_: Dict[str, StaticRoute] = {}
        for target in targets:
            route = self.get((source, target))
            if route is not None:
                slice_[target] = route
        return slice_

    def keys_through(self, node: str) -> Iterable[RouteKey]:
        """Keys of routes traversing ``node``; the first call walks the
        predecessor matrices once (paths only, no metrics)."""
        if self._through is None:
            through: Dict[str, Set[RouteKey]] = {}
            for src in self.sources:
                for target in self._valid_targets(src):
                    path = self.paths.path(src, target)
                    if path is None:
                        continue
                    key = (src, target)
                    for hop in path:
                        through.setdefault(hop, set()).add(key)
            self._through = through
        keys = self._through.get(node, ())
        return tuple(k for k in keys if k not in self._dropped)

    def discard_route(self, key: RouteKey) -> bool:
        if key in self._dropped or not self._is_valid(*key):
            return False
        self._dropped.add(key)
        self._cache.pop(key, None)
        return True


EpochStore = Union[MaterializedEpoch, LazyCsrEpoch]


@dataclass
class RoutingTable:
    """Per-epoch route store with binary-search time lookup."""

    epochs_s: List[float] = field(default_factory=list)
    routes: List[EpochStore] = field(default_factory=list)

    def add_epoch(self, epoch_s: float,
                  epoch_routes: Union[Dict[RouteKey, StaticRoute], EpochStore],
                  ) -> None:
        """Append an epoch; epochs must be added in increasing time order.

        Plain route dicts are wrapped in :class:`MaterializedEpoch`.
        """
        if self.epochs_s and epoch_s <= self.epochs_s[-1]:
            raise ValueError(
                f"epochs must be strictly increasing; got {epoch_s} after "
                f"{self.epochs_s[-1]}"
            )
        if not isinstance(epoch_routes, (MaterializedEpoch, LazyCsrEpoch)):
            epoch_routes = MaterializedEpoch(epoch_routes)
        self.epochs_s.append(epoch_s)
        self.routes.append(epoch_routes)

    def epoch_index_at(self, time_s: float) -> int:
        """Index of the epoch covering ``time_s``.

        Raises:
            LookupError: When ``time_s`` precedes the first epoch or the
                table is empty.
        """
        if not self.epochs_s:
            raise LookupError("routing table is empty")
        index = bisect.bisect_right(self.epochs_s, time_s) - 1
        if index < 0:
            raise LookupError(
                f"time {time_s} precedes first routing epoch {self.epochs_s[0]}"
            )
        return index

    def lookup(self, source: str, target: str,
               time_s: float) -> Optional[StaticRoute]:
        """The precomputed route for a pair at a time; None when absent."""
        index = self.epoch_index_at(time_s)
        return self.routes[index].get((source, target))

    @property
    def route_count(self) -> int:
        return sum(len(epoch) for epoch in self.routes)


class ProactiveRouter:
    """Precomputes static routes across a snapshot series.

    Args:
        cost_model: Edge-cost model used for the precomputation; defaults
            to pure propagation delay (the paper's latency metric).
        backend: Routing backend (``"csr"`` or ``"networkx"``); ``None``
            uses the process default (see :mod:`repro.routing.csr`).
    """

    def __init__(self, cost_model: Optional[EdgeCostModel] = None,
                 backend: Optional[str] = None):
        self.cost_model = cost_model or PROPAGATION_ONLY
        self.backend = backend
        self.table = RoutingTable()

    def precompute(self, snapshots: Sequence, pairs: Optional[Sequence[RouteKey]] = None,
                   horizon_s: Optional[float] = None) -> RoutingTable:
        """Build the routing table over a series of topology snapshots.

        With the CSR backend each snapshot costs one batched multi-source
        Dijkstra; routes materialize lazily on lookup.  The networkx
        backend eagerly builds every :class:`StaticRoute` (the original
        behavior and the digest reference).

        Args:
            snapshots: :class:`~repro.isl.topology.TopologySnapshot` objects
                (anything with ``time_s`` and ``graph``), time-ordered.
            pairs: Source/target pairs to precompute.  None means all pairs
                (Dijkstra from every source — fine at paper scale).
            horizon_s: Validity end of the final epoch; defaults to the
                last snapshot time plus the preceding epoch length.

        Returns:
            The populated :class:`RoutingTable` (also kept on the router).
        """
        from repro.routing import csr as _csr

        if not snapshots:
            raise ValueError("need at least one snapshot to precompute routes")
        times = [snap.time_s for snap in snapshots]
        if any(b <= a for a, b in zip(times[:-1], times[1:])):
            raise ValueError("snapshots must be strictly time-ordered")
        if horizon_s is None:
            step = times[-1] - times[-2] if len(times) > 1 else 60.0
            horizon_s = times[-1] + step

        backend = _csr.resolve_backend(self.backend)
        self.table = RoutingTable()
        recorder = _obs.active()
        with recorder.span("routing.proactive.precompute",
                           snapshots=len(snapshots),
                           pairs="all" if pairs is None else len(pairs),
                           backend=backend):
            for snap, valid_until in zip(snapshots, times[1:] + [horizon_s]):
                graph = snap.graph
                if pairs is None:
                    wanted_sources = list(graph.nodes)
                    wanted_by_source = None
                else:
                    wanted_sources = sorted({src for src, _ in pairs})
                    wanted_by_source = {}
                    for src, dst in pairs:
                        wanted_by_source.setdefault(src, set()).add(dst)
                wanted_sources = [s for s in wanted_sources if s in graph]
                if backend == _csr.BACKEND_CSR:
                    epoch: EpochStore = self._csr_epoch(
                        snap, graph, wanted_sources, wanted_by_source,
                        valid_until)
                else:
                    epoch = self._networkx_epoch(
                        snap, graph, wanted_sources, wanted_by_source,
                        valid_until)
                if recorder.enabled:
                    recorder.count("routing.proactive.routes", len(epoch))
                    recorder.count("routing.proactive.epochs")
                self.table.add_epoch(snap.time_s, epoch)
        return self.table

    def _csr_epoch(self, snap, graph, sources, wanted_by_source,
                   valid_until_s: float) -> LazyCsrEpoch:
        from repro.routing.csr import CsrAdjacency

        csr_of = getattr(snap, "csr_adjacency", None)
        if csr_of is not None:
            adjacency = csr_of(self.cost_model)
        else:
            adjacency = CsrAdjacency.from_graph(graph, weight=self.cost_model)
        return LazyCsrEpoch(
            graph=graph,
            paths=adjacency.shortest_paths(sources),
            sources=sources,
            valid_from_s=snap.time_s,
            valid_until_s=valid_until_s,
            wanted_by_source=wanted_by_source,
        )

    def _networkx_epoch(self, snap, graph, sources, wanted_by_source,
                        valid_until_s: float) -> MaterializedEpoch:
        weight = self.cost_model.weight_fn()
        epoch = MaterializedEpoch()
        for source in sources:
            _dist, paths = nx.single_source_dijkstra(
                graph, source, weight=weight
            )
            targets = (None if wanted_by_source is None
                       else wanted_by_source.get(source))
            for target, path in paths.items():
                if target == source:
                    continue
                if targets is not None and target not in targets:
                    continue
                epoch[(source, target)] = StaticRoute(
                    source=source,
                    target=target,
                    valid_from_s=snap.time_s,
                    valid_until_s=valid_until_s,
                    metrics=path_metrics(graph, path),
                )
        return epoch

    def invalidate_routes_through(self, elements: Sequence[str],
                                  from_time_s: float = 0.0) -> int:
        """Drop precomputed routes that traverse any failed element.

        Called by the fault injector when satellites or stations go down:
        every static route whose path crosses an affected node, in the
        epoch covering ``from_time_s`` and every later epoch, is removed
        so lookups miss and callers fall back to live recomputation.
        Routes that already avoided the element stay valid — repair needs
        no invalidation (stale-but-working routes heal at the next
        precompute).

        Each epoch's node→route-keys inverted index makes this touch only
        the affected routes rather than rescanning every route per fault
        event.

        Returns:
            The number of routes dropped.
        """
        affected = set(elements)
        if not affected or not self.table.epochs_s:
            return 0
        start = bisect.bisect_right(self.table.epochs_s, from_time_s) - 1
        start = max(0, start)
        dropped = 0
        for index in range(start, len(self.table.routes)):
            epoch = self.table.routes[index]
            doomed: Set[RouteKey] = set()
            for node in affected:
                doomed.update(epoch.keys_through(node))
            for key in doomed:
                if epoch.discard_route(key):
                    dropped += 1
        recorder = _obs.active()
        if recorder.enabled and dropped:
            recorder.count("routing.proactive.invalidated", dropped)
            recorder.event("route.invalidated", from_time_s,
                           subject=",".join(sorted(affected)[:4]),
                           elements=len(affected), routes=dropped)
        return dropped

    def invalidate_routes_through_edges(
        self, edges: Sequence[Tuple[str, str]],
        from_time_s: float = 0.0,
    ) -> int:
        """Drop precomputed routes that traverse any of the given edges.

        The edge-granular companion to :meth:`invalidate_routes_through`
        — the hook the incremental snapshot path feeds (see
        :attr:`~repro.core.network.SnapshotDelta.disappeared_edges`):
        when an epoch delta reports which ISLs or ground links vanished,
        only routes actually riding those edges are dropped, not every
        route touching their endpoints.  Edges that merely *appeared*
        need no invalidation — existing routes stay feasible, just
        possibly no longer optimal until the next precompute.

        Candidate routes come from intersecting the two endpoints'
        inverted indexes; each candidate's path is then checked for the
        hop being consecutive (either direction), so routes that visit
        both endpoints without using the edge survive.

        Args:
            edges: ``(u, v)`` node-id pairs; order within a pair does
                not matter.
            from_time_s: Invalidate in the epoch covering this time and
                every later epoch.

        Returns:
            The number of routes dropped.
        """
        pairs = {frozenset(pair) for pair in edges if pair[0] != pair[1]}
        if not pairs or not self.table.epochs_s:
            return 0
        start = bisect.bisect_right(self.table.epochs_s, from_time_s) - 1
        start = max(0, start)
        dropped = 0
        for index in range(start, len(self.table.routes)):
            epoch = self.table.routes[index]
            doomed: Set[RouteKey] = set()
            for pair in pairs:
                node_a, node_b = tuple(pair)
                candidates = set(epoch.keys_through(node_a))
                candidates &= set(epoch.keys_through(node_b))
                for key in candidates:
                    if key in doomed:
                        continue
                    route = epoch.get(key)
                    if route is None:
                        continue
                    hops = route.path
                    for hop_a, hop_b in zip(hops[:-1], hops[1:]):
                        if frozenset((hop_a, hop_b)) == pair:
                            doomed.add(key)
                            break
            for key in doomed:
                if epoch.discard_route(key):
                    dropped += 1
        recorder = _obs.active()
        if recorder.enabled and dropped:
            recorder.count("routing.proactive.invalidated_edges", dropped)
            recorder.event(
                "route.invalidated_edges", from_time_s,
                subject=",".join(
                    "-".join(sorted(pair)) for pair in sorted(
                        tuple(sorted(p)) for p in pairs
                    )[:4]
                ),
                edges=len(pairs), routes=dropped,
            )
        return dropped

    def routes_from(self, source: str,
                    time_s: float) -> Dict[str, StaticRoute]:
        """A source node's slice of the contact plan at one instant.

        This is the unit of contact-plan dissemination: the per-satellite
        table a controller pushes over control links (see
        :class:`~repro.reliability.policy.ResilientRouter`).  An empty
        dict means the node has no precomputed routes in that epoch.
        Served from the epoch's by-source index — O(out-degree), not
        O(all routes in the epoch).
        """
        try:
            index = self.table.epoch_index_at(time_s)
        except LookupError:
            return {}
        return self.table.routes[index].from_source(source)

    def route(self, source: str, target: str,
              time_s: float) -> Optional[StaticRoute]:
        """Look up the precomputed route for a pair at a time."""
        found = self.table.lookup(source, target, time_s)
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("routing.proactive.lookups",
                           label="hit" if found is not None else "miss")
        return found
