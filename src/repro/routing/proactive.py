"""Proactive (precomputed) routing from public orbital knowledge.

"The set of overhead satellites and the times at which they will be
available are entirely predictable ... allowing for pre-computation of
static routes between any set of satellites and fixed ground
infrastructure."  The :class:`ProactiveRouter` consumes a series of
topology snapshots and precomputes, for each snapshot epoch, all-pairs (or
selected-pairs) static routes; at run time a lookup is O(1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro import obs as _obs
from repro.routing.metrics import (
    EdgeCostModel,
    PROPAGATION_ONLY,
    RouteMetrics,
    path_metrics,
)


@dataclass(frozen=True)
class StaticRoute:
    """One precomputed route valid during one snapshot epoch.

    Attributes:
        source: Source node id.
        target: Target node id.
        valid_from_s: Epoch start.
        valid_until_s: Epoch end (start of the next snapshot).
        metrics: End-to-end metrics at precomputation time.
    """

    source: str
    target: str
    valid_from_s: float
    valid_until_s: float
    metrics: RouteMetrics

    @property
    def path(self) -> List[str]:
        return self.metrics.path


@dataclass
class RoutingTable:
    """Per-epoch route store with binary-search time lookup."""

    epochs_s: List[float] = field(default_factory=list)
    routes: List[Dict[Tuple[str, str], StaticRoute]] = field(default_factory=list)

    def add_epoch(self, epoch_s: float,
                  epoch_routes: Dict[Tuple[str, str], StaticRoute]) -> None:
        """Append an epoch; epochs must be added in increasing time order."""
        if self.epochs_s and epoch_s <= self.epochs_s[-1]:
            raise ValueError(
                f"epochs must be strictly increasing; got {epoch_s} after "
                f"{self.epochs_s[-1]}"
            )
        self.epochs_s.append(epoch_s)
        self.routes.append(epoch_routes)

    def epoch_index_at(self, time_s: float) -> int:
        """Index of the epoch covering ``time_s``.

        Raises:
            LookupError: When ``time_s`` precedes the first epoch or the
                table is empty.
        """
        if not self.epochs_s:
            raise LookupError("routing table is empty")
        index = bisect.bisect_right(self.epochs_s, time_s) - 1
        if index < 0:
            raise LookupError(
                f"time {time_s} precedes first routing epoch {self.epochs_s[0]}"
            )
        return index

    def lookup(self, source: str, target: str,
               time_s: float) -> Optional[StaticRoute]:
        """The precomputed route for a pair at a time; None when absent."""
        index = self.epoch_index_at(time_s)
        return self.routes[index].get((source, target))

    @property
    def route_count(self) -> int:
        return sum(len(epoch) for epoch in self.routes)


class ProactiveRouter:
    """Precomputes static routes across a snapshot series.

    Args:
        cost_model: Edge-cost model used for the precomputation; defaults
            to pure propagation delay (the paper's latency metric).
    """

    def __init__(self, cost_model: Optional[EdgeCostModel] = None):
        self.cost_model = cost_model or PROPAGATION_ONLY
        self.table = RoutingTable()

    def precompute(self, snapshots: Sequence, pairs: Optional[Sequence[Tuple[str, str]]] = None,
                   horizon_s: Optional[float] = None) -> RoutingTable:
        """Build the routing table over a series of topology snapshots.

        Args:
            snapshots: :class:`~repro.isl.topology.TopologySnapshot` objects
                (anything with ``time_s`` and ``graph``), time-ordered.
            pairs: Source/target pairs to precompute.  None means all pairs
                (Dijkstra from every source — fine at paper scale).
            horizon_s: Validity end of the final epoch; defaults to the
                last snapshot time plus the preceding epoch length.

        Returns:
            The populated :class:`RoutingTable` (also kept on the router).
        """
        if not snapshots:
            raise ValueError("need at least one snapshot to precompute routes")
        times = [snap.time_s for snap in snapshots]
        if any(b <= a for a, b in zip(times[:-1], times[1:])):
            raise ValueError("snapshots must be strictly time-ordered")
        if horizon_s is None:
            step = times[-1] - times[-2] if len(times) > 1 else 60.0
            horizon_s = times[-1] + step

        self.table = RoutingTable()
        weight = self.cost_model.weight_fn()
        recorder = _obs.active()
        with recorder.span("routing.proactive.precompute",
                           snapshots=len(snapshots),
                           pairs="all" if pairs is None else len(pairs)):
            for snap, valid_until in zip(snapshots, times[1:] + [horizon_s]):
                epoch_routes: Dict[Tuple[str, str], StaticRoute] = {}
                graph = snap.graph
                if pairs is None:
                    wanted_sources = list(graph.nodes)
                else:
                    wanted_sources = sorted({src for src, _ in pairs})
                wanted_by_source: Dict[str, Optional[set]] = {}
                if pairs is not None:
                    for src, dst in pairs:
                        wanted_by_source.setdefault(src, set()).add(dst)
                for source in wanted_sources:
                    if source not in graph:
                        continue
                    _dist, paths = nx.single_source_dijkstra(
                        graph, source, weight=weight
                    )
                    targets = wanted_by_source.get(source)
                    for target, path in paths.items():
                        if target == source:
                            continue
                        if targets is not None and target not in targets:
                            continue
                        epoch_routes[(source, target)] = StaticRoute(
                            source=source,
                            target=target,
                            valid_from_s=snap.time_s,
                            valid_until_s=valid_until,
                            metrics=path_metrics(graph, path),
                        )
                if recorder.enabled:
                    recorder.count("routing.proactive.routes",
                                   len(epoch_routes))
                    recorder.count("routing.proactive.epochs")
                self.table.add_epoch(snap.time_s, epoch_routes)
        return self.table

    def invalidate_routes_through(self, elements: Sequence[str],
                                  from_time_s: float = 0.0) -> int:
        """Drop precomputed routes that traverse any failed element.

        Called by the fault injector when satellites or stations go down:
        every static route whose path crosses an affected node, in the
        epoch covering ``from_time_s`` and every later epoch, is removed
        so lookups miss and callers fall back to live recomputation.
        Routes that already avoided the element stay valid — repair needs
        no invalidation (stale-but-working routes heal at the next
        precompute).

        Returns:
            The number of routes dropped.
        """
        affected = set(elements)
        if not affected or not self.table.epochs_s:
            return 0
        start = bisect.bisect_right(self.table.epochs_s, from_time_s) - 1
        start = max(0, start)
        dropped = 0
        for index in range(start, len(self.table.routes)):
            epoch = self.table.routes[index]
            doomed = [
                key for key, route in epoch.items()
                if affected.intersection(route.path)
            ]
            for key in doomed:
                del epoch[key]
            dropped += len(doomed)
        recorder = _obs.active()
        if recorder.enabled and dropped:
            recorder.count("routing.proactive.invalidated", dropped)
        return dropped

    def routes_from(self, source: str,
                    time_s: float) -> Dict[str, StaticRoute]:
        """A source node's slice of the contact plan at one instant.

        This is the unit of contact-plan dissemination: the per-satellite
        table a controller pushes over control links (see
        :class:`~repro.reliability.policy.ResilientRouter`).  An empty
        dict means the node has no precomputed routes in that epoch.
        """
        try:
            index = self.table.epoch_index_at(time_s)
        except LookupError:
            return {}
        return {
            target: route
            for (src, target), route in self.table.routes[index].items()
            if src == source
        }

    def route(self, source: str, target: str,
              time_s: float) -> Optional[StaticRoute]:
        """Look up the precomputed route for a pair at a time."""
        found = self.table.lookup(source, target, time_s)
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("routing.proactive.lookups",
                           label="hit" if found is not None else "miss")
        return found
