"""Heterogeneity- and QoS-aware routing.

The paper: packets "can traverse satellites owned by different firms
several times prior to being received on the ground.  These links may
differ based on physical layer specifications (RF or optical links),
predefined agreements between providers, and ground station conditions.
Given these complexities, satellites need to make quality-of-service-aware
routing decisions that take into account the nature of the network,
including available bandwidths of the ISLs."

The :class:`QosRouter` filters the snapshot graph down to edges satisfying
a flow's requirements (minimum bandwidth, maximum tariff, allowed
technologies/operators) and then runs cheapest-path over a cost model that
prices queueing and visitor tariffs alongside propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.routing.csr import BACKEND_CSR, resolve_backend, shortest_path_csr
from repro.routing.metrics import EdgeCostModel, RouteMetrics, path_metrics


@dataclass(frozen=True)
class QosRequirement:
    """A flow's requirements on every link of its path.

    Attributes:
        min_bandwidth_bps: Bottleneck bandwidth the flow needs; RF-only
            paths fail stringent values, steering traffic onto laser ISLs
            exactly as the paper describes for high-QoS users.
        max_end_to_end_delay_s: Reject routes whose metric exceeds this.
        max_tariff_per_gb: Reject edges charging more than this.
        forbidden_operators: Operators the flow must not traverse (policy /
            data-sovereignty constraint from the paper's discussion).
        require_optical_only: Restrict to laser ISLs (the strictest QoS
            class an operator can advertise).
    """

    min_bandwidth_bps: float = 0.0
    max_end_to_end_delay_s: float = float("inf")
    max_tariff_per_gb: float = float("inf")
    forbidden_operators: frozenset = frozenset()
    require_optical_only: bool = False

    def admits_edge(self, data: dict) -> bool:
        """Whether one edge satisfies the per-link constraints."""
        if float(data.get("capacity_bps", float("inf"))) < self.min_bandwidth_bps:
            return False
        if float(data.get("tariff_per_gb", 0.0)) > self.max_tariff_per_gb:
            return False
        owner = data.get("owner")
        if owner is not None and owner in self.forbidden_operators:
            return False
        if self.require_optical_only:
            link = data.get("link")
            technology = getattr(link, "technology", None)
            if technology is None or getattr(technology, "is_rf", True):
                return False
        return True


#: Ready-made service classes an OpenSpace provider might advertise.
BEST_EFFORT = QosRequirement()
STANDARD = QosRequirement(min_bandwidth_bps=2e6)
PREMIUM = QosRequirement(min_bandwidth_bps=50e6, max_end_to_end_delay_s=0.120)


@dataclass
class QosRouteResult:
    """Outcome of a QoS route computation.

    Attributes:
        metrics: Metrics of the selected path (None when no path admits).
        admitted: True when a path satisfying the requirement exists.
        rejection_reason: Human-readable reason when not admitted.
    """

    metrics: Optional[RouteMetrics]
    admitted: bool
    rejection_reason: str = ""


class QosRouter:
    """Cheapest admissible path under per-flow QoS requirements.

    Args:
        cost_model: Cost model for ranking admissible paths.  The default
            prices queueing delay at par and visitor tariffs lightly, so
            cheap-but-congested RF detours lose to clean paths.
        backend: Routing backend; ``None`` uses the process default.  The
            CSR backend folds the admission filter into the weight
            function (inadmissible edges never enter the arrays) instead
            of routing over a ``subgraph_view``.
        link_utilization: Standing per-link utilization from the fluid
            demand plane (canonical sorted ``(u, v)`` keys,
            ``load / capacity``).  When set, each edge's cost gains an
            M/M/1 queueing-inflation term ``delay * u / (1 - u)``
            (utilization clamped below 1), so congested links price
            higher without mutating the snapshot.
    """

    #: Utilization clamp for the congestion term (saturated links stay
    #: finite but effectively unroutable).
    MAX_UTILIZATION = 0.99

    def __init__(self, cost_model: Optional[EdgeCostModel] = None,
                 backend: Optional[str] = None,
                 link_utilization: Optional[Dict[Tuple[str, str],
                                                 float]] = None):
        self.cost_model = cost_model or EdgeCostModel(
            queue_weight=1.0, tariff_weight=0.002
        )
        self.backend = backend
        self.link_utilization = link_utilization

    def _congestion_cost(self, u: str, v: str, data: dict) -> float:
        """The M/M/1 queueing-inflation cost of one edge, seconds."""
        if not self.link_utilization:
            return 0.0
        key = (u, v) if u <= v else (v, u)
        utilization = min(self.link_utilization.get(key, 0.0),
                          self.MAX_UTILIZATION)
        if utilization <= 0.0:
            return 0.0
        delay = float(data.get("delay_s", 0.0))
        return delay * utilization / (1.0 - utilization)

    def _admissible_subgraph(self, graph: nx.Graph,
                             requirement: QosRequirement) -> nx.Graph:
        """View of the graph keeping only edges the requirement admits."""
        def edge_ok(u, v):
            return requirement.admits_edge(graph[u][v])
        return nx.subgraph_view(graph, filter_edge=edge_ok)

    def _admissible_weight(self, requirement: QosRequirement):
        """Weight callable that drops edges the requirement rejects."""
        model = self.cost_model

        def weight(u, v, data):
            if not requirement.admits_edge(data):
                return None
            return model.edge_cost(data) + self._congestion_cost(u, v, data)

        return weight

    def route(self, graph: nx.Graph, source: str, target: str,
              requirement: QosRequirement) -> QosRouteResult:
        """Find the cheapest path meeting the requirement.

        Args:
            graph: Snapshot graph with routing edge attributes.
            source: Source node id.
            target: Target node id.
            requirement: The flow's QoS class.
        """
        if source not in graph or target not in graph:
            return QosRouteResult(None, False, "endpoint not in topology")
        if resolve_backend(self.backend) == BACKEND_CSR:
            path = shortest_path_csr(
                graph, source, target,
                weight=self._admissible_weight(requirement),
            )
        else:
            admissible = self._admissible_subgraph(graph, requirement)
            base_weight = self.cost_model.weight_fn()
            if self.link_utilization:
                def weight(u, v, data):
                    return (base_weight(u, v, data)
                            + self._congestion_cost(u, v, data))
            else:
                weight = base_weight
            try:
                path = nx.dijkstra_path(
                    admissible, source, target, weight=weight,
                )
            except nx.NetworkXNoPath:
                path = None
        if path is None:
            return QosRouteResult(
                None, False,
                "no path satisfies per-link constraints "
                f"(min bw {requirement.min_bandwidth_bps:.0f} bps)",
            )
        metrics = path_metrics(graph, path)
        if metrics.total_delay_s > requirement.max_end_to_end_delay_s:
            return QosRouteResult(
                metrics, False,
                f"best path delay {metrics.total_delay_ms:.1f} ms exceeds "
                f"limit {requirement.max_end_to_end_delay_s * 1000:.1f} ms",
            )
        return QosRouteResult(metrics, True)

    def admissible_service_classes(self, graph: nx.Graph, source: str,
                                   target: str,
                                   classes: Sequence[QosRequirement]) -> List[QosRequirement]:
        """Which of the given service classes the network can honour now.

        Used by providers to "preemptively adjust their QoS guarantees":
        in regions where paths are bottlenecked by bandwidth-limited links,
        advertised plans reflect the looser guarantees.
        """
        return [
            requirement for requirement in classes
            if self.route(graph, source, target, requirement).admitted
        ]
