"""Compiled-sparse (CSR) routing backend.

Every routing layer in the stack reduces to the same primitive: shortest
paths over a snapshot graph whose edges carry additive costs.  The
networkx implementation runs a Python binary heap per source; this module
compiles a snapshot into an index-mapped CSR adjacency (node→int index
table plus ``indptr``/``indices``/``data`` arrays) and answers **batched
multi-source Dijkstra** through :func:`scipy.sparse.csgraph.dijkstra` —
one C call for any number of sources, with paths reconstructed lazily
from the predecessor matrix.

This is the pre-computation the paper says proactive routing should make
cheap ("pre-computation of static routes between any set of satellites
and fixed ground infrastructure", §2.3): the contact plan for a whole
epoch is two dense arrays, not a dict of path objects.

Backend selection
-----------------

``"csr"`` (the default whenever scipy is importable) and ``"networkx"``
(the pure-Python reference, kept both as a fallback for scipy-less
environments and as the digest-equality oracle the test suite compares
against).  Consumers accept a ``backend=`` argument and resolve ``None``
through :func:`resolve_backend`, so one :func:`set_default_backend` call
(or the ``--routing-backend`` CLI flag) switches the whole stack.

Determinism
-----------

The CSR build is fully deterministic: nodes are indexed in graph
insertion order and each row's neighbors are sorted by index (a stable
lexsort over ``(row, col)``), so repeated builds of the same snapshot
produce byte-identical arrays and scipy's Dijkstra returns the same
distances and predecessors every time.  Distances are exactly equal to
the networkx backend's (same IEEE additions along the same unique
shortest path); where several equal-cost paths exist the two backends
may pick different ones, but always with identical path cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.routing.metrics import EdgeCostModel, PROPAGATION_ONLY

try:  # scipy is a core dependency, but the networkx backend keeps the
    # stack alive (and the digest oracle honest) when it is absent.
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_csr_matrix = None
    _scipy_dijkstra = None
    HAVE_SCIPY = False

#: scipy.sparse.csgraph's "no predecessor" sentinel.
NO_PREDECESSOR = -9999

BACKEND_CSR = "csr"
BACKEND_NETWORKX = "networkx"
_BACKENDS = (BACKEND_CSR, BACKEND_NETWORKX)

_default_backend = BACKEND_CSR if HAVE_SCIPY else BACKEND_NETWORKX

#: An edge weight: a cost model, or ``(u, v, data) -> float | None``
#: where ``None`` (or a non-finite value) drops the edge entirely.
WeightSpec = Union[EdgeCostModel, Callable[[Hashable, Hashable, dict], Optional[float]], None]


def available_backends() -> Tuple[str, ...]:
    """The backend names :func:`resolve_backend` accepts."""
    return _BACKENDS


def default_backend() -> str:
    """The backend used when a consumer passes ``backend=None``."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Switch the process-wide default routing backend.

    Raises:
        ValueError: For unknown backend names.
        RuntimeError: When asking for ``"csr"`` without scipy installed.
    """
    global _default_backend
    _default_backend = resolve_backend(name)


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a ``backend=`` argument to a concrete backend name.

    ``None`` means the process default (CSR when scipy is available).
    Explicitly requesting ``"csr"`` without scipy raises instead of
    silently degrading, so a mis-provisioned environment fails loudly.
    """
    if name is None:
        return _default_backend
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown routing backend {name!r}; expected one of {_BACKENDS}"
        )
    if name == BACKEND_CSR and not HAVE_SCIPY:
        raise RuntimeError(
            "routing backend 'csr' requires scipy; install scipy or use "
            "backend='networkx'"
        )
    return name


def _weight_callable(weight: WeightSpec) -> Callable[[Hashable, Hashable, dict], Optional[float]]:
    """Normalize a weight spec into a ``(u, v, data) -> cost`` callable."""
    if weight is None:
        weight = PROPAGATION_ONLY
    if isinstance(weight, EdgeCostModel):
        edge_cost = weight.edge_cost

        def model_weight(_u, _v, data):
            return edge_cost(data)

        return model_weight
    if callable(weight):
        return weight
    raise TypeError(
        f"weight must be an EdgeCostModel or callable, got {type(weight)!r}"
    )


def delay_weight(_u, _v, data) -> float:
    """Raw ``delay_s`` edge weight (networkx's ``weight="delay_s"``)."""
    return float(data.get("delay_s", 1.0))


class CsrAdjacency:
    """An index-mapped CSR adjacency compiled from one snapshot graph.

    Node ids (any hashable) are mapped to dense integer indices in graph
    insertion order; the adjacency is stored as the classic
    ``indptr``/``indices``/``data`` triple with each row's entries sorted
    by neighbor index (deterministic tie ordering).  Undirected graphs
    store both directions explicitly, so scipy always runs in directed
    mode and explicit zero-weight edges stay edges.

    The per-entry edge-attribute dicts are retained (by reference) so
    :meth:`refresh_weights` can recompute ``data`` in place after an
    in-place attribute refresh (e.g.
    :meth:`~repro.core.network.OpenSpaceNetwork.refresh_edge_weights`)
    without rebuilding the structure.
    """

    __slots__ = ("nodes", "index", "indptr", "indices", "data",
                 "_edge_dicts", "_weight", "_matrix", "_sp_cache")

    def __init__(self, nodes: List[Hashable], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray,
                 edge_dicts: List[dict], weight: WeightSpec):
        self.nodes = nodes
        self.index: Dict[Hashable, int] = {n: i for i, n in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._edge_dicts = edge_dicts
        self._weight = weight
        self._matrix = None
        self._sp_cache: Dict[Hashable, "ShortestPaths"] = {}

    @classmethod
    def from_graph(cls, graph, weight: WeightSpec = None,
                   exclude: Optional[Sequence[Hashable]] = None) -> "CsrAdjacency":
        """Compile a networkx graph (or DiGraph) into a CSR adjacency.

        Args:
            graph: The snapshot graph.  Edge attribute dicts are kept by
                reference for :meth:`refresh_weights`.
            weight: Cost model or ``(u, v, data)`` callable; a ``None``
                or non-finite return drops that edge (the QoS/adaptive
                routers use this to express admission filters).
            exclude: Node ids left out of the index map entirely
                (fault-masked elements): no index, no row, no entries.
        """
        excluded = frozenset(exclude or ())
        if excluded:
            nodes = [n for n in graph.nodes if n not in excluded]
        else:
            nodes = list(graph.nodes)
        index = {n: i for i, n in enumerate(nodes)}
        weight_fn = _weight_callable(weight)
        directed = bool(graph.is_directed())

        rows: List[int] = []
        cols: List[int] = []
        weights: List[float] = []
        dicts: List[dict] = []
        for u, v, data in graph.edges(data=True):
            iu = index.get(u)
            iv = index.get(v)
            if iu is None or iv is None or iu == iv:
                continue
            cost = weight_fn(u, v, data)
            if cost is None or not np.isfinite(cost):
                continue
            rows.append(iu)
            cols.append(iv)
            weights.append(float(cost))
            dicts.append((u, v, data))
            if not directed:
                rows.append(iv)
                cols.append(iu)
                weights.append(float(cost))
                dicts.append((v, u, data))

        count = len(nodes)
        row_arr = np.asarray(rows, dtype=np.int64)
        col_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(weights, dtype=np.float64)
        # Stable (row, col) sort = insertion-order rows, index-sorted
        # neighbors: the deterministic tie ordering the digests rely on.
        order = np.lexsort((col_arr, row_arr))
        row_arr = row_arr[order]
        col_arr = col_arr[order]
        data_arr = data_arr[order]
        edge_dicts = [dicts[k] for k in order]
        indptr = np.zeros(count + 1, dtype=np.int64)
        if row_arr.size:
            np.cumsum(np.bincount(row_arr, minlength=count), out=indptr[1:])
        return cls(nodes, indptr, col_arr.astype(np.int32, copy=False),
                   data_arr, edge_dicts, weight)

    # -- structure -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def entry_count(self) -> int:
        """Stored directed entries (2x the undirected edge count)."""
        return int(self.indices.shape[0])

    def __contains__(self, node: Hashable) -> bool:
        return node in self.index

    def matrix(self):
        """The scipy ``csr_matrix`` view over the weight arrays."""
        if not HAVE_SCIPY:
            raise RuntimeError("scipy unavailable; CSR backend disabled")
        if self._matrix is None:
            self._matrix = _scipy_csr_matrix(
                (self.data, self.indices, self.indptr),
                shape=(self.node_count, self.node_count),
            )
        return self._matrix

    def refresh_weights(self, weight: WeightSpec = None) -> int:
        """Recompute ``data`` in place from the live edge-attribute dicts.

        The structural arrays are untouched: this is the incremental
        path for "only link budgets moved".  Edges whose weight became
        inadmissible (``None``/non-finite) get ``inf`` — unreachable
        without a rebuild.

        Returns:
            The number of entries whose weight changed.
        """
        weight_fn = _weight_callable(weight if weight is not None
                                     else self._weight)
        changed = 0
        data = self.data
        for k, (u, v, entry) in enumerate(self._edge_dicts):
            cost = weight_fn(u, v, entry)
            value = float(cost) if cost is not None and np.isfinite(cost) \
                else np.inf
            if data[k] != value:
                data[k] = value
                changed += 1
        if changed:
            self._matrix = None
            self._sp_cache.clear()
        return changed

    def structure_clone(self, graph) -> "CsrAdjacency":
        """A new adjacency sharing this one's structure arrays.

        The incremental path for consecutive snapshots whose edge *set*
        did not change (the common mega-constellation epoch): the
        ``indptr``/``indices`` arrays and node table are reused by
        reference and only the weight array is recomputed, from
        ``graph``'s live edge-attribute dicts — no edge iteration, no
        lexsort.  ``graph`` must contain exactly the same nodes and
        edges as the graph this adjacency was built from (callers assert
        that via their snapshot delta); a missing edge raises
        ``KeyError``.  Weight callables are invoked with the orientation
        recorded at the original build, which is indistinguishable for
        the undirected snapshot graphs this is used on.
        """
        edges = graph.edges
        edge_dicts = [(u, v, edges[u, v]) for u, v, _old in self._edge_dicts]
        weight_fn = _weight_callable(self._weight)
        data = np.empty(len(edge_dicts), dtype=np.float64)
        for k, (u, v, entry) in enumerate(edge_dicts):
            cost = weight_fn(u, v, entry)
            data[k] = float(cost) if cost is not None and np.isfinite(cost) \
                else np.inf
        return CsrAdjacency(self.nodes, self.indptr, self.indices, data,
                            edge_dicts, self._weight)

    # -- shortest paths ------------------------------------------------

    def shortest_paths(self, sources: Sequence[Hashable]) -> "ShortestPaths":
        """Batched multi-source Dijkstra from every listed source.

        One ``scipy.sparse.csgraph.dijkstra`` call computes the full
        ``(len(sources), node_count)`` distance and predecessor
        matrices; unknown sources raise ``KeyError``.
        """
        source_list = list(sources)
        source_idx = np.asarray([self.index[s] for s in source_list],
                                dtype=np.int64)
        if not source_list:
            dist = np.empty((0, self.node_count), dtype=np.float64)
            pred = np.empty((0, self.node_count), dtype=np.int32)
            return ShortestPaths(self, source_list, dist, pred)
        dist, pred = _scipy_dijkstra(
            self.matrix(), directed=True, indices=source_idx,
            return_predecessors=True,
        )
        return ShortestPaths(self, source_list, dist, pred)

    def single_source(self, source: Hashable) -> "ShortestPaths":
        """Dijkstra from one source, memoized per adjacency.

        Repeated queries against the same snapshot (nearest-gateway
        scans, per-pair lookups) reuse the first computation; the cache
        is cleared by :meth:`refresh_weights`.
        """
        cached = self._sp_cache.get(source)
        if cached is None:
            cached = self.shortest_paths([source])
            self._sp_cache[source] = cached
        return cached

    def append_leaf_arrays(self, neighbor_indices: np.ndarray,
                           weights: np.ndarray,
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple for this adjacency plus one appended leaf node.

        The leaf takes index ``node_count`` — the maximum index — so its
        incoming entries land at the *end* of each neighbor row and its
        own row sits last: exactly the arrays
        :meth:`from_graph` would produce for the same graph with the
        leaf added after every existing node (the lexsorted ``(row,
        col)`` layout is preserved without re-sorting anything).  This
        is the vectorized augmentation step for user-terminal probes:
        base snapshot compiled once, one ``np.insert`` per probe batch.

        Args:
            neighbor_indices: Indices of the leaf's neighbors (need not
                be sorted; duplicates are a caller bug).
            weights: Edge weight per neighbor, aligned with
                ``neighbor_indices``.

        Returns:
            ``(indptr, indices, data)`` arrays over ``node_count + 1``
            nodes; the receiver's own arrays are never mutated.
        """
        neighbors = np.asarray(neighbor_indices, dtype=np.int64)
        weight_arr = np.asarray(weights, dtype=np.float64)
        order = np.argsort(neighbors, kind="stable")
        neighbors = neighbors[order]
        weight_arr = weight_arr[order]
        leaf = self.node_count
        # Entries toward the leaf append at each neighbor row's end.
        insert_at = self.indptr[neighbors + 1]
        indices = np.insert(self.indices, insert_at,
                            np.full(neighbors.shape[0], leaf, dtype=np.int32))
        data = np.insert(self.data, insert_at, weight_arr)
        # The leaf's own row (sorted neighbor indices) goes last.
        indices = np.concatenate(
            [indices, neighbors.astype(np.int32, copy=False)]
        )
        data = np.concatenate([data, weight_arr])
        counts = np.bincount(neighbors, minlength=leaf)
        indptr = np.empty(leaf + 2, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(
            np.concatenate([
                np.diff(self.indptr) + counts, [neighbors.shape[0]]
            ]),
            out=indptr[1:],
        )
        return indptr, indices, data


class ShortestPaths:
    """Distance + predecessor matrices with lazy path reconstruction.

    The result of one batched Dijkstra call: ``dist[i, j]`` is the cost
    from ``sources[i]`` to node index ``j`` (``inf`` when unreachable),
    ``pred[i, j]`` the predecessor index on that shortest-path tree.
    Paths are materialized only on request — the whole object is two
    numpy arrays until someone asks for a concrete route.
    """

    __slots__ = ("adjacency", "sources", "dist", "pred", "_row")

    def __init__(self, adjacency: CsrAdjacency, sources: List[Hashable],
                 dist: np.ndarray, pred: np.ndarray):
        self.adjacency = adjacency
        self.sources = sources
        self.dist = np.atleast_2d(dist)
        self.pred = np.atleast_2d(pred)
        self._row = {s: i for i, s in enumerate(sources)}

    def has_source(self, source: Hashable) -> bool:
        return source in self._row

    def distance(self, source: Hashable, target: Hashable) -> float:
        """Shortest-path cost, ``inf`` when unreachable or unknown."""
        row = self._row.get(source)
        col = self.adjacency.index.get(target)
        if row is None or col is None:
            return float("inf")
        return float(self.dist[row, col])

    def path(self, source: Hashable,
             target: Hashable) -> Optional[List[Hashable]]:
        """Reconstruct the shortest path, or ``None`` when unreachable."""
        row = self._row.get(source)
        col = self.adjacency.index.get(target)
        if row is None or col is None:
            return None
        if not np.isfinite(self.dist[row, col]):
            return None
        nodes = self.adjacency.nodes
        source_idx = self.adjacency.index[source]
        if col == source_idx:
            return [source]
        pred_row = self.pred[row]
        reversed_path = [col]
        cursor = col
        while cursor != source_idx:
            cursor = int(pred_row[cursor])
            if cursor == NO_PREDECESSOR:
                return None
            reversed_path.append(cursor)
        return [nodes[i] for i in reversed(reversed_path)]

    def reachable_targets(self, source: Hashable) -> List[Hashable]:
        """Targets with a finite-cost path from ``source`` (itself
        excluded), in index order."""
        row = self._row.get(source)
        if row is None:
            return []
        source_idx = self.adjacency.index[source]
        finite = np.isfinite(self.dist[row])
        if 0 <= source_idx < finite.shape[0]:
            finite[source_idx] = False
        nodes = self.adjacency.nodes
        return [nodes[int(col)] for col in np.nonzero(finite)[0]]

    def reachable_count(self, source: Hashable) -> int:
        """Number of reachable targets from ``source`` (itself excluded)."""
        row = self._row.get(source)
        if row is None:
            return 0
        finite = np.isfinite(self.dist[row])
        count = int(finite.sum())
        source_idx = self.adjacency.index[source]
        if finite[source_idx]:
            count -= 1
        return count


def block_diagonal_dijkstra(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    sources: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One multi-source Dijkstra over disjoint CSR blocks.

    Stacks the given ``(indptr, indices, data)`` triples into one
    block-diagonal matrix and runs a single
    ``scipy.sparse.csgraph.dijkstra`` with one source per block.  Because
    the blocks share no edges and every block's node indices are offset
    uniformly, each source's search never leaves its own block and its
    heap tie-ordering matches a standalone single-source run on that
    block alone — distances *and predecessors* per block are identical
    to ``len(blocks)`` separate calls, at one C-call's cost.

    Args:
        blocks: CSR triples (e.g. from
            :meth:`CsrAdjacency.append_leaf_arrays`); blocks may have
            different node counts.
        sources: Block-local source index, one per block.

    Returns:
        ``(dist, pred, offsets)``: the ``(len(blocks), total_nodes)``
        distance and predecessor matrices (row ``k`` is block ``k``'s
        source; columns are global indices) and the per-block node
        offsets.  Map a block-local node ``j`` of block ``k`` to global
        column ``offsets[k] + j``; predecessors are global indices with
        :data:`NO_PREDECESSOR` outside the tree.
    """
    if not HAVE_SCIPY:
        raise RuntimeError("scipy unavailable; CSR backend disabled")
    if len(blocks) != len(sources):
        raise ValueError(
            f"need one source per block, got {len(sources)} sources "
            f"for {len(blocks)} blocks"
        )
    if not blocks:
        return (np.empty((0, 0)), np.empty((0, 0), dtype=np.int32),
                np.empty(0, dtype=np.int64))
    node_counts = np.array([b[0].shape[0] - 1 for b in blocks],
                           dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(node_counts[:-1])])
    total = int(node_counts.sum())
    indptr_parts = [blocks[0][0]]
    indptr_parts.extend(
        block[0][1:] + int(end)
        for block, end in zip(
            blocks[1:], np.cumsum([b[0][-1] for b in blocks[:-1]])
        )
    )
    indptr = np.concatenate(indptr_parts)
    indices = np.concatenate([
        block[1].astype(np.int64, copy=False) + offset
        for block, offset in zip(blocks, offsets)
    ])
    data = np.concatenate([block[2] for block in blocks])
    matrix = _scipy_csr_matrix((data, indices, indptr), shape=(total, total))
    source_idx = offsets + np.asarray(sources, dtype=np.int64)
    dist, pred = _scipy_dijkstra(
        matrix, directed=True, indices=source_idx, return_predecessors=True,
    )
    return np.atleast_2d(dist), np.atleast_2d(pred), offsets


def shortest_path_csr(graph, source: Hashable, target: Hashable,
                      weight: WeightSpec = None) -> Optional[List[Hashable]]:
    """One-shot single-pair shortest path through the CSR backend.

    Builds the adjacency, runs one single-source Dijkstra, reconstructs
    the path.  Layers that issue many queries against one snapshot
    should build a :class:`CsrAdjacency` once instead.
    """
    if source not in graph or target not in graph:
        return None
    adjacency = CsrAdjacency.from_graph(graph, weight=weight)
    return adjacency.single_source(source).path(source, target)
