"""Edge cost models and end-to-end route metrics.

Routing operates over :class:`networkx.Graph` snapshots whose edges carry
``delay_s`` and ``capacity_bps`` (set by the ISL topology builder and the
ground-segment attachment code) and optionally ``queue_delay_s``,
``tariff_per_gb``, and ``owner``.  The cost model turns those attributes
into a single additive edge weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import networkx as nx


@dataclass(frozen=True)
class EdgeCostModel:
    """Additive edge-cost weights.

    ``cost = delay_s + queue_delay_s * queue_weight
           + tariff_per_gb * tariff_weight
           + congestion_penalty(capacity)``

    Attributes:
        queue_weight: Scales reported queueing delay into cost seconds.
        tariff_weight: Seconds of cost per $/GB of tariff — expresses how
            much latency an operator will trade to avoid visitor fees.
        min_capacity_bps: Edges below this capacity get the bottleneck
            penalty (proxy for serialization/congestion on thin RF ISLs).
        bottleneck_penalty_s: Cost added to sub-threshold edges.
    """

    queue_weight: float = 1.0
    tariff_weight: float = 0.0
    min_capacity_bps: float = 0.0
    bottleneck_penalty_s: float = 0.0

    def edge_cost(self, data: dict) -> float:
        """Cost of one edge from its attribute dict."""
        cost = float(data.get("delay_s", 0.0))
        cost += self.queue_weight * float(data.get("queue_delay_s", 0.0))
        cost += self.tariff_weight * float(data.get("tariff_per_gb", 0.0))
        capacity = float(data.get("capacity_bps", float("inf")))
        if capacity < self.min_capacity_bps:
            cost += self.bottleneck_penalty_s
        return cost

    def weight_fn(self):
        """A networkx-compatible ``weight(u, v, data)`` callable."""
        def weight(_u, _v, data):
            return self.edge_cost(data)
        return weight


#: Pure propagation-delay cost (the paper's Figure 2(b) metric).
PROPAGATION_ONLY = EdgeCostModel()


@dataclass(frozen=True)
class RouteMetrics:
    """End-to-end metrics of one concrete path.

    Attributes:
        path: Node sequence, source first.
        propagation_delay_s: Sum of per-hop propagation delays.
        queue_delay_s: Sum of per-hop queueing delays.
        bottleneck_capacity_bps: Minimum edge capacity along the path.
        total_tariff_per_gb: Sum of per-hop visitor tariffs.
        hop_count: Number of edges.
        operators: Distinct edge owners traversed, in path order.
    """

    path: List[str]
    propagation_delay_s: float
    queue_delay_s: float
    bottleneck_capacity_bps: float
    total_tariff_per_gb: float
    hop_count: int
    operators: List[str]

    @property
    def total_delay_s(self) -> float:
        return self.propagation_delay_s + self.queue_delay_s

    @property
    def total_delay_ms(self) -> float:
        return self.total_delay_s * 1000.0


def path_metrics(graph: nx.Graph, path: Sequence[str]) -> RouteMetrics:
    """Compute :class:`RouteMetrics` for a node sequence.

    Raises:
        ValueError: When the path is shorter than one edge or uses an edge
            absent from the graph.
    """
    if len(path) < 2:
        raise ValueError(f"path needs at least two nodes, got {list(path)}")
    propagation = 0.0
    queueing = 0.0
    tariff = 0.0
    bottleneck = float("inf")
    operators: List[str] = []
    for u, v in zip(path[:-1], path[1:]):
        data = graph.get_edge_data(u, v)
        if data is None:
            raise ValueError(f"edge {u!r}-{v!r} not present in graph")
        propagation += float(data.get("delay_s", 0.0))
        queueing += float(data.get("queue_delay_s", 0.0))
        tariff += float(data.get("tariff_per_gb", 0.0))
        bottleneck = min(bottleneck, float(data.get("capacity_bps", float("inf"))))
        owner = data.get("owner")
        if owner is not None and (not operators or operators[-1] != owner):
            operators.append(owner)
    return RouteMetrics(
        path=list(path),
        propagation_delay_s=propagation,
        queue_delay_s=queueing,
        bottleneck_capacity_bps=bottleneck,
        total_tariff_per_gb=tariff,
        hop_count=len(path) - 1,
        operators=operators,
    )


def shortest_path(graph: nx.Graph, source: str, target: str,
                  cost_model: Optional[EdgeCostModel] = None,
                  backend: Optional[str] = None) -> Optional[List[str]]:
    """Dijkstra shortest path under a cost model; None when unreachable.

    Args:
        backend: Routing backend name (``"csr"`` or ``"networkx"``);
            ``None`` uses the process default (CSR when scipy is
            available).
    """
    from repro.routing import csr as _csr

    model = cost_model or PROPAGATION_ONLY
    if _csr.resolve_backend(backend) == _csr.BACKEND_CSR:
        return _csr.shortest_path_csr(graph, source, target, weight=model)
    try:
        return nx.dijkstra_path(graph, source, target, weight=model.weight_fn())
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
