"""Load-adaptive routing (paper Discussion, Q2).

"Peak loads at certain ground stations may necessitate re-routing of
traffic to a ground station that is further away but is idle; in this
case, a computation of the trade-off between longer routing distance vs
queuing and job completion times is necessary at runtime."

The :class:`LoadAdaptiveRouter` implements that runtime trade-off: it
tracks per-edge committed load (from the flows currently routed), prices
each edge by propagation delay plus a congestion term that grows with
utilization, and picks the cheapest gateway-bound path — sending new flows
to farther-but-idle gateways exactly when the paper says it should.

The :class:`StaticNearestRouter` is the proactive comparator: always the
propagation-shortest path, blind to load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.routing.csr import (
    BACKEND_CSR,
    CsrAdjacency,
    delay_weight,
    resolve_backend,
)
from repro.simulation.flowsim import ActiveFlow
from repro.simulation.traffic import FlowSpec


def _edge_key(u: str, v: str) -> Tuple[str, str]:
    return (u, v) if u <= v else (v, u)


def _gateway_nodes(graph: nx.Graph) -> List[str]:
    return [
        node for node, data in graph.nodes(data=True)
        if data.get("kind") == "ground_station"
    ]


def _committed_load(active_flows: Sequence[ActiveFlow],
                    demand_bps: float = None) -> Dict[Tuple[str, str], float]:
    """Current committed rate per edge from the active flow set."""
    load: Dict[Tuple[str, str], float] = {}
    for flow in active_flows:
        rate = flow.rate_bps if flow.rate_bps > 0.0 else (demand_bps or 0.0)
        for edge in flow.edges:
            load[edge] = load.get(edge, 0.0) + rate
    return load


def _best_gateway_path(graph: nx.Graph, source: str,
                       gateways: Sequence[str], weight,
                       backend: Optional[str]) -> Optional[List[str]]:
    """Cheapest source→gateway path, first-listed gateway winning ties.

    One single-source Dijkstra covers every candidate gateway under the
    CSR backend; the networkx path runs one search per gateway (the
    original behavior and digest reference).  Both compare costs with
    strict ``<`` in gateway order, so selection is identical.
    """
    if resolve_backend(backend) == BACKEND_CSR:
        csr_weight = delay_weight if weight == "delay_s" else weight
        adjacency = CsrAdjacency.from_graph(graph, weight=csr_weight)
        paths = adjacency.single_source(source)
        best_gateway: Optional[str] = None
        best_cost = float("inf")
        for gateway in gateways:
            cost = paths.distance(source, gateway)
            if cost < best_cost:
                best_cost, best_gateway = cost, gateway
        if best_gateway is None:
            return None
        return paths.path(source, best_gateway)
    best_path: Optional[List[str]] = None
    best_cost = float("inf")
    for gateway in gateways:
        try:
            cost, path = nx.single_source_dijkstra(
                graph, source, gateway, weight=weight
            )
        except nx.NetworkXNoPath:
            continue
        if cost < best_cost:
            best_cost, best_path = cost, path
    return best_path


@dataclass
class StaticNearestRouter:
    """Proactive baseline: propagation-shortest path to the nearest gateway.

    This is what precomputation from public orbital knowledge gives you —
    correct geometry, no view of runtime load.
    """

    backend: Optional[str] = None

    def __call__(self, graph: nx.Graph, flow: FlowSpec,
                 active_flows: List[ActiveFlow]) -> Optional[List[str]]:
        gateways = _gateway_nodes(graph)
        if flow.user_id not in graph or not gateways:
            return None
        return _best_gateway_path(graph, flow.user_id, gateways,
                                  "delay_s", self.backend)


@dataclass
class LoadAdaptiveRouter:
    """Runtime congestion-aware gateway selection.

    Edge cost = ``delay_s + congestion_weight * delay_s * u / (1 - u)``
    where ``u`` is the edge's committed utilization — the M/M/1-shaped
    penalty makes nearly-full edges effectively infinite, diverting new
    flows to idle detours.

    Attributes:
        congestion_weight: Scales the congestion term against propagation
            delay (1.0 = a fully-loaded edge is much worse than any detour).
        assumed_flow_rate_bps: Rate assumed for flows whose fair share is
            not yet known (fresh arrivals).
        background_load_bps: Standing per-edge load (canonical sorted
            keys) added under the committed flows — the fluid demand
            plane's allocation (``CongestionState.background_load_bps``),
            so per-flow admissions route around links aggregate demand
            already filled.
    """

    congestion_weight: float = 1.0
    assumed_flow_rate_bps: float = 10e6
    background_load_bps: Optional[Dict[Tuple[str, str], float]] = None
    backend: Optional[str] = None
    #: Diagnostic: how many admissions diverted from the nearest gateway.
    diversions: int = field(default=0)

    def __call__(self, graph: nx.Graph, flow: FlowSpec,
                 active_flows: List[ActiveFlow]) -> Optional[List[str]]:
        gateways = _gateway_nodes(graph)
        if flow.user_id not in graph or not gateways:
            return None
        load = _committed_load(active_flows, self.assumed_flow_rate_bps)
        if self.background_load_bps:
            for edge, rate in self.background_load_bps.items():
                load[edge] = load.get(edge, 0.0) + rate

        def weight(u, v, data):
            delay = float(data.get("delay_s", 0.0))
            capacity = float(data.get("capacity_bps", float("inf")))
            if capacity <= 0.0:
                return None  # unusable edge
            utilization = min(0.999, load.get(_edge_key(u, v), 0.0) / capacity)
            congestion = (
                self.congestion_weight * delay * utilization
                / (1.0 - utilization)
            )
            return delay + congestion

        best_path = _best_gateway_path(graph, flow.user_id, gateways,
                                       weight, self.backend)
        if best_path is None:
            return None
        nearest = StaticNearestRouter(backend=self.backend)(graph, flow, [])
        if nearest is not None and best_path[-1] != nearest[-1]:
            self.diversions += 1
        return best_path


def gateway_load_profile(result_flows: Sequence,
                         graph: nx.Graph) -> Dict[str, int]:
    """Completed flows terminated per gateway (ablation diagnostic)."""
    gateways = set(_gateway_nodes(graph))
    profile: Dict[str, int] = {}
    for record in result_flows:
        if not record.completed or not record.path:
            continue
        gateway = record.path[-1]
        if gateway in gateways:
            profile[gateway] = profile.get(gateway, 0) + 1
    return profile
