"""Routing over the time-varying OpenSpace network.

Three routing regimes from the paper:

* **Proactive** (:mod:`repro.routing.proactive`) — because orbital paths
  are public and predictable, "the topology of the satellite network is
  both known and public, allowing for pre-computation of static routes
  between any set of satellites and fixed ground infrastructure."
* **Heterogeneity/QoS-aware** (:mod:`repro.routing.qos`) — "satellites need
  to make quality-of-service-aware routing decisions that take into account
  the nature of the network, including available bandwidths of the ISLs",
  plus queueing delays, visitor tariffs, and power constraints.
* **Distributed on-demand** (:mod:`repro.routing.distributed`) — the
  reactive baseline from the LEO routing literature the paper cites.

All regimes share the compiled-sparse shortest-path backend
(:mod:`repro.routing.csr`, batched multi-source Dijkstra over CSR
arrays via scipy) with the original networkx implementation kept as a
fallback and digest reference; see :func:`repro.routing.csr.set_default_backend`.
"""

from repro.routing.csr import (
    BACKEND_CSR,
    BACKEND_NETWORKX,
    CsrAdjacency,
    ShortestPaths,
    available_backends,
    default_backend,
    resolve_backend,
    set_default_backend,
    shortest_path_csr,
)
from repro.routing.metrics import EdgeCostModel, RouteMetrics, path_metrics
from repro.routing.proactive import ProactiveRouter, RoutingTable, StaticRoute
from repro.routing.qos import QosRequirement, QosRouter
from repro.routing.distributed import OnDemandRouter, RouteDiscoveryResult
from repro.routing.kpaths import k_shortest_paths
from repro.routing.adaptive import (
    LoadAdaptiveRouter,
    StaticNearestRouter,
    gateway_load_profile,
)
from repro.routing.timeexpanded import StoreAndForwardRoute, TimeExpandedRouter
from repro.routing.stability import EpochChurn, StabilityReport, route_churn

__all__ = [
    "BACKEND_CSR",
    "BACKEND_NETWORKX",
    "CsrAdjacency",
    "ShortestPaths",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
    "shortest_path_csr",
    "EdgeCostModel",
    "RouteMetrics",
    "path_metrics",
    "ProactiveRouter",
    "RoutingTable",
    "StaticRoute",
    "QosRequirement",
    "QosRouter",
    "OnDemandRouter",
    "RouteDiscoveryResult",
    "k_shortest_paths",
    "LoadAdaptiveRouter",
    "StaticNearestRouter",
    "gateway_load_profile",
    "StoreAndForwardRoute",
    "TimeExpandedRouter",
    "EpochChurn",
    "StabilityReport",
    "route_churn",
]
