"""Wiring fluid congestion outward: routing costs, health, settlement.

The fluid fixed point (:mod:`repro.demand.fluid`) produces per-link
utilization.  This module converts that into the shapes the rest of the
system consumes:

* queueing-delay inflation written back onto snapshot edges, so the
  metric-aware routers (:class:`repro.routing.qos.QosRouter` cost
  models) price congested links higher;
* background-load maps for :class:`repro.routing.adaptive
  .LoadAdaptiveRouter`, so per-flow adaptive routing avoids links the
  fluid plane already filled;
* utilization samples for the :class:`repro.obs.health.HealthPlane`
  link series (the PR 6 flight-recorder plane);
* transit volumes filed into :class:`repro.economics.ledger
  .TrafficLedger` and settled into operator revenue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.demand.fluid import MAX_UTILIZATION, FluidResult
from repro.economics.ledger import TrafficLedger
from repro.economics.settlement import Invoice, RateCard, SettlementEngine


@dataclass
class CongestionState:
    """Per-link congestion derived from one fluid fixed point.

    All maps use canonical sorted ``(u, v)`` keys in sorted iteration
    order (deterministic exports).

    Attributes:
        utilization: ``(u, v) -> load / capacity`` for every route edge.
        load_bps: ``(u, v) -> allocated bits/s`` for loaded edges.
        queue_delay_s: ``(u, v) -> added M/M/1 queueing delay`` at the
            link's utilization (``delay * u / (1 - u)``, utilization
            clamped below 1 so saturated links stay finite).
    """

    utilization: Dict[Tuple[str, str], float]
    load_bps: Dict[Tuple[str, str], float]
    queue_delay_s: Dict[Tuple[str, str], float]

    def inflate_queue_delays(self, graph) -> int:
        """Add congestion queueing delay onto snapshot edges, in place.

        Edges accumulate into their ``queue_delay_s`` attribute (created
        at 0.0 for space links, which normally omit it), so cost models
        with a ``queue_weight`` price congestion without any new edge
        schema.  Returns the number of edges touched.
        """
        touched = 0
        for (u, v), added in self.queue_delay_s.items():
            if added <= 0.0 or not graph.has_edge(u, v):
                continue
            data = graph[u][v]
            data["queue_delay_s"] = data.get("queue_delay_s", 0.0) + added
            touched += 1
        return touched

    def background_load_bps(self) -> Dict[Tuple[str, str], float]:
        """Loaded links' absolute bits/s, for ``LoadAdaptiveRouter``."""
        return {key: load for key, load in self.load_bps.items()
                if load > 0.0}


def congestion_state(result: FluidResult) -> CongestionState:
    """Derive the :class:`CongestionState` of one fluid fixed point."""
    utilization = {}
    load_bps = {}
    queue_delay = {}
    order = sorted(range(len(result.edge_keys)),
                   key=lambda slot: result.edge_keys[slot])
    for slot in order:
        key = result.edge_keys[slot]
        capacity = float(result.edge_capacity_bps[slot])
        load = float(result.edge_load_bps[slot])
        fraction = (load / capacity
                    if np.isfinite(capacity) and capacity > 0.0 else 0.0)
        utilization[key] = fraction
        if load > 0.0:
            load_bps[key] = load
        clamped = min(fraction, MAX_UTILIZATION)
        queue_delay[key] = (float(result.edge_delay_s[slot])
                            * clamped / (1.0 - clamped))
    return CongestionState(utilization=utilization, load_bps=load_bps,
                           queue_delay_s=queue_delay)


@dataclass
class DemandSettlement:
    """Revenue outcome of settling one fluid interval.

    Attributes:
        invoices: Per (carrier, customer) bills.
        revenue_usd: Total billed across all invoices.
        carried_gb: Total billable carried volume.
        net_positions: Per-ISP net cash position.
    """

    invoices: List[Invoice]
    revenue_usd: float
    carried_gb: float
    net_positions: Dict[str, float]


def settle_demand(result: FluidResult, graph, duration_s: float,
                  rate_cards: Optional[Dict[str, RateCard]] = None,
                  segment_kind: str = "gateway",
                  time_s: float = 0.0) -> DemandSettlement:
    """File fluid-interval transit into a ledger and settle it.

    Each routed cell's allocated rate over ``duration_s`` becomes one
    path transfer: the cell's home provider is the source ISP, and the
    owners of the nodes along its serving route are the carriers
    ("tracked by all parties involved").  Carrying an ISP's own traffic
    is not billable, so only cross-operator transit produces revenue.

    Args:
        result: A converged fluid fixed point.
        graph: The snapshot the fixed point was computed on (provides
            node ``owner`` attributes).
        duration_s: Interval the fluid rates were sustained for.
        rate_cards: Carrier rate cards (default cards otherwise).
        segment_kind: Technology class used for billing.
        time_s: Ledger timestamp for the interval.

    Returns:
        The settled interval.
    """
    if duration_s <= 0.0:
        raise ValueError(f"duration must be > 0, got {duration_s}")
    ledger = TrafficLedger()
    for index, cell_id in enumerate(result.cell_ids):
        path = result.paths[index]
        if path is None or len(path) < 2:
            continue
        rate = float(result.rate_bps[index])
        if rate <= 0.0:
            continue
        gigabytes = rate * duration_s / 8.0 / 1e9
        source = graph.nodes[path[0]].get("owner", "unknown")
        carriers = [
            graph.nodes[node].get("owner", "unknown") for node in path[1:]
        ]
        ledger.file_path_transfer(
            transfer_id=f"{cell_id}@{time_s:.0f}",
            source_isp=source, carrier_path=carriers,
            gigabytes=gigabytes, time_s=time_s,
        )
    engine = SettlementEngine(rate_cards=rate_cards)
    invoices = engine.invoices_from_ledger(ledger, segment_kind=segment_kind)
    return DemandSettlement(
        invoices=invoices,
        revenue_usd=float(sum(i.amount_usd for i in invoices)),
        carried_gb=float(sum(i.gigabytes for i in invoices)),
        net_positions=engine.net_positions(invoices),
    )


def peak_statistics(result: FluidResult) -> Dict[str, float]:
    """Summary congestion statistics for one fixed point.

    Returns mean/peak utilization over loaded links and the share of
    loaded links above 90% utilization (the congestion headline numbers
    the demand sweep reports).
    """
    fractions = np.asarray(
        [f for f in result.utilization.values() if f > 0.0]
    )
    if fractions.size == 0:
        return {"mean_utilization": 0.0, "peak_utilization": 0.0,
                "hot_link_share": 0.0}
    return {
        "mean_utilization": float(fractions.mean()),
        "peak_utilization": float(fractions.max()),
        "hot_link_share": float((fractions > 0.9).mean()),
    }
