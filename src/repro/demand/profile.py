"""Demand profiles: diurnal load curves and heavy-tail QoS flow mixes.

Subscriber load is not flat: traffic follows the sun, with a midday
shoulder and an evening peak in *local solar time*, so a constellation
always sees a moving longitude band of peak demand.  The curve here is a
two-Gaussian day shape (midday + evening) over a constant floor,
normalized so the evening peak is exactly 1.0 — offered loads scale
directly by it.

Per-user demand comes from heavy-tailed flow-size mixes per QoS class
(lognormal or bounded Pareto, the standard traffic shapes): the fluid
engine consumes each class's *analytic mean rate* (fluid approximation),
while :meth:`QosClassDemand.sample_flow_sizes` exposes the same
distribution for flow-level simulators and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Diurnal curve shape: (center local hour, sigma hours, amplitude).
_DIURNAL_PEAKS: Tuple[Tuple[float, float, float], ...] = (
    (13.0, 3.5, 0.55),   # midday shoulder
    (20.5, 2.8, 1.0),    # evening peak
)
_DIURNAL_FLOOR = 0.25


def local_solar_hour(hour_utc: float, lon_deg) -> np.ndarray:
    """Local solar hour(s) for longitude(s), in ``[0, 24)``."""
    return np.asarray((hour_utc + np.asarray(lon_deg) / 15.0) % 24.0)


def _wrapped_hours(hours: np.ndarray, center: float) -> np.ndarray:
    """Signed hour distance to ``center`` on the 24 h circle."""
    return (hours - center + 12.0) % 24.0 - 12.0


def diurnal_factor(local_hour) -> np.ndarray:
    """Load multiplier at local solar hour(s); peak value is 1.0.

    Vectorized over any array shape; scalar input returns a 0-d array.
    """
    hours = np.asarray(local_hour, dtype=np.float64)
    raw = np.full_like(hours, _DIURNAL_FLOOR)
    for center, sigma, amplitude in _DIURNAL_PEAKS:
        delta = _wrapped_hours(hours, center)
        raw = raw + amplitude * np.exp(-(delta ** 2) / (2.0 * sigma ** 2))
    # Normalize so the curve's maximum over the day is exactly 1.
    probe = np.arange(0.0, 24.0, 1.0 / 60.0)
    peak = np.full_like(probe, _DIURNAL_FLOOR)
    for center, sigma, amplitude in _DIURNAL_PEAKS:
        delta = _wrapped_hours(probe, center)
        peak = peak + amplitude * np.exp(-(delta ** 2) / (2.0 * sigma ** 2))
    return raw / peak.max()


@dataclass(frozen=True)
class QosClassDemand:
    """One QoS class's share of users and its flow-size mix.

    Attributes:
        name: Service class name (matches the QoS router's classes).
        user_share: Fraction of subscribers in this class.
        flows_per_user_hour: Mean flow arrivals per active subscriber.
        size_distribution: ``"lognormal"`` or ``"pareto"`` (bounded
            below at ``pareto_min_mb``; requires ``pareto_alpha > 1``
            so the mean exists).
        mean_flow_mb: Mean flow size for the lognormal mix.
        sigma: Lognormal shape (heavier tail for larger sigma).
        pareto_alpha: Pareto tail index (``> 1``).
        pareto_min_mb: Pareto scale (minimum flow size).
    """

    name: str
    user_share: float
    flows_per_user_hour: float
    size_distribution: str = "lognormal"
    mean_flow_mb: float = 20.0
    sigma: float = 1.2
    pareto_alpha: float = 1.6
    pareto_min_mb: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.user_share <= 1.0:
            raise ValueError(
                f"user share must be in [0, 1], got {self.user_share}"
            )
        if self.flows_per_user_hour < 0.0:
            raise ValueError(
                f"flow rate must be >= 0, got {self.flows_per_user_hour}"
            )
        if self.size_distribution not in ("lognormal", "pareto"):
            raise ValueError(
                f"unknown size distribution {self.size_distribution!r}"
            )
        if self.size_distribution == "pareto" and self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto alpha must be > 1 for a finite mean, "
                f"got {self.pareto_alpha}"
            )

    def mean_flow_bytes(self) -> float:
        """Analytic mean flow size in bytes."""
        if self.size_distribution == "pareto":
            mean_mb = (self.pareto_alpha * self.pareto_min_mb
                       / (self.pareto_alpha - 1.0))
        else:
            mean_mb = self.mean_flow_mb
        return mean_mb * 1e6

    def mean_offered_bps_per_user(self) -> float:
        """Mean offered rate per subscriber of this class, bits/s."""
        return (self.flows_per_user_hour * self.mean_flow_bytes() * 8.0
                / 3600.0)

    def sample_flow_sizes(self, rng: np.random.Generator,
                          count: int) -> np.ndarray:
        """Draw flow sizes (bytes) from the class's heavy-tail mix."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self.size_distribution == "pareto":
            # numpy's pareto is the Lomax form; shift+scale to classic.
            draws = (1.0 + rng.pareto(self.pareto_alpha, size=count))
            return draws * self.pareto_min_mb * 1e6
        mu = math.log(self.mean_flow_mb * 1e6) - self.sigma ** 2 / 2.0
        return rng.lognormal(mu, self.sigma, size=count)


#: Default subscriber mix: mostly best-effort lognormal traffic, a
#: Pareto-tailed standard class, and a small premium class of large
#: flows — shares match the per-user generator's historical QoS mix.
DEFAULT_QOS_MIX: Tuple[QosClassDemand, ...] = (
    QosClassDemand("best_effort", 0.6, 6.0, "lognormal",
                   mean_flow_mb=20.0, sigma=1.2),
    QosClassDemand("standard", 0.3, 8.0, "pareto",
                   pareto_alpha=1.6, pareto_min_mb=8.0),
    QosClassDemand("premium", 0.1, 4.0, "lognormal",
                   mean_flow_mb=120.0, sigma=1.0),
)


def validate_qos_mix(qos_mix: Sequence[QosClassDemand]) -> None:
    """Reject mixes whose user shares do not sum to 1."""
    total = sum(cls.user_share for cls in qos_mix)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"QoS mix user shares sum to {total}, not 1")


def mean_demand_bps_per_user(
        qos_mix: Sequence[QosClassDemand] = DEFAULT_QOS_MIX) -> float:
    """Mix-weighted mean offered rate per subscriber at peak (bits/s)."""
    validate_qos_mix(qos_mix)
    return sum(cls.user_share * cls.mean_offered_bps_per_user()
               for cls in qos_mix)


def offered_load_bps(users: np.ndarray, lon_deg: np.ndarray,
                     hour_utc: float,
                     qos_mix: Sequence[QosClassDemand] = DEFAULT_QOS_MIX,
                     ) -> np.ndarray:
    """Per-cell offered load at one UTC instant, bits/s.

    ``users`` and ``lon_deg`` are parallel per-cell arrays; each cell's
    load is its subscriber count times the mix-weighted mean per-user
    rate, scaled by the diurnal factor at the cell's local solar time.
    """
    users = np.asarray(users, dtype=np.float64)
    if users.shape != np.asarray(lon_deg).shape:
        raise ValueError("users and lon_deg must be parallel arrays")
    factor = diurnal_factor(local_solar_hour(hour_utc, lon_deg))
    return users * mean_demand_bps_per_user(qos_mix) * factor
