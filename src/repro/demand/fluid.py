"""The vectorized fluid-flow traffic engine.

Millions of users become array operations: each loaded ground cell is
one *aggregate flow* from its cell terminal to its serving gateway.
Routes come from one batched multi-source Dijkstra over the snapshot's
CSR adjacency (every cell in a single ``scipy.sparse.csgraph`` call);
per-link offered load is a scatter-add over the flow→edge incidence
arrays; and rates come from a demand-capped max-min-fair waterfilling
fixed point — the same progressive-filling fairness the flow-level
simulator (:func:`repro.simulation.flowsim.max_min_fair_rates`)
computes per flow, evaluated here as whole-array steps.

Each waterfilling iteration either freezes every demand-limited flow
below the current water level at once or resolves one bottleneck link,
so the loop runs for at most ``flows`` iterations and in practice for
about the number of congested links.  The fixed point is verified on
exit: no link over capacity, and no unfrozen flow left below its fair
share (``converged``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs as _obs
from repro.routing.csr import (
    BACKEND_CSR,
    CsrAdjacency,
    delay_weight,
    resolve_backend,
)

#: Utilization is clamped below 1 when deriving queueing-delay
#: inflation so saturated links price as very expensive, not infinite.
MAX_UTILIZATION = 0.99


def edge_key(u: str, v: str) -> Tuple[str, str]:
    """Canonical undirected edge key (sorted node pair)."""
    return (u, v) if u <= v else (v, u)


@dataclass
class FluidResult:
    """Outcome of one fluid fixed-point evaluation.

    Flow-indexed arrays are parallel to ``cell_ids``; edge-indexed
    arrays are parallel to ``edge_keys`` (the union of edges on any
    selected route, deterministic first-use order).

    Attributes:
        cell_ids: The aggregate flows, in input order.
        demand_bps: Offered load per flow.
        rate_bps: Allocated max-min-fair rate per flow (0 when
            unrouted).
        routed: Whether a gateway route existed for each flow.
        paths: Selected node path per flow (None when unrouted).
        edge_keys: Canonical (u, v) per edge slot.
        edge_capacity_bps: Link capacity per edge slot.
        edge_load_bps: Allocated load per edge slot.
        edge_offered_bps: Offered (pre-waterfilling) load per edge slot.
        edge_delay_s: Propagation delay per edge slot.
        iterations: Waterfilling iterations used.
        converged: Fixed point reached and verified.
    """

    cell_ids: List[str]
    demand_bps: np.ndarray
    rate_bps: np.ndarray
    routed: np.ndarray
    paths: List[Optional[List[str]]]
    edge_keys: List[Tuple[str, str]]
    edge_capacity_bps: np.ndarray
    edge_load_bps: np.ndarray
    edge_offered_bps: np.ndarray
    edge_delay_s: np.ndarray
    iterations: int
    converged: bool
    #: Flow→edge incidence: entry k says flow ``entry_flow[k]`` crosses
    #: edge slot ``entry_edge[k]``.
    entry_flow: np.ndarray = field(repr=False, default=None)
    entry_edge: np.ndarray = field(repr=False, default=None)

    @property
    def utilization(self) -> Dict[Tuple[str, str], float]:
        """Allocated utilization per link, ``(u, v) -> load/capacity``."""
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                np.isfinite(self.edge_capacity_bps)
                & (self.edge_capacity_bps > 0.0),
                self.edge_load_bps / self.edge_capacity_bps, 0.0,
            )
        return {
            key: float(fraction)
            for key, fraction in zip(self.edge_keys, fractions)
        }

    @property
    def served_fraction(self) -> float:
        """Allocated / offered load, over all flows (1.0 when idle)."""
        offered = float(self.demand_bps.sum())
        if offered <= 0.0:
            return 1.0
        return float(self.rate_bps.sum()) / offered

    def delay_inflation(self) -> np.ndarray:
        """Per-flow M/M/1 route-delay inflation (1.0 = uncongested).

        Each link's propagation delay inflates by ``1 / (1 - u)`` at its
        allocated utilization; a flow's inflation is the ratio of its
        congested to uncongested route delay.  Unrouted flows report 1.
        """
        flows = len(self.cell_ids)
        if flows == 0:
            return np.zeros(0)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                np.isfinite(self.edge_capacity_bps)
                & (self.edge_capacity_bps > 0.0),
                self.edge_load_bps / self.edge_capacity_bps, 0.0,
            )
        util = np.minimum(util, MAX_UTILIZATION)
        inflated = self.edge_delay_s / (1.0 - util)
        base = np.bincount(self.entry_flow,
                           weights=self.edge_delay_s[self.entry_edge],
                           minlength=flows)
        congested = np.bincount(self.entry_flow,
                                weights=inflated[self.entry_edge],
                                minlength=flows)
        ratio = np.ones(flows)
        positive = base > 0.0
        ratio[positive] = congested[positive] / base[positive]
        return ratio


def weighted_percentile(values: np.ndarray, weights: np.ndarray,
                        fraction: float) -> float:
    """Weight-cumulative percentile (deterministic, stable sort)."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size == 0 or weights.sum() <= 0.0:
        return float("nan")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    order = np.argsort(values, kind="stable")
    cumulative = np.cumsum(weights[order])
    index = int(np.searchsorted(cumulative, fraction * cumulative[-1]))
    return float(values[order[min(index, values.size - 1)]])


def map_cells_to_routes(graph, cell_ids: Sequence[str],
                        backend: Optional[str] = None,
                        ) -> List[Optional[List[str]]]:
    """Serving route (cell → cheapest gateway) for every cell at once.

    Under the CSR backend this is one batched multi-source Dijkstra for
    the whole cell set, then an argmin over the gateway columns of the
    distance matrix (first-listed gateway wins ties, matching the
    per-source routers).  The networkx fallback runs one single-source
    search per cell.

    Returns:
        One node path per cell id, ``None`` where no gateway is
        reachable.
    """
    gateways = [
        node for node, data in graph.nodes(data=True)
        if data.get("kind") == "ground_station"
    ]
    cell_list = list(cell_ids)
    if not gateways or not cell_list:
        return [None] * len(cell_list)
    if resolve_backend(backend) == BACKEND_CSR:
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        known = [cell for cell in cell_list if cell in adjacency]
        paths_by_cell: Dict[str, Optional[List[str]]] = {}
        if known:
            shortest = adjacency.shortest_paths(known)
            gateway_cols = np.asarray(
                [adjacency.index[g] for g in gateways], dtype=np.int64
            )
            distances = shortest.dist[:, gateway_cols]
            best = np.argmin(distances, axis=1)
            for row, cell in enumerate(known):
                column = int(best[row])
                if not np.isfinite(distances[row, column]):
                    paths_by_cell[cell] = None
                    continue
                paths_by_cell[cell] = shortest.path(cell, gateways[column])
        return [paths_by_cell.get(cell) for cell in cell_list]

    import networkx as nx

    results: List[Optional[List[str]]] = []
    for cell in cell_list:
        if cell not in graph:
            results.append(None)
            continue
        best_cost = float("inf")
        best_path = None
        for gateway in gateways:
            try:
                cost, path = nx.single_source_dijkstra(
                    graph, cell, gateway, weight="delay_s"
                )
            except nx.NetworkXNoPath:
                continue
            if cost < best_cost:
                best_cost, best_path = cost, path
        results.append(best_path)
    return results


def waterfill_rates(demand_bps: np.ndarray, entry_flow: np.ndarray,
                    entry_edge: np.ndarray, capacity_bps: np.ndarray,
                    max_iterations: Optional[int] = None,
                    ) -> Tuple[np.ndarray, int, bool]:
    """Demand-capped max-min-fair waterfilling over shared links.

    Vectorized progressive filling: raise the water level to the most
    constrained link's fair share; flows whose demand sits below that
    level freeze at their demand (they never congest anything further),
    otherwise the bottleneck link's flows freeze at the fair share and
    its capacity leaves the pool.  All bookkeeping is bincount
    scatter-adds over the flow→edge incidence arrays.

    Args:
        demand_bps: Offered load per flow (``>= 0``).
        entry_flow: Flow index per incidence entry.
        entry_edge: Edge index per incidence entry (parallel).
        capacity_bps: Capacity per edge slot (may be ``inf``).
        max_iterations: Safety bound (default ``flows + 8``).

    Returns:
        ``(rate_bps, iterations, converged)``.
    """
    demand = np.asarray(demand_bps, dtype=np.float64)
    flows = demand.size
    edges = np.asarray(capacity_bps, dtype=np.float64).size
    rate = np.zeros(flows)
    if flows == 0:
        return rate, 0, True
    if np.any(demand < 0.0):
        raise ValueError("demands must be >= 0")
    entry_flow = np.asarray(entry_flow, dtype=np.int64)
    entry_edge = np.asarray(entry_edge, dtype=np.int64)
    if entry_flow.shape != entry_edge.shape:
        raise ValueError("incidence arrays must be parallel")
    residual = np.asarray(capacity_bps, dtype=np.float64).copy()
    if max_iterations is None:
        max_iterations = flows + 8

    frozen = demand <= 0.0
    # Flows that touch no finite-capacity link are never constrained.
    entries_per_flow = np.bincount(entry_flow, minlength=flows)
    free = entries_per_flow == 0
    rate[free & ~frozen] = demand[free & ~frozen]
    frozen |= free

    iterations = 0
    converged = True
    while not frozen.all():
        iterations += 1
        if iterations > max_iterations:
            converged = False
            break
        active_entry = ~frozen[entry_flow]
        counts = np.bincount(entry_edge[active_entry], minlength=edges)
        loaded = counts > 0
        if not loaded.any():
            remaining = ~frozen
            rate[remaining] = demand[remaining]
            frozen[remaining] = True
            break
        share = np.full(edges, np.inf)
        share[loaded] = (np.maximum(residual[loaded], 0.0)
                         / counts[loaded])
        level = share.min()
        demand_limited = ~frozen & (demand <= level * (1.0 + 1e-12))
        if demand_limited.any():
            newly = demand_limited
            rate[newly] = demand[newly]
        else:
            bottleneck = int(np.argmin(share))
            on_edge = np.zeros(flows, dtype=bool)
            on_edge[entry_flow[entry_edge == bottleneck]] = True
            newly = ~frozen & on_edge
            rate[newly] = level
        frozen |= newly
        newly_entry = newly[entry_flow]
        if newly_entry.any():
            residual -= np.bincount(
                entry_edge[newly_entry],
                weights=rate[entry_flow[newly_entry]], minlength=edges,
            )
    return rate, iterations, converged


def run_fluid(graph, cell_ids: Sequence[str], demand_bps: Sequence[float],
              backend: Optional[str] = None,
              paths: Optional[Sequence[Optional[List[str]]]] = None,
              ) -> FluidResult:
    """Evaluate the fluid fixed point for one snapshot and demand vector.

    Args:
        graph: Snapshot graph containing the cell terminals and at least
            one ``ground_station`` node; edges carry ``capacity_bps``
            and ``delay_s``.
        cell_ids: Aggregate-flow source nodes (cell terminals).
        demand_bps: Offered load per cell, parallel to ``cell_ids``.
        backend: Routing backend (``None`` = process default).
        paths: Pre-computed routes (skips the Dijkstra stage); mainly
            for benchmarks isolating the waterfilling stage.

    Returns:
        The :class:`FluidResult` fixed point.
    """
    cell_list = list(cell_ids)
    demand = np.asarray(demand_bps, dtype=np.float64)
    if demand.shape != (len(cell_list),):
        raise ValueError(
            f"{demand.shape} demands for {len(cell_list)} cells"
        )
    recorder = _obs.active()
    with recorder.span("demand.fluid", cells=len(cell_list)):
        if paths is None:
            paths = map_cells_to_routes(graph, cell_list, backend=backend)
        else:
            paths = list(paths)
        routed = np.asarray(
            [path is not None and len(path) >= 2 for path in paths]
        )

        # Deterministic edge interning in first-use order.
        edge_slot: Dict[Tuple[str, str], int] = {}
        edge_keys: List[Tuple[str, str]] = []
        entry_flow: List[int] = []
        entry_edge: List[int] = []
        for flow_index, path in enumerate(paths):
            if path is None or len(path) < 2:
                continue
            for u, v in zip(path[:-1], path[1:]):
                key = edge_key(u, v)
                slot = edge_slot.get(key)
                if slot is None:
                    slot = len(edge_keys)
                    edge_slot[key] = slot
                    edge_keys.append(key)
                entry_flow.append(flow_index)
                entry_edge.append(slot)
        entry_flow_arr = np.asarray(entry_flow, dtype=np.int64)
        entry_edge_arr = np.asarray(entry_edge, dtype=np.int64)

        capacity = np.asarray([
            float(graph[u][v].get("capacity_bps", float("inf")))
            for u, v in edge_keys
        ])
        delay = np.asarray([
            float(graph[u][v].get("delay_s", 0.0)) for u, v in edge_keys
        ])

        effective = np.where(routed, demand, 0.0)
        offered = np.bincount(
            entry_edge_arr, weights=effective[entry_flow_arr],
            minlength=len(edge_keys),
        ) if entry_flow_arr.size else np.zeros(len(edge_keys))

        rate, iterations, converged = waterfill_rates(
            effective, entry_flow_arr, entry_edge_arr, capacity,
        )
        load = np.bincount(
            entry_edge_arr, weights=rate[entry_flow_arr],
            minlength=len(edge_keys),
        ) if entry_flow_arr.size else np.zeros(len(edge_keys))
        # Verify the fixed point: capacity respected everywhere.
        finite = np.isfinite(capacity)
        if np.any(load[finite] > capacity[finite] * (1.0 + 1e-9)):
            converged = False

    if recorder.enabled:
        recorder.count("demand.fluid.cells", len(cell_list))
        recorder.count("demand.fluid.iterations", iterations)
        recorder.gauge("demand.fluid.served_fraction",
                       float(rate.sum() / demand.sum())
                       if demand.sum() > 0 else 1.0)
    return FluidResult(
        cell_ids=cell_list, demand_bps=demand, rate_bps=rate,
        routed=routed, paths=list(paths), edge_keys=edge_keys,
        edge_capacity_bps=capacity, edge_load_bps=load,
        edge_offered_bps=offered, edge_delay_s=delay,
        iterations=iterations, converged=converged,
        entry_flow=entry_flow_arr, entry_edge=entry_edge_arr,
    )
