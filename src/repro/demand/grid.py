"""Population grids: users aggregated into equal-area ground cells.

The million-user traffic plane cannot afford one Python object per user.
This module aggregates subscribers into lat/lon ground cells — latitude
bands of equal spherical area (uniform spacing in ``sin(latitude)``),
each split into longitude columns scaled by ``cos(latitude)`` so cells
stay roughly square — and stores only per-cell counts.  A
:class:`PopulationGrid` holding a million users is three numpy arrays.

Cell populations come from the same distributions the per-user
generators in :mod:`repro.simulation.traffic` draw from: area-uniform
over the inhabited band (``uniform_land``) or clustered around the
paper's motivating underserved regions (``underserved``), rasterized
onto the grid and realized with one seeded multinomial draw.  Existing
:class:`~repro.simulation.traffic.UserPopulation` objects can also be
aggregated onto a grid for apples-to-apples comparisons with the
per-user simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.simulation.traffic import UNDERSERVED_REGIONS, UserPopulation

#: Cell-id format shared by the grid, the fluid engine, and exports.
CELL_ID_FORMAT = "cell-{index:05d}"


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a population grid.

    Attributes:
        bands: Equal-area latitude bands between ``±max_latitude_deg``
            (uniform spacing in ``sin(latitude)``).
        equator_columns: Longitude columns of the band whose center sits
            on the equator; other bands get ``round(equator_columns *
            cos(center_latitude))`` columns (at least one), keeping the
            cell aspect roughly constant.
        max_latitude_deg: Latitude cap of the inhabited band (matches
            :func:`repro.simulation.traffic.uniform_land_users`).
    """

    bands: int = 18
    equator_columns: int = 36
    max_latitude_deg: float = 70.0

    def __post_init__(self) -> None:
        if self.bands < 1:
            raise ValueError(f"need at least one band, got {self.bands}")
        if self.equator_columns < 1:
            raise ValueError(
                f"need at least one column, got {self.equator_columns}"
            )
        if not 0.0 < self.max_latitude_deg <= 89.0:
            raise ValueError(
                f"latitude cap must be in (0, 89], got {self.max_latitude_deg}"
            )

    def band_sin_edges(self) -> np.ndarray:
        """``bands + 1`` edges, uniform in ``sin(latitude)`` (equal area)."""
        cap = math.sin(math.radians(self.max_latitude_deg))
        return np.linspace(-cap, cap, self.bands + 1)

    def band_center_latitudes(self) -> np.ndarray:
        """Band center latitudes in degrees (area-midpoint of each band)."""
        edges = self.band_sin_edges()
        return np.degrees(np.arcsin((edges[:-1] + edges[1:]) / 2.0))

    def columns_per_band(self) -> np.ndarray:
        """Longitude columns in each band (cos-scaled, at least one)."""
        centers = np.radians(self.band_center_latitudes())
        columns = np.rint(self.equator_columns * np.cos(centers))
        return np.maximum(1, columns).astype(np.int64)


@dataclass
class PopulationGrid:
    """Users aggregated into ground cells (no per-user objects).

    Parallel arrays, one entry per cell:

    Attributes:
        spec: The grid geometry.
        lat_deg: Cell-center latitudes.
        lon_deg: Cell-center longitudes, in ``(-180, 180]``.
        area_weight: Cell area as a fraction of the gridded band's total
            (sums to 1).
        users: Subscriber count per cell.
    """

    spec: GridSpec
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    area_weight: np.ndarray
    users: np.ndarray
    _band_of_cell: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        lengths = {
            len(self.lat_deg), len(self.lon_deg), len(self.area_weight),
            len(self.users),
        }
        if len(lengths) != 1:
            raise ValueError("grid arrays must have equal length")
        if np.any(self.users < 0):
            raise ValueError("cell user counts must be >= 0")

    def __len__(self) -> int:
        return len(self.users)

    @property
    def total_users(self) -> int:
        return int(self.users.sum())

    @property
    def occupied(self) -> np.ndarray:
        """Indices of cells with at least one user, ascending."""
        return np.nonzero(self.users > 0)[0]

    def cell_id(self, index: int) -> str:
        return CELL_ID_FORMAT.format(index=int(index))

    def cell_ids(self, indices: Optional[Sequence[int]] = None) -> List[str]:
        """Cell ids for the given indices (default: occupied cells)."""
        if indices is None:
            indices = self.occupied
        return [self.cell_id(index) for index in indices]

    def terminals(self, home_providers: Sequence[str],
                  min_elevation_deg: float = 25.0) -> List[UserTerminal]:
        """One aggregate terminal per occupied cell, at the cell center.

        Home providers round-robin across occupied cells by cell index,
        mirroring the per-user generators: every operator has
        subscribers everywhere.
        """
        if not home_providers:
            raise ValueError("need at least one home provider")
        terminals = []
        for slot, index in enumerate(self.occupied):
            terminals.append(UserTerminal(
                user_id=self.cell_id(index),
                location=GeodeticPoint(float(self.lat_deg[index]),
                                       float(self.lon_deg[index])),
                home_provider=home_providers[slot % len(home_providers)],
                min_elevation_deg=min_elevation_deg,
            ))
        return terminals


def _cell_geometry(spec: GridSpec):
    """Flattened (lat, lon, area_weight, band index) arrays for a spec."""
    centers = spec.band_center_latitudes()
    columns = spec.columns_per_band()
    lats: List[float] = []
    lons: List[float] = []
    areas: List[float] = []
    bands: List[int] = []
    # Every band has the same area; a band's cells split it evenly.
    band_area = 1.0 / spec.bands
    for band, (lat, cols) in enumerate(zip(centers, columns)):
        width = 360.0 / cols
        for col in range(int(cols)):
            lon = -180.0 + width * (col + 0.5)
            lats.append(float(lat))
            # Keep longitudes in (-180, 180].
            lons.append(((lon + 180.0) % 360.0) - 180.0)
            areas.append(band_area / cols)
            bands.append(band)
    return (np.asarray(lats), np.asarray(lons), np.asarray(areas),
            np.asarray(bands, dtype=np.int64))


def _underserved_weights(lat_deg: np.ndarray, lon_deg: np.ndarray,
                         spread_deg: float) -> np.ndarray:
    """Gaussian-blob weights around the paper's underserved regions.

    Longitude distance wraps across the ±180° seam, so the
    pacific-islands cluster loads cells on both sides of the antimeridian.
    """
    weights = np.zeros_like(lat_deg)
    for _name, center_lat, center_lon in UNDERSERVED_REGIONS:
        dlat = lat_deg - center_lat
        dlon = ((lon_deg - center_lon + 180.0) % 360.0) - 180.0
        weights += np.exp(-(dlat ** 2 + dlon ** 2)
                          / (2.0 * spread_deg ** 2))
    return weights


def population_grid(total_users: int, rng: np.random.Generator,
                    spec: Optional[GridSpec] = None,
                    distribution: str = "uniform_land",
                    spread_deg: float = 6.0) -> PopulationGrid:
    """Distribute ``total_users`` over a grid with one multinomial draw.

    Args:
        total_users: Modeled subscriber count (conserved exactly).
        rng: Seeded generator (the draw is the only randomness).
        spec: Grid geometry (default :class:`GridSpec`).
        distribution: ``"uniform_land"`` (area-uniform over the capped
            band, matching ``uniform_land_users``) or ``"underserved"``
            (clustered on the motivating regions, matching
            ``underserved_region_users``).
        spread_deg: Cluster spread for the underserved distribution.

    Returns:
        A grid whose cell counts sum to ``total_users``.
    """
    if total_users < 1:
        raise ValueError(f"need at least one user, got {total_users}")
    spec = spec or GridSpec()
    lat_deg, lon_deg, area, band = _cell_geometry(spec)
    if distribution == "uniform_land":
        weights = area.copy()
    elif distribution == "underserved":
        weights = _underserved_weights(lat_deg, lon_deg, spread_deg) * area
    else:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected "
            "'uniform_land' or 'underserved'"
        )
    total = weights.sum()
    if total <= 0.0:
        raise ValueError("distribution placed no weight on the grid")
    counts = rng.multinomial(total_users, weights / total)
    return PopulationGrid(spec=spec, lat_deg=lat_deg, lon_deg=lon_deg,
                          area_weight=area,
                          users=counts.astype(np.int64),
                          _band_of_cell=band)


def grid_from_population(population: UserPopulation,
                         spec: Optional[GridSpec] = None) -> PopulationGrid:
    """Aggregate an existing per-user population onto a grid.

    Users outside the latitude cap clip to the nearest edge band (the
    per-user generators can place users beyond the cap only via
    underserved-region jitter).
    """
    spec = spec or GridSpec()
    lat_deg, lon_deg, area, band = _cell_geometry(spec)
    counts = np.zeros(len(lat_deg), dtype=np.int64)
    sin_edges = spec.band_sin_edges()
    columns = spec.columns_per_band()
    band_start = np.zeros(spec.bands, dtype=np.int64)
    band_start[1:] = np.cumsum(columns)[:-1]
    for user in population.users:
        sin_lat = math.sin(math.radians(user.location.latitude_deg))
        band_index = int(np.clip(
            np.searchsorted(sin_edges, sin_lat, side="right") - 1,
            0, spec.bands - 1,
        ))
        cols = int(columns[band_index])
        lon = ((user.location.longitude_deg + 180.0) % 360.0)
        col = min(cols - 1, int(lon / (360.0 / cols)))
        counts[band_start[band_index] + col] += 1
    return PopulationGrid(spec=spec, lat_deg=lat_deg, lon_deg=lon_deg,
                          area_weight=area, users=counts,
                          _band_of_cell=band)
