"""The million-user traffic plane: population grids + fluid flows.

``repro.demand`` models subscriber load without per-user objects: users
aggregate into equal-area ground cells (:mod:`repro.demand.grid`) with
diurnal and heavy-tail demand profiles (:mod:`repro.demand.profile`);
the vectorized fluid engine (:mod:`repro.demand.fluid`) routes every
loaded cell through one batched multi-source Dijkstra and waterfills a
max-min-fair fixed point over link capacities; and the congestion state
feeds routing costs, the health plane, and settlement
(:mod:`repro.demand.congestion`).
"""

from repro.demand.congestion import (
    CongestionState,
    DemandSettlement,
    congestion_state,
    peak_statistics,
    settle_demand,
)
from repro.demand.fluid import (
    FluidResult,
    map_cells_to_routes,
    run_fluid,
    waterfill_rates,
    weighted_percentile,
)
from repro.demand.grid import (
    CELL_ID_FORMAT,
    GridSpec,
    PopulationGrid,
    grid_from_population,
    population_grid,
)
from repro.demand.profile import (
    DEFAULT_QOS_MIX,
    QosClassDemand,
    diurnal_factor,
    local_solar_hour,
    mean_demand_bps_per_user,
    offered_load_bps,
    validate_qos_mix,
)

__all__ = [
    "CELL_ID_FORMAT",
    "CongestionState",
    "DEFAULT_QOS_MIX",
    "DemandSettlement",
    "FluidResult",
    "GridSpec",
    "PopulationGrid",
    "QosClassDemand",
    "congestion_state",
    "diurnal_factor",
    "grid_from_population",
    "local_solar_hour",
    "map_cells_to_routes",
    "mean_demand_bps_per_user",
    "offered_load_bps",
    "peak_statistics",
    "population_grid",
    "run_fluid",
    "settle_demand",
    "validate_qos_mix",
    "waterfill_rates",
    "weighted_percentile",
]
