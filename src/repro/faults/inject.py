"""The fault injector: replays a schedule against a live network.

The injector owns the mapping from fault events to the network's fault
state.  Elements are *refcounted* by fault id — a satellite held down by
both a plane loss and its own MTBF outage returns to service only when
**both** faults repair, and applying a fault to an element that some other
mechanism already removed (say a bad-actor quarantine that excluded the
provider's fleet before the network was built) is counted and skipped, not
crashed on — no element is ever double-removed.

Scheduling happens in simulated time through
:class:`~repro.simulation.engine.SimulationEngine`: each fail/repair
transition is one engine event, so fault churn interleaves deterministically
with every other simulation activity, and ``--trace`` captures the full
lifecycle via :mod:`repro.obs` spans and counters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs as _obs
from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    Transition,
    parse_link_target,
)

#: Signature of the optional per-transition hook:
#: ``hook(time_s, transition, injector)``.
TransitionHook = Callable[[float, Transition, "FaultInjector"], None]


class FaultInjector:
    """Applies and repairs faults against an :class:`OpenSpaceNetwork`.

    Args:
        network: The network whose fault state this injector drives.
        tracker: Optional :class:`~repro.faults.metrics.RecoveryTracker`
            notified of every apply/repair edge.
        router: Optional :class:`~repro.routing.proactive.ProactiveRouter`
            whose precomputed routes are invalidated when elements they
            traverse fail.
        channel: Optional
            :class:`~repro.reliability.channel.LossyControlChannel`
            notified (via ``on_fault_state_changed``) whenever the fault
            masks move, so cached path-delivery models go stale exactly
            when the network does.
    """

    def __init__(self, network, tracker=None, router=None, channel=None):
        self.network = network
        self.tracker = tracker
        self.router = router
        self.channel = channel
        self._known_satellites = {
            spec.satellite_id for spec in network.satellites
        }
        self._known_stations = {
            station.station_id for station in network.ground_stations
        }
        self._owners: Dict[str, List[str]] = {}
        for spec in network.satellites:
            self._owners.setdefault(spec.owner, []).append(spec.satellite_id)
        # element id -> fault ids currently holding it down (refcounts).
        self._down_satellites: Dict[str, Set[str]] = {}
        self._down_stations: Dict[str, Set[str]] = {}
        self._down_links: Dict[Tuple[str, str], Set[str]] = {}
        self._active: Dict[str, FaultEvent] = {}
        self.applied_count = 0
        self.repaired_count = 0
        self.skipped_targets = 0

    # -- state ----------------------------------------------------------

    @property
    def active_faults(self) -> List[str]:
        """Ids of faults currently applied, sorted."""
        return sorted(self._active)

    @property
    def failed_satellites(self) -> Set[str]:
        return set(self._down_satellites)

    @property
    def failed_stations(self) -> Set[str]:
        return set(self._down_stations)

    @property
    def failed_links(self) -> Set[Tuple[str, str]]:
        return set(self._down_links)

    def _push_state(self) -> None:
        self.network.set_fault_state(
            failed_satellites=sorted(self._down_satellites),
            failed_stations=sorted(self._down_stations),
            failed_links=sorted(self._down_links),
        )
        if self.channel is not None:
            self.channel.on_fault_state_changed()
        recorder = _obs.active()
        if recorder.enabled:
            recorder.gauge("faults.active", len(self._active))
            recorder.gauge("faults.failed_elements",
                           len(self._down_satellites)
                           + len(self._down_stations)
                           + len(self._down_links))

    def _resolve(self, event: FaultEvent) -> Tuple[
            List[str], List[str], List[Tuple[str, str]], List[str]]:
        """Expand an event into concrete known elements.

        Returns:
            ``(satellites, stations, links, unknown_targets)``; targets
            naming elements this network does not have (already
            quarantined, withdrawn, or simply foreign) land in
            ``unknown_targets`` instead of raising.
        """
        satellites: List[str] = []
        stations: List[str] = []
        links: List[Tuple[str, str]] = []
        unknown: List[str] = []
        if event.kind in (FaultKind.SATELLITE, FaultKind.PLANE):
            for target in event.targets:
                (satellites if target in self._known_satellites
                 else unknown).append(target)
        elif event.kind is FaultKind.GROUND_STATION:
            for target in event.targets:
                (stations if target in self._known_stations
                 else unknown).append(target)
        elif event.kind is FaultKind.ISL_LINK:
            for target in event.targets:
                node_a, node_b = parse_link_target(target)
                if (node_a in self._known_satellites
                        and node_b in self._known_satellites):
                    links.append((node_a, node_b))
                else:
                    unknown.append(target)
        elif event.kind is FaultKind.PROVIDER:
            for provider in event.targets:
                members = self._owners.get(provider)
                if members:
                    satellites.extend(members)
                else:
                    unknown.append(provider)
        return satellites, stations, links, unknown

    # -- transitions ----------------------------------------------------

    def apply(self, event: FaultEvent, now_s: float = 0.0) -> int:
        """Take the event's targets down; returns elements newly failed.

        Idempotent per fault id: re-applying an active fault is a no-op.
        """
        if event.fault_id in self._active:
            return 0
        satellites, stations, links, unknown = self._resolve(event)
        recorder = _obs.active()
        with recorder.span("faults.apply", fault_id=event.fault_id,
                           kind=event.kind.value, sim_time_s=now_s):
            newly_failed = 0
            for sat_id in satellites:
                holders = self._down_satellites.setdefault(sat_id, set())
                if not holders:
                    newly_failed += 1
                holders.add(event.fault_id)
            for station_id in stations:
                holders = self._down_stations.setdefault(station_id, set())
                if not holders:
                    newly_failed += 1
                holders.add(event.fault_id)
            for link in links:
                holders = self._down_links.setdefault(link, set())
                if not holders:
                    newly_failed += 1
                holders.add(event.fault_id)
            self._active[event.fault_id] = event
            self._push_state()
            if self.router is not None:
                affected = satellites + stations
                for node_a, node_b in links:
                    affected.extend((node_a, node_b))
                if affected:
                    self.router.invalidate_routes_through(
                        affected, from_time_s=now_s
                    )
        self.applied_count += 1
        self.skipped_targets += len(unknown)
        if recorder.enabled:
            recorder.count("faults.injected", label=event.kind.value)
            if unknown:
                recorder.count("faults.skipped_targets", len(unknown),
                               label=event.kind.value)
            recorder.event(
                "fault.inject", now_s, subject=event.fault_id,
                fault_kind=event.kind.value, elements=newly_failed,
                targets=len(event.targets),
            )
        if self.tracker is not None:
            self.tracker.on_fault_applied(
                now_s, event,
                elements_failed=len(satellites) + len(stations) + len(links),
                elements_skipped=len(unknown),
            )
        return newly_failed

    def repair(self, event: FaultEvent, now_s: float = 0.0) -> int:
        """Release the event's hold; returns elements newly restored.

        Elements other active faults still hold stay down — the
        no-double-remove guarantee's mirror image: no early resurrection.
        """
        if event.fault_id not in self._active:
            return 0
        recorder = _obs.active()
        with recorder.span("faults.repair", fault_id=event.fault_id,
                           kind=event.kind.value, sim_time_s=now_s):
            restored = 0
            restored += self._release(self._down_satellites, event.fault_id)
            restored += self._release(self._down_stations, event.fault_id)
            restored += self._release(self._down_links, event.fault_id)
            del self._active[event.fault_id]
            self._push_state()
        self.repaired_count += 1
        if recorder.enabled:
            recorder.count("faults.repaired", label=event.kind.value)
            recorder.event(
                "fault.recover", now_s, subject=event.fault_id,
                fault_kind=event.kind.value, elements=restored,
            )
        if self.tracker is not None:
            self.tracker.on_fault_repaired(now_s, event)
        return restored

    @staticmethod
    def _release(down: Dict, fault_id: str) -> int:
        restored = 0
        for element in list(down):
            holders = down[element]
            holders.discard(fault_id)
            if not holders:
                del down[element]
                restored += 1
        return restored

    def failed_elements_of(self, event: FaultEvent) -> Tuple[
            Set[str], Set[Tuple[str, str]]]:
        """Node ids and link pairs an event takes down (for path checks)."""
        satellites, stations, links, _unknown = self._resolve(event)
        return set(satellites) | set(stations), set(links)

    # -- engine wiring --------------------------------------------------

    def schedule_on(self, engine, schedule: FaultSchedule,
                    hook: Optional[TransitionHook] = None,
                    until_s: Optional[float] = None) -> int:
        """Schedule every transition of ``schedule`` as engine events.

        Args:
            engine: A :class:`~repro.simulation.engine.SimulationEngine`.
            schedule: The fault schedule to replay.
            hook: Optional callback run after each transition is applied
                (the runner probes users here to measure recovery).
            until_s: Drop transitions after this time (defaults to the
                schedule's horizon when positive, else unbounded).

        Returns:
            The number of engine events scheduled.
        """
        cutoff = until_s
        if cutoff is None and schedule.horizon_s > 0.0:
            cutoff = schedule.horizon_s
        scheduled = 0
        for transition in schedule.transitions():
            if cutoff is not None and transition.time_s > cutoff:
                continue
            if transition.time_s < engine.now_s:
                raise ValueError(
                    f"transition at {transition.time_s} is in the engine's "
                    f"past (now={engine.now_s})"
                )
            engine.schedule(
                transition.time_s,
                self._transition_action(transition, hook),
                label=f"faults.{transition.phase}",
            )
            scheduled += 1
        return scheduled

    def _transition_action(self, transition: Transition,
                           hook: Optional[TransitionHook]):
        def action() -> None:
            if transition.phase == "fail":
                self.apply(transition.event, now_s=transition.time_s)
            else:
                self.repair(transition.event, now_s=transition.time_s)
            if hook is not None:
                hook(transition.time_s, transition, self)
        return action

    def apply_static(self, schedule: FaultSchedule) -> int:
        """Apply every fault at once, ignoring repairs (static mode).

        This is the bridge to the original delete-a-fraction-up-front
        resilience methodology: the network ends up in the union failure
        state of the whole schedule.
        """
        applied = 0
        for event in schedule:
            applied += self.apply(event, now_s=event.start_s)
        return applied
