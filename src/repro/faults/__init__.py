"""repro.faults — dynamic fault injection and recovery measurement.

The chaos-engineering layer over the discrete-event engine: seeded fault
schedules (:mod:`repro.faults.schedule`), an injector that replays them
against a live :class:`~repro.core.network.OpenSpaceNetwork` in simulated
time (:mod:`repro.faults.inject`), and recovery metrics — time-to-reroute,
observed MTTR, availability timelines — built from probe streams
(:mod:`repro.faults.metrics`).

The paper's Figure 2(c) caption claims constellation mass beyond bare
coverage buys redundancy so "operational failures, load balancing, and
range cutoffs ... can be handled efficiently"; this package turns that
claim into a measurable quantity.  See
:mod:`repro.experiments.resilience_dynamic` for the sweep drivers and the
``repro faults`` CLI subcommands for the command-line surface.
"""

from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    Transition,
    combine,
    link_target,
    parse_link_target,
    validate_against,
)
from repro.faults.schedule import (
    fraction_loss_schedule,
    great_circle_km,
    ground_station_outage_schedule,
    link_flap_schedule,
    plane_loss_event,
    plane_members,
    provider_withdrawal_event,
    regional_blackout_event,
    satellite_mtbf_schedule,
    satellite_outage_event,
    stations_within,
)
from repro.faults.inject import FaultInjector
from repro.faults.metrics import (
    AvailabilityTimeline,
    FaultImpact,
    OutageRecord,
    RecoveryTracker,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "Transition",
    "combine",
    "link_target",
    "parse_link_target",
    "validate_against",
    "satellite_mtbf_schedule",
    "ground_station_outage_schedule",
    "link_flap_schedule",
    "plane_members",
    "plane_loss_event",
    "provider_withdrawal_event",
    "satellite_outage_event",
    "fraction_loss_schedule",
    "FaultInjector",
    "RecoveryTracker",
    "AvailabilityTimeline",
    "OutageRecord",
    "FaultImpact",
]
