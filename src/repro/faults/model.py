"""The fault-schedule model: what fails, when, and for how long.

A :class:`FaultSchedule` is a plain, serializable list of
:class:`FaultEvent` objects resolved entirely in *simulated* time — the
injector (:mod:`repro.faults.inject`) replays it through the discrete-event
engine rather than mutating topology up front, which is what separates
dynamic fault injection from the static fleet-deletion the original
``resilience_sweep`` performed.

Correlated failure modes are first-class: a whole-plane loss or a
provider-wide withdrawal is one event with many targets, so its members
fail and recover atomically.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

#: Separator inside an ISL-link target ("satA|satB"); satellite ids use
#: dashes, so the pipe is unambiguous.
LINK_SEPARATOR = "|"


class FaultKind(enum.Enum):
    """What class of network element a fault takes down."""

    SATELLITE = "satellite"
    GROUND_STATION = "ground_station"
    ISL_LINK = "isl_link"
    #: Correlated loss of every satellite sharing an orbital plane; the
    #: targets list the member satellite ids explicitly.
    PLANE = "plane"
    #: Provider-wide withdrawal (the multi-operator failure mode); the
    #: single target names the provider, expanded by the injector against
    #: the live fleet's ``owner`` fields.
    PROVIDER = "provider"


def link_target(node_a: str, node_b: str) -> str:
    """Canonical (sorted) target string for an ISL-link fault."""
    if LINK_SEPARATOR in node_a or LINK_SEPARATOR in node_b:
        raise ValueError(
            f"node ids may not contain {LINK_SEPARATOR!r}: {node_a!r}, {node_b!r}"
        )
    first, second = sorted((node_a, node_b))
    return f"{first}{LINK_SEPARATOR}{second}"


def parse_link_target(target: str) -> Tuple[str, str]:
    """Split a link target back into its (sorted) endpoint pair."""
    parts = target.split(LINK_SEPARATOR)
    if len(parts) != 2 or not all(parts):
        raise ValueError(f"malformed link target {target!r}")
    return (parts[0], parts[1])


@dataclass(frozen=True)
class FaultEvent:
    """One failure (and its eventual repair) in simulated time.

    Attributes:
        fault_id: Unique identifier within a schedule.
        kind: Element class being failed.
        targets: Element ids (satellite ids, station ids, ``"a|b"`` link
            targets, or a provider name for :attr:`FaultKind.PROVIDER`).
        start_s: Failure onset, simulation seconds.
        duration_s: Outage length; None means the fault is permanent
            (never repaired).
        cause: Free-form provenance label ("mtbf", "plane-loss", ...).
    """

    fault_id: str
    kind: FaultKind
    targets: Tuple[str, ...]
    start_s: float
    duration_s: Optional[float] = None
    cause: str = ""

    def __post_init__(self) -> None:
        if not self.fault_id:
            raise ValueError("fault_id must be non-empty")
        if not self.targets:
            raise ValueError(f"fault {self.fault_id!r} has no targets")
        if self.start_s < 0.0:
            raise ValueError(
                f"fault {self.fault_id!r} starts at {self.start_s} < 0"
            )
        if self.duration_s is not None and self.duration_s < 0.0:
            raise ValueError(
                f"fault {self.fault_id!r} has negative duration "
                f"{self.duration_s}"
            )
        if self.kind is FaultKind.ISL_LINK:
            for target in self.targets:
                parse_link_target(target)
        # Tuple-ify defensively (callers may pass lists).
        object.__setattr__(self, "targets", tuple(self.targets))

    @property
    def permanent(self) -> bool:
        return self.duration_s is None

    @property
    def end_s(self) -> Optional[float]:
        """Repair time, or None for permanent faults."""
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    def as_dict(self) -> Dict:
        return {
            "fault_id": self.fault_id,
            "kind": self.kind.value,
            "targets": list(self.targets),
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "cause": self.cause,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        return cls(
            fault_id=data["fault_id"],
            kind=FaultKind(data["kind"]),
            targets=tuple(data["targets"]),
            start_s=float(data["start_s"]),
            duration_s=(None if data.get("duration_s") is None
                        else float(data["duration_s"])),
            cause=data.get("cause", ""),
        )


@dataclass(frozen=True)
class Transition:
    """One fail or repair edge of a fault's lifecycle.

    Attributes:
        time_s: When the transition happens.
        phase: ``"fail"`` or ``"repair"``.
        event: The owning fault event.
    """

    time_s: float
    phase: str
    event: FaultEvent


@dataclass
class FaultSchedule:
    """An ordered, serializable collection of fault events.

    Attributes:
        events: The fault events (any order; transitions are sorted).
        horizon_s: Simulated period the schedule covers; transitions
            beyond it are still emitted (the runner decides the cutoff).
    """

    events: List[FaultEvent] = field(default_factory=list)
    horizon_s: float = 0.0

    def __post_init__(self) -> None:
        seen = set()
        for event in self.events:
            if event.fault_id in seen:
                raise ValueError(f"duplicate fault_id {event.fault_id!r}")
            seen.add(event.fault_id)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def transitions(self) -> List[Transition]:
        """Every fail/repair edge, deterministically ordered.

        Ordering is ``(time, fail-before-repair, fault_id)`` — a zero-MTTR
        fault's repair lands immediately after its own failure, and
        simultaneous transitions of distinct faults resolve by id, so two
        runs of the same schedule replay identically.
        """
        edges: List[Transition] = []
        for event in self.events:
            edges.append(Transition(event.start_s, "fail", event))
            if event.end_s is not None:
                edges.append(Transition(event.end_s, "repair", event))
        edges.sort(key=lambda tr: (
            tr.time_s, 0 if tr.phase == "fail" else 1, tr.event.fault_id
        ))
        return edges

    def extended(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule holding both event lists (ids must not clash)."""
        return FaultSchedule(
            events=list(self.events) + list(other.events),
            horizon_s=max(self.horizon_s, other.horizon_s),
        )

    def shifted(self, offset_s: float) -> "FaultSchedule":
        """A copy with every event's start moved by ``offset_s``."""
        return FaultSchedule(
            events=[
                replace(event, start_s=event.start_s + offset_s)
                for event in self.events
            ],
            horizon_s=self.horizon_s + offset_s,
        )

    # -- serialization -------------------------------------------------

    def to_jsonable(self) -> Dict:
        return {
            "horizon_s": self.horizon_s,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "FaultSchedule":
        return cls(
            events=[FaultEvent.from_dict(row) for row in data.get("events", [])],
            horizon_s=float(data.get("horizon_s", 0.0)),
        )

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON text (sorted keys, fixed indent)."""
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_jsonable(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as handle:
            return cls.from_json(handle.read())


def combine(*schedules: FaultSchedule) -> FaultSchedule:
    """Merge schedules into one (fault ids must be globally unique)."""
    merged = FaultSchedule()
    for schedule in schedules:
        merged = merged.extended(schedule)
    return merged


def validate_against(schedule: FaultSchedule,
                     satellite_ids: Iterable[str],
                     station_ids: Iterable[str] = (),
                     providers: Iterable[str] = ()) -> List[str]:
    """Targets in ``schedule`` that no known element matches.

    Unknown targets are not an error at injection time (a satellite may
    already be quarantined out of the fleet); this helper lets callers
    surface them up front when strictness is wanted.
    """
    sats = set(satellite_ids)
    stations = set(station_ids)
    owners = set(providers)
    unknown: List[str] = []
    for event in schedule:
        if event.kind in (FaultKind.SATELLITE, FaultKind.PLANE):
            unknown.extend(t for t in event.targets if t not in sats)
        elif event.kind is FaultKind.GROUND_STATION:
            unknown.extend(t for t in event.targets if t not in stations)
        elif event.kind is FaultKind.ISL_LINK:
            for target in event.targets:
                node_a, node_b = parse_link_target(target)
                unknown.extend(n for n in (node_a, node_b) if n not in sats)
        elif event.kind is FaultKind.PROVIDER:
            unknown.extend(t for t in event.targets if t not in owners)
    return unknown
