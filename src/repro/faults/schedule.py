"""Seeded fault-schedule generators.

Every generator draws from a caller-supplied seed (or numpy Generator) and
iterates element ids in their given order, so the same seed always yields
the same schedule — the property the CLI's byte-identical-output guarantee
rests on.

Failure processes follow the classic renewal model: exponential
time-to-failure with mean MTBF, exponential time-to-repair with mean MTTR
(``mttr_s=None`` makes every failure permanent, ``mttr_s=0`` makes repair
instantaneous — the degenerate modes the static resilience sweep and its
no-outage control are built from).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    combine,
    link_target,
)

RngLike = Union[int, np.random.Generator]


def _rng_of(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _renewal_events(element_id: str, kind: FaultKind, horizon_s: float,
                    mtbf_s: float, mttr_s: Optional[float],
                    rng: np.random.Generator, prefix: str,
                    cause: str) -> List[FaultEvent]:
    """Failure/repair renewal process for one element over the horizon."""
    if mtbf_s <= 0.0:
        raise ValueError(f"MTBF must be positive, got {mtbf_s}")
    if mttr_s is not None and mttr_s < 0.0:
        raise ValueError(f"MTTR must be >= 0 or None, got {mttr_s}")
    events: List[FaultEvent] = []
    clock = float(rng.exponential(mtbf_s))
    index = 0
    while clock < horizon_s:
        if mttr_s is None:
            duration: Optional[float] = None
        elif mttr_s == 0.0:
            duration = 0.0
        else:
            duration = float(rng.exponential(mttr_s))
        events.append(FaultEvent(
            fault_id=f"{prefix}-{element_id}-{index}",
            kind=kind,
            targets=(element_id,),
            start_s=clock,
            duration_s=duration,
            cause=cause,
        ))
        if duration is None:
            break  # Permanently down; no further failures possible.
        clock += duration + float(rng.exponential(mtbf_s))
        index += 1
    return events


def satellite_mtbf_schedule(satellite_ids: Sequence[str], horizon_s: float,
                            mtbf_s: float, mttr_s: Optional[float],
                            seed: RngLike = 0) -> FaultSchedule:
    """Independent per-satellite failures with MTBF/MTTR draws."""
    rng = _rng_of(seed)
    events: List[FaultEvent] = []
    for sat_id in satellite_ids:
        events.extend(_renewal_events(
            sat_id, FaultKind.SATELLITE, horizon_s, mtbf_s, mttr_s, rng,
            prefix="mtbf", cause="mtbf",
        ))
    return FaultSchedule(events=events, horizon_s=horizon_s)


def ground_station_outage_schedule(station_ids: Sequence[str],
                                   horizon_s: float, mtbf_s: float,
                                   mttr_s: Optional[float],
                                   seed: RngLike = 0) -> FaultSchedule:
    """Independent gateway outages (backhaul cuts, weather, maintenance)."""
    rng = _rng_of(seed)
    events: List[FaultEvent] = []
    for station_id in station_ids:
        events.extend(_renewal_events(
            station_id, FaultKind.GROUND_STATION, horizon_s, mtbf_s,
            mttr_s, rng, prefix="gs-outage", cause="ground-outage",
        ))
    return FaultSchedule(events=events, horizon_s=horizon_s)


def link_flap_schedule(links: Sequence[Tuple[str, str]], horizon_s: float,
                       mtbf_s: float, mttr_s: Optional[float],
                       seed: RngLike = 0) -> FaultSchedule:
    """Short ISL flaps (pointing loss, interference) on specific links."""
    rng = _rng_of(seed)
    events: List[FaultEvent] = []
    for node_a, node_b in links:
        target = link_target(node_a, node_b)
        events.extend(_renewal_events(
            target, FaultKind.ISL_LINK, horizon_s, mtbf_s, mttr_s, rng,
            prefix="flap", cause="link-flap",
        ))
    return FaultSchedule(events=events, horizon_s=horizon_s)


def plane_members(fleet) -> Dict[float, List[str]]:
    """Group a fleet's satellite ids by orbital plane (shared RAAN).

    Args:
        fleet: :class:`~repro.core.interop.SpacecraftSpec` sequence.

    Returns:
        Mapping of RAAN (radians, rounded to ~µrad so float noise cannot
        split a plane) to the member satellite ids, in fleet order.
    """
    planes: Dict[float, List[str]] = {}
    for spec in fleet:
        key = round(spec.elements.raan_rad, 6)
        planes.setdefault(key, []).append(spec.satellite_id)
    return planes


def plane_loss_event(fleet, plane_index: int, start_s: float,
                     duration_s: Optional[float] = None,
                     fault_id: Optional[str] = None) -> FaultEvent:
    """Correlated loss of one whole orbital plane.

    The launch-dispenser / plane-level-bus failure mode: every satellite
    sharing the plane's RAAN fails and recovers together.

    Args:
        fleet: The spacecraft specs the plane is resolved against.
        plane_index: Index into the RAAN-sorted plane list.
        start_s: Failure onset.
        duration_s: Outage length (None = permanent).
        fault_id: Override the generated id.
    """
    planes = plane_members(fleet)
    keys = sorted(planes)
    if not 0 <= plane_index < len(keys):
        raise ValueError(
            f"plane index {plane_index} out of range; fleet has "
            f"{len(keys)} planes"
        )
    return FaultEvent(
        fault_id=fault_id or f"plane-loss-{plane_index}",
        kind=FaultKind.PLANE,
        targets=tuple(planes[keys[plane_index]]),
        start_s=start_s,
        duration_s=duration_s,
        cause="plane-loss",
    )


def provider_withdrawal_event(provider: str, start_s: float,
                              duration_s: Optional[float] = None,
                              fault_id: Optional[str] = None) -> FaultEvent:
    """A provider pulls its whole fleet out of the federation.

    The multi-operator failure mode unique to OpenSpace: bankruptcy,
    regulatory cutoff, or a voluntary withdrawal takes every satellite
    the provider owns. The injector expands the provider name against
    the live fleet's ``owner`` fields at apply time.
    """
    return FaultEvent(
        fault_id=fault_id or f"withdrawal-{provider}",
        kind=FaultKind.PROVIDER,
        targets=(provider,),
        start_s=start_s,
        duration_s=duration_s,
        cause="provider-withdrawal",
    )


#: Mean Earth radius used for great-circle footprints, km.
EARTH_RADIUS_KM = 6371.0


def great_circle_km(lat1_deg: float, lon1_deg: float,
                    lat2_deg: float, lon2_deg: float) -> float:
    """Great-circle distance between two geodetic points (haversine)."""
    lat1, lon1, lat2, lon2 = map(
        math.radians, (lat1_deg, lon1_deg, lat2_deg, lon2_deg)
    )
    sin_dlat = math.sin((lat2 - lat1) / 2.0)
    sin_dlon = math.sin((lon2 - lon1) / 2.0)
    chord = (sin_dlat * sin_dlat
             + math.cos(lat1) * math.cos(lat2) * sin_dlon * sin_dlon)
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(chord)))


def stations_within(stations, center_lat_deg: float, center_lon_deg: float,
                    radius_km: float) -> List[str]:
    """Ids of ground stations inside a great-circle footprint.

    Args:
        stations: :class:`~repro.ground.station.GroundStation` sequence.
        center_lat_deg: Footprint center latitude, degrees.
        center_lon_deg: Footprint center longitude, degrees.
        radius_km: Footprint radius (inclusive); non-positive matches
            nothing.

    Returns:
        Matching station ids, in the input order.
    """
    if radius_km <= 0.0:
        return []
    return [
        station.station_id for station in stations
        if great_circle_km(station.location.latitude_deg,
                           station.location.longitude_deg,
                           center_lat_deg, center_lon_deg) <= radius_km
    ]


def regional_blackout_event(stations, center_lat_deg: float,
                            center_lon_deg: float, radius_km: float,
                            start_s: float,
                            duration_s: Optional[float] = None,
                            fault_id: Optional[str] = None) -> FaultEvent:
    """Correlated loss of every ground station in a geographic region.

    The disaster failure mode the disrupted-communications workload is
    built on: an earthquake, flood, or grid collapse takes the backhaul
    of every gateway within ``radius_km`` of the epicenter down — and
    back up — together.  Satellites overhead are unaffected; traffic
    must be carried (store-and-forward) to gateways outside the region.

    Args:
        stations: :class:`~repro.ground.station.GroundStation` sequence
            the footprint is resolved against.
        center_lat_deg: Epicenter latitude, degrees.
        center_lon_deg: Epicenter longitude, degrees.
        radius_km: Blackout radius (great-circle, inclusive).
        start_s: Blackout onset, simulation seconds.
        duration_s: Outage length (None = permanent).
        fault_id: Override the generated id.

    Raises:
        ValueError: When no station lies inside the footprint (an empty
            fault event cannot exist; use :func:`stations_within` first
            when "possibly nothing" is a valid outcome).
    """
    targets = stations_within(stations, center_lat_deg, center_lon_deg,
                              radius_km)
    if not targets:
        raise ValueError(
            f"no ground station within {radius_km:g} km of "
            f"({center_lat_deg:g}, {center_lon_deg:g})"
        )
    return FaultEvent(
        fault_id=fault_id or f"blackout-{radius_km:g}km",
        kind=FaultKind.GROUND_STATION,
        targets=tuple(targets),
        start_s=start_s,
        duration_s=duration_s,
        cause="regional-blackout",
    )


def satellite_outage_event(satellite_ids: Sequence[str], start_s: float = 0.0,
                           duration_s: Optional[float] = None,
                           fault_id: str = "static-loss",
                           cause: str = "static") -> FaultEvent:
    """One correlated outage of an explicit satellite set.

    The static resilience sweep uses this with ``start_s=0`` and no
    repair, reproducing the original delete-a-fraction-up-front
    methodology through the dynamic machinery.
    """
    return FaultEvent(
        fault_id=fault_id,
        kind=FaultKind.SATELLITE,
        targets=tuple(satellite_ids),
        start_s=start_s,
        duration_s=duration_s,
        cause=cause,
    )


def fraction_loss_schedule(satellite_ids: Sequence[str], fraction: float,
                           seed: RngLike = 0, start_s: float = 0.0,
                           duration_s: Optional[float] = None) -> FaultSchedule:
    """Fail a random fraction of the fleet as one correlated event.

    Draws ``round(fraction * n)`` distinct indices with
    ``rng.choice(n, size, replace=False)`` — the same draw the original
    static ``resilience_sweep`` made, so seeded results carry over.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"failure fraction must be in [0, 1), got {fraction}")
    rng = _rng_of(seed)
    count = int(round(fraction * len(satellite_ids)))
    events: List[FaultEvent] = []
    if count:
        indices = rng.choice(len(satellite_ids), size=count, replace=False)
        chosen = [satellite_ids[int(i)] for i in sorted(indices)]
        events.append(satellite_outage_event(
            chosen, start_s=start_s, duration_s=duration_s,
            fault_id=f"fraction-loss-{fraction:g}",
        ))
    return FaultSchedule(events=events, horizon_s=start_s)


__all__ = [
    "satellite_mtbf_schedule",
    "ground_station_outage_schedule",
    "link_flap_schedule",
    "plane_members",
    "plane_loss_event",
    "provider_withdrawal_event",
    "satellite_outage_event",
    "fraction_loss_schedule",
    "great_circle_km",
    "stations_within",
    "regional_blackout_event",
    "combine",
]
