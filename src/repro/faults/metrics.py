"""Recovery metrics: what fault injection did to service.

The :class:`RecoveryTracker` consumes two streams the fault runner
produces — periodic availability probes and fault-edge probes taken right
after each fail/repair transition — and turns them into the paper-facing
recovery numbers: availability timelines, time-to-reroute, observed MTTR,
and the rerouted/dropped split for flows whose path a fault severed.

Everything is also mirrored into :mod:`repro.obs` counters and histograms
when a recorder is active, so ``--trace`` captures each fault lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro.faults.model import FaultEvent

#: Histogram buckets for recovery durations (1 s .. 2 h of sim time).
RECOVERY_BUCKETS_S: Tuple[float, ...] = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0, 7200.0,
)


@dataclass
class OutageRecord:
    """One user's loss-of-service episode attributed to a fault.

    Attributes:
        user_id: The affected user.
        fault_id: The fault that severed the serving path.
        start_s: When service was lost.
        recovered_s: When service returned (None while still out).
        rerouted: True when the network healed around the fault (service
            returned while the fault was still active); False when only
            the repair itself restored service.
    """

    user_id: str
    fault_id: str
    start_s: float
    recovered_s: Optional[float] = None
    rerouted: bool = False

    @property
    def open(self) -> bool:
        return self.recovered_s is None

    def duration_s(self, horizon_s: float) -> float:
        """Outage length, charging open outages up to the horizon."""
        end = self.recovered_s if self.recovered_s is not None else horizon_s
        return max(0.0, end - self.start_s)


@dataclass
class AvailabilityTimeline:
    """Hold-last-sample availability state for one user.

    Attributes:
        user_id: The user being tracked.
        samples: ``(time_s, available)`` state changes, time-ordered.
    """

    user_id: str
    samples: List[Tuple[float, bool]] = field(default_factory=list)

    def record(self, time_s: float, available: bool) -> None:
        """Record a state observation, keeping samples time-sorted.

        Out-of-order inserts are allowed (a reroute's forced recovery mark
        lands in the future of the transition that created it); at equal
        times the last writer wins.
        """
        pos = len(self.samples)
        while pos > 0 and self.samples[pos - 1][0] > time_s:
            pos -= 1
        if pos > 0 and self.samples[pos - 1][0] == time_s:
            self.samples[pos - 1] = (time_s, available)
            return
        self.samples.insert(pos, (time_s, available))

    def availability(self, start_s: float, end_s: float) -> float:
        """Time-weighted available fraction over ``[start_s, end_s]``.

        State before the first sample counts as unavailable; each sample's
        state holds until the next.
        """
        if end_s <= start_s:
            raise ValueError(f"end {end_s} must be after start {start_s}")
        if not self.samples:
            return 0.0
        total = 0.0
        for (time_a, state), (time_b, _next_state) in zip(
                self.samples, self.samples[1:] + [(end_s, False)]):
            lo = max(start_s, time_a)
            hi = min(end_s, time_b)
            if hi > lo and state:
                total += hi - lo
        return total / (end_s - start_s)


@dataclass
class FaultImpact:
    """Aggregate impact of one fault event.

    Attributes:
        fault_id: The fault.
        applied_s: When it was injected.
        repaired_s: When it was repaired (None for permanent / unhealed).
        elements_failed: Elements it actually took down.
        elements_skipped: Targets that were already absent (quarantined
            or unknown) when it fired.
        users_affected: Monitored users whose serving path it severed.
    """

    fault_id: str
    applied_s: float
    repaired_s: Optional[float] = None
    elements_failed: int = 0
    elements_skipped: int = 0
    users_affected: int = 0


class RecoveryTracker:
    """Builds recovery metrics from probe and fault-transition streams.

    Args:
        reroute_delay_s: Control-plane reconvergence cost charged when a
            severed flow has an alternate path: proactive tables are
            invalid the instant a fault lands, so even an instantly
            reroutable flow is down for one recomputation interval (the
            route-stability ablation's ~15 s refresh epoch by default).
        horizon_s: Simulated period end, used to close open outages in
            the summary.
    """

    def __init__(self, reroute_delay_s: float = 15.0,
                 horizon_s: float = 7200.0):
        if reroute_delay_s < 0.0:
            raise ValueError(
                f"reroute delay must be >= 0, got {reroute_delay_s}"
            )
        self.reroute_delay_s = reroute_delay_s
        self.horizon_s = horizon_s
        self.timelines: Dict[str, AvailabilityTimeline] = {}
        self.outages: List[OutageRecord] = []
        self.impacts: Dict[str, FaultImpact] = {}
        self._last_path: Dict[str, Optional[List[str]]] = {}
        self._open_outage: Dict[str, OutageRecord] = {}
        self._active_faults: Set[str] = set()
        self.probe_count = 0

    # -- probe stream --------------------------------------------------

    def _timeline(self, user_id: str) -> AvailabilityTimeline:
        if user_id not in self.timelines:
            self.timelines[user_id] = AvailabilityTimeline(user_id)
        return self.timelines[user_id]

    def record_probe(self, time_s: float, user_id: str,
                     path: Optional[Sequence[str]]) -> None:
        """Record one availability probe (path None = no service)."""
        self.probe_count += 1
        available = path is not None
        open_outage = self._open_outage.get(user_id)
        if open_outage is not None and available:
            open_outage.recovered_s = time_s
            # Recovered while the causing fault is still active means the
            # network healed around it rather than waiting for repair.
            open_outage.rerouted = open_outage.fault_id in self._active_faults
            del self._open_outage[user_id]
            self._record_recovery(open_outage)
        self._timeline(user_id).record(time_s, available)
        self._last_path[user_id] = list(path) if path is not None else None

    def probe_after_fault(self, time_s: float, event: FaultEvent,
                          failed_nodes: Set[str],
                          failed_edges: Set[Tuple[str, str]],
                          user_id: str,
                          path: Optional[Sequence[str]]) -> None:
        """Classify one user's fate right after a fault transition.

        Three outcomes for a user served before the fault:

        * path untouched — nothing happens;
        * path severed but an alternate exists — *rerouted*: charged one
          ``reroute_delay_s`` of outage (control-plane reconvergence);
        * path severed and no alternate — *dropped*: an open outage that
          closes at the next probe that finds service (typically repair).
        """
        previous = self._last_path.get(user_id)
        impact = self.impacts.get(event.fault_id)
        if previous is None or user_id in self._open_outage:
            # Was not served (or already out): plain probe semantics.
            self.record_probe(time_s, user_id, path)
            return
        severed = bool(failed_nodes.intersection(previous))
        if not severed and failed_edges:
            hops = set()
            for hop_a, hop_b in zip(previous, previous[1:]):
                hops.add((hop_a, hop_b) if hop_a < hop_b else (hop_b, hop_a))
            severed = bool(failed_edges.intersection(hops))
        if not severed:
            self.record_probe(time_s, user_id, path)
            return
        if impact is not None:
            impact.users_affected += 1
        timeline = self._timeline(user_id)
        if path is not None:
            # Alternate path exists: down only for the reconvergence window.
            outage = OutageRecord(
                user_id=user_id, fault_id=event.fault_id, start_s=time_s,
                recovered_s=time_s + self.reroute_delay_s, rerouted=True,
            )
            timeline.record(time_s, False)
            timeline.record(time_s + self.reroute_delay_s, True)
            self._record_recovery(outage)
            self._last_path[user_id] = list(path)
        else:
            outage = OutageRecord(
                user_id=user_id, fault_id=event.fault_id, start_s=time_s,
            )
            timeline.record(time_s, False)
            self._open_outage[user_id] = outage
            self._last_path[user_id] = None
        self.outages.append(outage)

    def _record_recovery(self, outage: OutageRecord) -> None:
        recorder = _obs.active()
        if recorder.enabled and outage.recovered_s is not None:
            duration = outage.recovered_s - outage.start_s
            label = "rerouted" if outage.rerouted else "repaired"
            recorder.observe("faults.restore_s", duration, label=label,
                             buckets=RECOVERY_BUCKETS_S)
            if outage.rerouted:
                recorder.observe("faults.time_to_reroute_s", duration,
                                 buckets=RECOVERY_BUCKETS_S)

    # -- fault-edge stream ---------------------------------------------

    def on_fault_applied(self, time_s: float, event: FaultEvent,
                         elements_failed: int,
                         elements_skipped: int) -> None:
        self._active_faults.add(event.fault_id)
        self.impacts[event.fault_id] = FaultImpact(
            fault_id=event.fault_id, applied_s=time_s,
            elements_failed=elements_failed,
            elements_skipped=elements_skipped,
        )

    def on_fault_repaired(self, time_s: float, event: FaultEvent) -> None:
        self._active_faults.discard(event.fault_id)
        impact = self.impacts.get(event.fault_id)
        if impact is not None and impact.repaired_s is None:
            impact.repaired_s = time_s
            recorder = _obs.active()
            if recorder.enabled:
                recorder.observe("faults.outage_s",
                                 time_s - impact.applied_s,
                                 label=event.kind.value,
                                 buckets=RECOVERY_BUCKETS_S)

    # -- aggregates ----------------------------------------------------

    def mean_availability(self, start_s: float = 0.0,
                          end_s: Optional[float] = None) -> float:
        """Mean time-weighted availability across monitored users."""
        end = self.horizon_s if end_s is None else end_s
        if not self.timelines:
            return float("nan")
        values = [
            timeline.availability(start_s, end)
            for timeline in self.timelines.values()
        ]
        return sum(values) / len(values)

    def observed_mttr_s(self) -> float:
        """Mean realized repair time over healed faults (NaN when none)."""
        healed = [
            impact.repaired_s - impact.applied_s
            for impact in self.impacts.values()
            if impact.repaired_s is not None
        ]
        if not healed:
            return float("nan")
        return sum(healed) / len(healed)

    def summary(self) -> Dict:
        """The standard recovery-metric row for one run."""
        rerouted = [o for o in self.outages if o.rerouted]
        dropped = [o for o in self.outages if not o.rerouted]
        unrecovered = [o for o in self.outages if o.open]
        restore_times = [
            o.recovered_s - o.start_s for o in self.outages if not o.open
        ]
        reroute_times = [
            o.recovered_s - o.start_s for o in rerouted if not o.open
        ]
        affected = sum(
            1 for impact in self.impacts.values() if impact.users_affected
        )
        return {
            "faults_injected": len(self.impacts),
            "faults_repaired": sum(
                1 for i in self.impacts.values() if i.repaired_s is not None
            ),
            "faults_user_affecting": affected,
            "faults_absorbed": len(self.impacts) - affected,
            "flows_rerouted": len(rerouted),
            "flows_dropped": len(dropped),
            "flows_unrecovered": len(unrecovered),
            "mean_availability": self.mean_availability(),
            "mean_restore_s": (
                sum(restore_times) / len(restore_times)
                if restore_times else 0.0
            ),
            "mean_time_to_reroute_s": (
                sum(reroute_times) / len(reroute_times)
                if reroute_times else 0.0
            ),
            "observed_mttr_s": self.observed_mttr_s(),
            "probes": self.probe_count,
        }
