"""Antenna-time scheduling at shared ground stations.

Gateway antennas are the scarce physical resource the paper's
ground-station-as-a-service model sells: a dish tracks one satellite at a
time, so overlapping contact requests from different providers must be
arbitrated.  The scheduler implements weighted interval scheduling with a
greedy earliest-deadline heuristic across N antennas, plus per-provider
accounting that feeds the GS-aaS meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.orbits.contact import ContactWindow


@dataclass(frozen=True)
class ContactRequest:
    """One provider's request for antenna time.

    Attributes:
        request_id: Unique identifier.
        provider: Requesting operator.
        window: The orbital visibility window the contact must fit in.
        min_duration_s: Shortest useful contact (shorter grants are
            worthless — the pass setup overhead dominates).
        priority: Larger = more important (owner traffic typically wins).
    """

    request_id: str
    provider: str
    window: ContactWindow
    min_duration_s: float = 60.0
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.min_duration_s <= 0.0:
            raise ValueError(
                f"min duration must be positive, got {self.min_duration_s}"
            )
        if self.window.duration_s <= 0.0:
            raise ValueError("window must have positive duration")


@dataclass(frozen=True)
class Reservation:
    """A granted antenna slot."""

    request_id: str
    provider: str
    antenna: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ScheduleResult:
    """Outcome of one scheduling round.

    Attributes:
        reservations: Granted slots.
        rejected: Requests that could not be placed.
        antenna_busy_s: Busy time per antenna index.
    """

    reservations: List[Reservation] = field(default_factory=list)
    rejected: List[ContactRequest] = field(default_factory=list)
    antenna_busy_s: Dict[int, float] = field(default_factory=dict)

    @property
    def grant_ratio(self) -> float:
        total = len(self.reservations) + len(self.rejected)
        if total == 0:
            return 0.0
        return len(self.reservations) / total

    def provider_time_s(self) -> Dict[str, float]:
        """Granted antenna seconds per provider (GS-aaS billing input)."""
        usage: Dict[str, float] = {}
        for reservation in self.reservations:
            usage[reservation.provider] = (
                usage.get(reservation.provider, 0.0) + reservation.duration_s
            )
        return usage


class AntennaScheduler:
    """Schedules contact requests onto a station's antennas.

    Greedy by (priority desc, earliest window end): high-priority
    requests choose first; within a priority class, earliest-deadline-
    first maximizes the number of grants (the classic interval-scheduling
    argument).  A request is placed on the first antenna with enough
    contiguous free time inside its window.

    Args:
        antenna_count: Dishes at the station.
        slew_gap_s: Dead time an antenna needs between consecutive
            contacts (repointing).
    """

    def __init__(self, antenna_count: int = 1, slew_gap_s: float = 30.0):
        if antenna_count < 1:
            raise ValueError(f"need >= 1 antenna, got {antenna_count}")
        if slew_gap_s < 0.0:
            raise ValueError(f"slew gap must be >= 0, got {slew_gap_s}")
        self.antenna_count = antenna_count
        self.slew_gap_s = slew_gap_s

    def schedule(self, requests: Sequence[ContactRequest]) -> ScheduleResult:
        """Produce a reservation plan for one batch of requests."""
        result = ScheduleResult(
            antenna_busy_s={index: 0.0 for index in range(self.antenna_count)}
        )
        # (start, end) reservations per antenna, kept sorted.
        booked: List[List[Tuple[float, float]]] = [
            [] for _ in range(self.antenna_count)
        ]
        ordered = sorted(
            requests,
            key=lambda r: (-r.priority, r.window.end_s, r.request_id),
        )
        for request in ordered:
            placed = self._place(request, booked)
            if placed is None:
                result.rejected.append(request)
                continue
            antenna, start, end = placed
            booked[antenna].append((start, end))
            booked[antenna].sort()
            result.reservations.append(Reservation(
                request_id=request.request_id,
                provider=request.provider,
                antenna=antenna,
                start_s=start,
                end_s=end,
            ))
            result.antenna_busy_s[antenna] += end - start
        return result

    def _place(self, request: ContactRequest,
               booked: List[List[Tuple[float, float]]]) -> Optional[Tuple[int, float, float]]:
        """Find the first antenna/interval fitting the request."""
        window = request.window
        for antenna in range(self.antenna_count):
            # Candidate free gaps inside the window, respecting slew gaps.
            slots = booked[antenna]
            cursor = window.start_s
            for start, end in slots + [(window.end_s + self.slew_gap_s,
                                        window.end_s + self.slew_gap_s)]:
                free_until = min(start - self.slew_gap_s, window.end_s)
                if free_until - cursor >= request.min_duration_s:
                    grant_end = min(free_until, window.end_s)
                    return antenna, cursor, grant_end
                cursor = max(cursor, end + self.slew_gap_s)
                if cursor >= window.end_s:
                    break
        return None
