"""User terminals.

End users "simply associate with the available overhead satellite that
supports OpenSpace"; each signs up with a home ISP and roams freely onto
other providers' satellites.  The terminal tracks its association state;
the association/handover protocols themselves live in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.phy.rf import RFTerminal, standard_ku_user_terminal


@dataclass
class UserTerminal:
    """One ground user.

    Attributes:
        user_id: Stable identifier.
        location: Geodetic position (users move rarely relative to
            satellites; re-association handles relocation).
        home_provider: The ISP the user subscribes to and authenticates
            against.
        terminal: The user's RF terminal.
        min_elevation_deg: Elevation mask for usable satellites.
        associated_satellite: Satellite id currently serving the user, or
            None while unassociated.
        session_certificate: The roaming certificate issued by the home
            provider after authentication (opaque token here).
    """

    user_id: str
    location: GeodeticPoint
    home_provider: str
    terminal: RFTerminal = field(default_factory=standard_ku_user_terminal)
    min_elevation_deg: float = 25.0
    associated_satellite: Optional[str] = None
    session_certificate: Optional[str] = None

    def position_eci(self, time_s: float) -> np.ndarray:
        """ECI position of the user at simulation time ``time_s``."""
        return ecef_to_eci(self.location.ecef(), time_s)

    @property
    def is_associated(self) -> bool:
        return self.associated_satellite is not None

    def relocate(self, new_location: GeodeticPoint) -> None:
        """Move the terminal; drops association and certificate.

        "If a user changes their location such that they are no longer in
        the same physical region, they will have to go through the initial
        association and authentication process again."
        """
        self.location = new_location
        self.associated_satellite = None
        self.session_certificate = None
