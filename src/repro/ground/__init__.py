"""Ground segment: stations, user terminals, and gateway-as-a-service.

OpenSpace "leverag[es] shared ground infrastructure, composed of
distributed ground stations that have a reliable backhaul connectivity to
the Internet ... ground stations could be owned by independent entities,
which may price their services differently" — the pay-per-use
ground-station-as-a-service model.
"""

from repro.ground.station import GroundStation, default_station_network
from repro.ground.user import UserTerminal
from repro.ground.gsaas import GatewayPricing, GatewayUsageMeter
from repro.ground.scheduling import (
    AntennaScheduler,
    ContactRequest,
    Reservation,
    ScheduleResult,
)

__all__ = [
    "GroundStation",
    "default_station_network",
    "UserTerminal",
    "GatewayPricing",
    "GatewayUsageMeter",
    "AntennaScheduler",
    "ContactRequest",
    "Reservation",
    "ScheduleResult",
]
