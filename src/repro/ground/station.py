"""Ground stations with Internet backhaul.

Stations operate "on standardized radio links, much like those used for
ISL ... except for specific implementation details such as the exact
spectrum bands used for ground uplink and downlink".  Each station is owned
by an independent operator and carries a gateway pricing card (see
:mod:`repro.ground.gsaas`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.ground.gsaas import GatewayPricing
from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.phy.rf import RFTerminal, standard_gateway_terminal


@dataclass
class GroundStation:
    """One gateway site.

    Attributes:
        station_id: Stable identifier (graph node key).
        location: Geodetic site location.
        owner: Operator that owns this station.
        terminal: The gateway RF terminal (Ka-band dish by default).
        backhaul_capacity_bps: Internet backhaul capacity.
        min_elevation_deg: Elevation mask for serving satellites.
        pricing: Gateway-as-a-service rate card.
        current_load_bps: Present traffic through the gateway — feeds the
            dynamic "visitor tariff under high load" behaviour from the
            paper's cost-model discussion.
        rain_rate_mm_h: Local rain rate; degrades Ku/Ka link budgets
            (rain fade), steering traffic to dry gateways.
    """

    station_id: str
    location: GeodeticPoint
    owner: str
    terminal: RFTerminal = field(default_factory=standard_gateway_terminal)
    backhaul_capacity_bps: float = 10e9
    min_elevation_deg: float = 10.0
    pricing: GatewayPricing = field(default_factory=GatewayPricing)
    current_load_bps: float = 0.0
    rain_rate_mm_h: float = 0.0

    def __post_init__(self) -> None:
        if self.backhaul_capacity_bps <= 0.0:
            raise ValueError(
                f"backhaul capacity must be positive, got {self.backhaul_capacity_bps}"
            )
        if self.rain_rate_mm_h < 0.0:
            raise ValueError(
                f"rain rate must be >= 0, got {self.rain_rate_mm_h}"
            )

    def position_eci(self, time_s: float) -> np.ndarray:
        """ECI position of the station at simulation time ``time_s``."""
        return ecef_to_eci(self.location.ecef(), time_s)

    @property
    def utilization(self) -> float:
        """Fraction of backhaul capacity in use, clamped to [0, 1]."""
        return min(1.0, self.current_load_bps / self.backhaul_capacity_bps)

    def visitor_tariff_per_gb(self, visitor: bool = True) -> float:
        """Current $/GB through this gateway.

        "In the event that a ground station ... is experiencing high
        traffic, that ground station may prioritize traffic coming from its
        users, and may place higher tariffs on 'visitor' traffic."
        """
        return self.pricing.effective_rate_per_gb(self.utilization, visitor)

    def queue_delay_s(self) -> float:
        """M/M/1-style queueing delay proxy at the gateway.

        Grows as ``base / (1 - utilization)``; saturates at one second so
        pathological load does not produce infinities inside the routing
        cost model.
        """
        base_s = 0.002
        headroom = max(1e-3, 1.0 - self.utilization)
        return min(1.0, base_s / headroom)

    def offer_load(self, added_bps: float) -> bool:
        """Try to add traffic through the gateway; False when saturated."""
        if added_bps < 0.0:
            raise ValueError(f"load must be >= 0, got {added_bps}")
        if self.current_load_bps + added_bps > self.backhaul_capacity_bps:
            return False
        self.current_load_bps += added_bps
        return True

    def release_load(self, removed_bps: float) -> None:
        """Remove previously offered traffic (clamped at zero)."""
        self.current_load_bps = max(0.0, self.current_load_bps - removed_bps)


#: A geographically spread default gateway network: one site per region,
#: owned by distinct entities, matching the paper's independent-ownership
#: ground segment.  Coordinates are representative teleport locations.
_DEFAULT_SITES = [
    ("gs-virginia", 38.9, -77.4, "ground-usa"),
    ("gs-oregon", 45.6, -121.2, "ground-usa"),
    ("gs-ireland", 53.4, -6.3, "ground-eu"),
    ("gs-frankfurt", 50.1, 8.7, "ground-eu"),
    ("gs-bahrain", 26.1, 50.6, "ground-me"),
    ("gs-capetown", -33.9, 18.4, "ground-africa"),
    ("gs-nairobi", -1.3, 36.8, "ground-africa"),
    ("gs-mumbai", 19.1, 72.9, "ground-asia"),
    ("gs-singapore", 1.35, 103.8, "ground-asia"),
    ("gs-tokyo", 35.7, 139.7, "ground-asia"),
    ("gs-sydney", -33.9, 151.2, "ground-oceania"),
    ("gs-saopaulo", -23.5, -46.6, "ground-latam"),
    ("gs-santiago", -33.4, -70.7, "ground-latam"),
    ("gs-anchorage", 61.2, -149.9, "ground-polar"),
    ("gs-svalbard", 78.2, 15.6, "ground-polar"),
]


def default_station_network(backhaul_capacity_bps: float = 10e9) -> List[GroundStation]:
    """The default independently owned, globally spread gateway network."""
    return [
        GroundStation(
            station_id=station_id,
            location=GeodeticPoint(lat, lon, 0.0),
            owner=owner,
            backhaul_capacity_bps=backhaul_capacity_bps,
        )
        for station_id, lat, lon, owner in _DEFAULT_SITES
    ]
