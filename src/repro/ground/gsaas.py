"""Ground-station-as-a-service pricing.

"These ground stations build on the pay-per-use ground-station-as-a-service
model, much like today's AWS Ground Station, except that in OpenSpace
ground stations could be owned by independent entities, which may price
their services differently."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class GatewayPricing:
    """One station's rate card.

    Attributes:
        base_rate_per_gb: $/GB for the owner's own traffic.
        visitor_rate_per_gb: $/GB for traffic from other providers.
        congestion_multiplier: Factor applied to visitor traffic as
            utilization climbs — the paper's "higher tariffs on 'visitor'
            traffic" under high load.  The surcharge ramps linearly above
            the congestion threshold.
        congestion_threshold: Utilization above which surcharging starts.
        per_pass_fee: Flat fee per satellite contact (AWS-GS-style
            per-minute/per-pass element, folded to one number).
    """

    base_rate_per_gb: float = 0.02
    visitor_rate_per_gb: float = 0.05
    congestion_multiplier: float = 3.0
    congestion_threshold: float = 0.7
    per_pass_fee: float = 3.0

    def __post_init__(self) -> None:
        if self.base_rate_per_gb < 0.0 or self.visitor_rate_per_gb < 0.0:
            raise ValueError("rates must be >= 0")
        if not 0.0 <= self.congestion_threshold <= 1.0:
            raise ValueError(
                f"congestion threshold must be in [0, 1], got "
                f"{self.congestion_threshold}"
            )

    def effective_rate_per_gb(self, utilization: float,
                              visitor: bool) -> float:
        """Current $/GB given gateway utilization and traffic class."""
        utilization = min(1.0, max(0.0, utilization))
        rate = self.visitor_rate_per_gb if visitor else self.base_rate_per_gb
        if visitor and utilization > self.congestion_threshold:
            overload = (utilization - self.congestion_threshold) / max(
                1e-9, 1.0 - self.congestion_threshold
            )
            rate *= 1.0 + overload * (self.congestion_multiplier - 1.0)
        return rate


@dataclass
class GatewayUsageMeter:
    """Tracks metered usage of one gateway by many providers.

    "Ground stations should measure traffic through their gateways from
    users associated with different providers" — this is that meter; its
    records feed the cross-verifiable settlement ledger.
    """

    station_id: str
    owner: str
    pricing: GatewayPricing = field(default_factory=GatewayPricing)
    bytes_by_provider: Dict[str, float] = field(default_factory=dict)
    passes_by_provider: Dict[str, int] = field(default_factory=dict)

    def record_transfer(self, provider: str, transferred_bytes: float,
                        utilization: float = 0.0) -> float:
        """Meter a transfer; returns the charge in dollars.

        Args:
            provider: Provider whose traffic crossed the gateway.
            transferred_bytes: Bytes transferred.
            utilization: Gateway utilization at transfer time (drives the
                visitor congestion surcharge).
        """
        if transferred_bytes < 0.0:
            raise ValueError(f"bytes must be >= 0, got {transferred_bytes}")
        self.bytes_by_provider[provider] = (
            self.bytes_by_provider.get(provider, 0.0) + transferred_bytes
        )
        visitor = provider != self.owner
        rate = self.pricing.effective_rate_per_gb(utilization, visitor)
        return rate * transferred_bytes / 1e9

    def record_pass(self, provider: str) -> float:
        """Meter one satellite contact; returns the per-pass fee."""
        self.passes_by_provider[provider] = (
            self.passes_by_provider.get(provider, 0) + 1
        )
        return 0.0 if provider == self.owner else self.pricing.per_pass_fee

    def statement(self) -> List[Tuple[str, float, int]]:
        """Per-provider (bytes, passes) usage statement, provider-sorted."""
        providers = sorted(
            set(self.bytes_by_provider) | set(self.passes_by_provider)
        )
        return [
            (
                provider,
                self.bytes_by_provider.get(provider, 0.0),
                self.passes_by_provider.get(provider, 0),
            )
            for provider in providers
        ]
