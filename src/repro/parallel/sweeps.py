"""Seeded sweep-grid execution, serial or multi-process.

Determinism contract
--------------------

``run_grid(worker, points, jobs=N)`` returns exactly the same list for
every ``N``.  That only holds when the worker obeys two rules:

1. **Self-contained points.**  The worker is a top-level (picklable)
   function of its point alone — no closure state, no shared mutable
   globals, no open network objects.  Anything the point needs travels
   inside the point tuple.
2. **Point-derived randomness.**  Random streams come from
   :func:`derive_seed` (or an equivalent per-point derivation), never
   from a generator shared across points: a shared generator's state
   depends on execution order, which a process pool does not preserve.

Observability
-------------

When a :mod:`repro.obs` recorder is active in the parent process,
``run_grid`` wraps the grid in a ``parallel.<label>`` span (wall time
lands in the span's ``duration_s``, which the export layer already
treats as nondeterministic) and records the point and job counts as
metrics.  Metric *values* stay deterministic — same-seed runs export
identical instruments regardless of ``jobs``.  Workers running in child
processes have no recorder, so per-point spans and worker metrics only
appear in traces for serial runs — metrics do not affect results either
way.

**Events and the health plane survive the pool.**  When the parent
recorder is enabled and the grid fans out, each worker installs a local
recorder around its point, ships the point's event/health rows back with
the result, and the parent replays them in point order — so the exported
event stream and health plane are byte-identical at every ``jobs``
value (each point establishes its own health-diff baseline; see
:meth:`repro.obs.health.HealthPlane.sample`).
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import obs as _obs

#: Seeds are truncated SHA-256 digests: 63 bits keeps them positive and
#: inside the range every integer seed consumer here accepts.
_SEED_BITS = 63


def derive_seed(base_seed: int, *components: Any) -> int:
    """A stable per-point seed for one sweep point.

    Hashes the base seed together with the point coordinates (any
    JSON-serializable values; other types are stringified), so distinct
    points get statistically independent streams while the same point
    always gets the same stream — regardless of execution order or
    process.

    Args:
        base_seed: The sweep-level seed the user passed.
        *components: Values identifying the point, e.g.
            ``("figure2b", satellite_count)``.

    Returns:
        A non-negative int below ``2**63``.
    """
    payload = json.dumps(
        [int(base_seed), *components],
        separators=(",", ":"),
        default=str,
    ).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


class SweepPointError(RuntimeError):
    """One sweep point's worker raised.

    Wraps the original exception with everything needed to reproduce the
    failing point without re-running the whole grid: the sweep label, the
    point's grid index, its repr, and — when the point carries one — its
    seed.  The original exception is chained as ``__cause__`` on the
    serial path; on the pooled path the worker's traceback arrives via
    the pool's remote-traceback plumbing.

    Attributes:
        label: The ``run_grid`` label of the failing sweep.
        index: Zero-based grid index of the failing point.
        total: Grid size.
        point: The point value the worker received.
        cause: ``"TypeName: message"`` of the original exception.
        seed: The point's seed when discoverable (a ``seed`` key or
            attribute), else None.
    """

    def __init__(self, label: str, index: int, total: int, point: Any,
                 cause: str, seed: Optional[int] = None):
        self.label = label
        self.index = index
        self.total = total
        self.point = point
        self.cause = cause
        self.seed = seed
        seed_note = "" if seed is None else f", seed={seed}"
        super().__init__(
            f"sweep '{label}' point {index + 1}/{total} failed"
            f"{seed_note}: {point!r} ({cause})"
        )

    def __reduce__(self):
        # Keep the pool's exception round-trip intact: the default
        # Exception reduction re-invokes __init__ with .args (the
        # formatted message), which does not match this signature.
        return (self.__class__, (self.label, self.index, self.total,
                                 self.point, self.cause, self.seed))


def _point_seed(point: Any) -> Optional[int]:
    """Best-effort seed discovery for failure reports.

    Recognizes a ``seed`` mapping key or attribute on the point; plain
    tuples (the common point shape here) carry no marker, so they report
    no seed rather than guessing at a field.
    """
    if isinstance(point, dict):
        seed = point.get("seed")
    else:
        seed = getattr(point, "seed", None)
    return seed if isinstance(seed, int) and not isinstance(seed, bool) \
        else None


def _timed_call(worker: Callable[[Any], Any], point: Any, index: int = 0,
                capture_events: bool = False, label: str = "sweep",
                total: int = 1) -> Tuple[float, Any, Any]:
    """Run one point, returning (busy seconds, result, obs rows or None).

    Module-level so ``functools.partial(_timed_call, worker)`` stays
    picklable for the process pool.  With ``capture_events`` (the pooled
    path under an enabled parent recorder) a local recorder is installed
    around the point and its event/health rows travel back with the
    result for in-order replay by the parent.

    A worker exception is re-raised as :class:`SweepPointError` carrying
    the point's index, repr, and seed — the pooled path would otherwise
    surface a bare traceback with no hint of *which* point died.
    """
    start = time.perf_counter()
    try:
        if not capture_events:
            result = worker(point)
            return time.perf_counter() - start, result, None
        local = _obs.Recorder()
        with _obs.use(local):
            result = worker(point)
    except SweepPointError:
        raise
    except Exception as exc:
        raise SweepPointError(
            label, index, total, point,
            f"{type(exc).__name__}: {exc}", seed=_point_seed(point),
        ) from exc
    rows = local.health.rows() + local.events.rows()
    return time.perf_counter() - start, result, rows


def run_grid(worker: Callable[[Any], Any], points: Sequence[Any],
             jobs: int = 1, label: str = "sweep") -> List[Any]:
    """Run ``worker`` over every point, serially or in a process pool.

    Args:
        worker: Top-level function of one point.  Must follow the
            determinism contract in the module docstring.
        points: The sweep grid; each element is passed to ``worker``
            unchanged (use tuples/dataclasses for multi-field points).
        jobs: Worker processes.  ``1`` runs in-process (no pool, no
            pickling); higher values fan out while preserving point
            order in the returned list.
        label: Metric suffix for the recorded counters
            (``parallel.<label>.*``).

    Returns:
        ``[worker(p) for p in points]`` — same values for every ``jobs``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    points = list(points)
    worker_count = 1 if len(points) <= 1 else min(jobs, len(points))
    recorder = _obs.active()
    # Wall time belongs to the span (duration_s is nondeterministic by
    # contract); the counters below must stay identical across runs.
    with _obs.span(f"parallel.{label}", points=len(points),
                   jobs=worker_count):
        if worker_count == 1:
            timed = [
                _timed_call(worker, point, index, label=label,
                            total=len(points))
                for index, point in enumerate(points)
            ]
        else:
            call = partial(_timed_call, worker,
                           capture_events=recorder.enabled,
                           label=label, total=len(points))
            with ProcessPoolExecutor(max_workers=worker_count) as pool:
                timed = list(pool.map(call, points, range(len(points))))
    if recorder.enabled:
        # Replay worker timelines in point order: the merged stream is
        # indistinguishable from the serial run's.
        for _, _, rows in timed:
            if rows:
                recorder.health.replay_rows(rows)
                recorder.events.replay_rows(rows)
        if points:
            recorder.count(f"parallel.{label}.points", len(points))
            recorder.gauge(f"parallel.{label}.jobs", float(worker_count))
    return [result for _, result, _ in timed]
