"""Deterministic parallel execution of experiment sweeps.

The sweeps in this repo are embarrassingly parallel across their grid
points (satellite counts, failure-rate rows, ablation variants) — but
only once every point derives its randomness from the point itself
instead of consuming a shared generator sequentially.  This package
provides the two pieces that make the fan-out safe:

* :func:`derive_seed` — a stable per-point seed, hashed from the base
  seed plus the point coordinates, so a point's random stream is the
  same whether it runs first, last, serially, or in another process.
* :func:`run_grid` — runs a worker over a point grid either serially or
  on a :class:`~concurrent.futures.ProcessPoolExecutor`, returning
  results in point order.  Output is byte-identical for every ``jobs``
  value.
"""

from repro.parallel.sweeps import SweepPointError, derive_seed, run_grid

__all__ = ["SweepPointError", "derive_seed", "run_grid"]
