"""Roaming certificates.

"The user's home provider should assign the user a digital certificate to
inform other satellite providers that the user has been authenticated by
their home network."  Certificates are HMAC-signed tokens (standard-library
crypto only); any provider holding the issuer's published verification key
can check them offline — no round trip to the home provider on handover.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, Set


class CertificateError(Exception):
    """Raised when a certificate fails verification."""


@dataclass(frozen=True)
class RoamingCertificate:
    """A signed attestation that a user authenticated with their home ISP.

    Attributes:
        user_id: The authenticated subscriber.
        issuer: Home provider name.
        issued_at_s: Issue timestamp (simulation time).
        expires_at_s: Expiry timestamp.
        serial: Unique serial (revocation handle).
        signature: HMAC over the certificate body.
    """

    user_id: str
    issuer: str
    issued_at_s: float
    expires_at_s: float
    serial: str
    signature: bytes

    def body(self) -> bytes:
        """The byte string covered by the signature."""
        return (
            f"{self.user_id}|{self.issuer}|{self.issued_at_s:.3f}"
            f"|{self.expires_at_s:.3f}|{self.serial}"
        ).encode()


class CertificateAuthority:
    """A home provider's certificate issuance and verification authority.

    In a deployed system this would be an asymmetric-key PKI; the HMAC
    construction preserves the protocol shape (issue once, verify anywhere
    the verification key is distributed, revoke by serial) with stdlib
    crypto.

    Args:
        issuer: Provider name appearing on issued certificates.
        signing_key: HMAC key; generated when omitted.
    """

    def __init__(self, issuer: str, signing_key: bytes = b""):
        self.issuer = issuer
        self._key = signing_key or secrets.token_bytes(32)
        self._revoked: Set[str] = set()
        self.issued_count = 0

    @property
    def verification_key(self) -> bytes:
        """The key other providers use to verify (symmetric stand-in)."""
        return self._key

    def issue(self, user_id: str, now_s: float,
              validity_s: float = 86400.0) -> RoamingCertificate:
        """Mint a certificate for an authenticated subscriber."""
        if validity_s <= 0.0:
            raise ValueError(f"validity must be positive, got {validity_s}")
        serial = secrets.token_hex(8)
        unsigned = RoamingCertificate(
            user_id=user_id,
            issuer=self.issuer,
            issued_at_s=now_s,
            expires_at_s=now_s + validity_s,
            serial=serial,
            signature=b"",
        )
        signature = hmac.new(self._key, unsigned.body(), hashlib.sha256).digest()
        self.issued_count += 1
        return RoamingCertificate(
            user_id=user_id,
            issuer=self.issuer,
            issued_at_s=now_s,
            expires_at_s=now_s + validity_s,
            serial=serial,
            signature=signature,
        )

    def verify(self, certificate: RoamingCertificate, now_s: float) -> None:
        """Check a certificate; raises :class:`CertificateError` on failure."""
        if certificate.issuer != self.issuer:
            raise CertificateError(
                f"issuer mismatch: certificate from {certificate.issuer!r}, "
                f"authority is {self.issuer!r}"
            )
        expected = hmac.new(self._key, certificate.body(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected, certificate.signature):
            raise CertificateError("signature verification failed")
        if certificate.serial in self._revoked:
            raise CertificateError(f"certificate {certificate.serial} revoked")
        if now_s < certificate.issued_at_s:
            raise CertificateError("certificate not yet valid")
        if now_s > certificate.expires_at_s:
            raise CertificateError("certificate expired")

    def is_valid(self, certificate: RoamingCertificate, now_s: float) -> bool:
        """Boolean convenience wrapper over :meth:`verify`."""
        try:
            self.verify(certificate, now_s)
        except CertificateError:
            return False
        return True

    def revoke(self, serial: str) -> None:
        """Revoke a certificate by serial (bad-actor cutoff path)."""
        self._revoked.add(serial)

    @property
    def revoked_count(self) -> int:
        return len(self._revoked)


class TrustStore:
    """A provider's collection of other providers' verification keys.

    Distributed out of band when providers join the federation; lets any
    serving satellite verify roaming certificates locally.
    """

    def __init__(self):
        self._authorities: Dict[str, CertificateAuthority] = {}

    def add_authority(self, authority: CertificateAuthority) -> None:
        self._authorities[authority.issuer] = authority

    def verify(self, certificate: RoamingCertificate, now_s: float) -> None:
        """Verify against the issuer's authority.

        Raises:
            CertificateError: Unknown issuer or failed verification.
        """
        authority = self._authorities.get(certificate.issuer)
        if authority is None:
            raise CertificateError(
                f"no trust anchor for issuer {certificate.issuer!r}"
            )
        authority.verify(certificate, now_s)

    def known_issuers(self) -> Set[str]:
        return set(self._authorities)
