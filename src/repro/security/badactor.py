"""Bad-actor detection and cutoff.

From the paper's discussion: "it is worth exploring a security protocol to
quickly identify and cut off bad actors in the network; such as attempts by
non-OpenSpace agents to intercept user traffic."

The monitor keeps a per-provider trust score driven by observable
misbehaviour reports (dropped transit traffic, forged certificates,
ledger-mismatch disputes, interception attempts).  Scores decay back toward
neutral over time; crossing the cutoff threshold quarantines the provider,
which the federation layer translates into excluding their satellites from
routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: Severity weights per report kind.
REPORT_SEVERITY: Dict[str, float] = {
    "transit_drop": 0.05,
    "ledger_mismatch": 0.15,
    "forged_certificate": 0.5,
    "interception_attempt": 0.6,
    "beacon_spoofing": 0.4,
}


@dataclass
class TrustScore:
    """One provider's rolling trust state.

    Attributes:
        provider: Provider name.
        score: 1.0 = fully trusted, 0.0 = fully distrusted.
        reports: Count of misbehaviour reports by kind.
    """

    provider: str
    score: float = 1.0
    reports: Dict[str, int] = field(default_factory=dict)

    def apply_report(self, kind: str, severity: float) -> None:
        self.reports[kind] = self.reports.get(kind, 0) + 1
        self.score = max(0.0, self.score - severity)

    def decay(self, dt_s: float, recovery_per_hour: float) -> None:
        """Recover trust slowly while no new reports arrive."""
        self.score = min(1.0, self.score + recovery_per_hour * dt_s / 3600.0)


class BadActorMonitor:
    """Federation-wide misbehaviour tracking and quarantine.

    Args:
        cutoff_threshold: Providers whose score falls below this are
            quarantined.
        reinstate_threshold: Quarantined providers whose score recovers
            above this are reinstated (hysteresis avoids flapping).
        recovery_per_hour: Trust recovered per report-free hour.
    """

    def __init__(self, cutoff_threshold: float = 0.4,
                 reinstate_threshold: float = 0.7,
                 recovery_per_hour: float = 0.02):
        if not 0.0 <= cutoff_threshold < reinstate_threshold <= 1.0:
            raise ValueError(
                "need 0 <= cutoff < reinstate <= 1, got "
                f"{cutoff_threshold}, {reinstate_threshold}"
            )
        self.cutoff_threshold = cutoff_threshold
        self.reinstate_threshold = reinstate_threshold
        self.recovery_per_hour = recovery_per_hour
        self._scores: Dict[str, TrustScore] = {}
        self._quarantined: Set[str] = set()
        self.events: List[Tuple[float, str, str]] = []

    def _score(self, provider: str) -> TrustScore:
        if provider not in self._scores:
            self._scores[provider] = TrustScore(provider)
        return self._scores[provider]

    def report(self, provider: str, kind: str, now_s: float = 0.0) -> None:
        """File a misbehaviour report against a provider.

        Raises:
            ValueError: For unknown report kinds (catching typos beats
                silently ignoring a security signal).
        """
        severity = REPORT_SEVERITY.get(kind)
        if severity is None:
            known = ", ".join(sorted(REPORT_SEVERITY))
            raise ValueError(f"unknown report kind {kind!r}; known: {known}")
        score = self._score(provider)
        score.apply_report(kind, severity)
        self.events.append((now_s, provider, kind))
        if (provider not in self._quarantined
                and score.score < self.cutoff_threshold):
            self._quarantined.add(provider)
            self.events.append((now_s, provider, "quarantined"))

    def tick(self, dt_s: float, now_s: float = 0.0) -> None:
        """Advance time: decay scores, reinstate recovered providers."""
        if dt_s < 0.0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        for provider, score in self._scores.items():
            score.decay(dt_s, self.recovery_per_hour)
            if (provider in self._quarantined
                    and score.score >= self.reinstate_threshold):
                self._quarantined.discard(provider)
                self.events.append((now_s, provider, "reinstated"))

    def is_quarantined(self, provider: str) -> bool:
        return provider in self._quarantined

    @property
    def quarantined_providers(self) -> Set[str]:
        return set(self._quarantined)

    def trust_of(self, provider: str) -> float:
        """Current trust score (1.0 for providers never reported)."""
        score = self._scores.get(provider)
        return score.score if score else 1.0
