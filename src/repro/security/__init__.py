"""Security substrate: authentication, certificates, bad-actor defence.

Association in OpenSpace authenticates a user against their home ISP
"through a standardized protocol such as RADIUS", after which "the user's
home provider should assign the user a digital certificate to inform other
satellite providers that the user has been authenticated by their home
network."  The discussion section additionally calls for "a security
protocol to quickly identify and cut off bad actors in the network."
"""

from repro.security.auth import (
    AccessAccept,
    AccessReject,
    AccessRequest,
    RadiusServer,
)
from repro.security.certificates import (
    CertificateAuthority,
    RoamingCertificate,
    CertificateError,
)
from repro.security.badactor import BadActorMonitor, TrustScore

__all__ = [
    "AccessAccept",
    "AccessReject",
    "AccessRequest",
    "RadiusServer",
    "CertificateAuthority",
    "RoamingCertificate",
    "CertificateError",
    "BadActorMonitor",
    "TrustScore",
]
