"""RADIUS-style user authentication.

A faithful-in-spirit model of RFC 2865 exchange semantics: the serving
satellite acts as the Network Access Server, forwarding an Access-Request
over ISLs to the user's home provider's RADIUS server, which verifies the
shared secret and responds Access-Accept (with a roaming certificate) or
Access-Reject.  Password hiding uses the RFC's MD5-chained XOR scheme —
implemented here with SHA-256 in place of MD5 — and responses are
authenticated with an HMAC over the request authenticator.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.security.certificates import CertificateAuthority, RoamingCertificate


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        # zip() would silently truncate to the shorter input, corrupting
        # the hidden password instead of surfacing the framing bug.
        raise ValueError(
            f"XOR operands must have equal length, got {len(a)} and {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def _hide_password(password: bytes, secret: bytes, authenticator: bytes) -> bytes:
    """RFC-2865-style password hiding (SHA-256 instead of MD5).

    The password is padded to a 32-byte multiple and each block is XORed
    with a hash chained over the previous ciphertext block.
    """
    if len(password) == 0:
        raise ValueError("password must be non-empty")
    block = 32
    padded = password + b"\x00" * ((block - len(password) % block) % block)
    out = b""
    previous = authenticator
    for i in range(0, len(padded), block):
        digest = hashlib.sha256(secret + previous).digest()
        cipher = _xor_bytes(padded[i:i + block], digest)
        out += cipher
        previous = cipher
    return out


def _reveal_password(hidden: bytes, secret: bytes, authenticator: bytes) -> bytes:
    """Inverse of :func:`_hide_password`."""
    block = 32
    if len(hidden) % block != 0:
        raise ValueError("hidden password length must be a 32-byte multiple")
    out = b""
    previous = authenticator
    for i in range(0, len(hidden), block):
        digest = hashlib.sha256(secret + previous).digest()
        out += _xor_bytes(hidden[i:i + block], digest)
        previous = hidden[i:i + block]
    return out.rstrip(b"\x00")


@dataclass(frozen=True)
class AccessRequest:
    """An Access-Request forwarded from the serving satellite (the NAS).

    Attributes:
        user_id: User-Name attribute.
        hidden_password: User-Password attribute after hiding.
        authenticator: 16-byte random request authenticator.
        nas_id: Identifier of the serving satellite.
        home_provider: Realm the request must be routed to.
    """

    user_id: str
    hidden_password: bytes
    authenticator: bytes
    nas_id: str
    home_provider: str


@dataclass(frozen=True)
class AccessAccept:
    """Successful authentication: carries the roaming certificate."""

    user_id: str
    certificate: RoamingCertificate
    response_hmac: bytes


@dataclass(frozen=True)
class AccessReject:
    """Failed authentication."""

    user_id: str
    reason: str
    response_hmac: bytes


class RadiusServer:
    """One home provider's authentication server.

    Args:
        provider: Provider (realm) name.
        shared_secret: NAS-server shared secret.
        authority: Certificate authority used to mint roaming certificates.
    """

    def __init__(self, provider: str, shared_secret: bytes,
                 authority: Optional[CertificateAuthority] = None):
        if not shared_secret:
            raise ValueError("shared secret must be non-empty")
        self.provider = provider
        self._secret = shared_secret
        self.authority = authority or CertificateAuthority(provider)
        self._credentials: Dict[str, bytes] = {}
        # Response cache keyed by request authenticator: RFC 2865 §2.2
        # duplicate detection.  A retransmitted Access-Request (same
        # authenticator) replays the original verdict instead of minting
        # a second certificate, so lossy-channel retries are idempotent.
        self._responses: Dict[bytes, object] = {}
        self.accept_count = 0
        self.reject_count = 0
        self.duplicate_count = 0

    def enroll(self, user_id: str, password: bytes) -> None:
        """Register a subscriber's credentials."""
        if not password:
            raise ValueError("password must be non-empty")
        self._credentials[user_id] = password

    def make_request(self, user_id: str, password: bytes,
                     nas_id: str) -> AccessRequest:
        """Client/NAS-side construction of an Access-Request."""
        authenticator = secrets.token_bytes(16)
        return AccessRequest(
            user_id=user_id,
            hidden_password=_hide_password(password, self._secret, authenticator),
            authenticator=authenticator,
            nas_id=nas_id,
            home_provider=self.provider,
        )

    def _response_hmac(self, request: AccessRequest, verdict: bytes) -> bytes:
        return hmac.new(
            self._secret, request.authenticator + verdict, hashlib.sha256
        ).digest()

    def handle(self, request: AccessRequest, now_s: float = 0.0,
               validity_s: float = 86400.0):
        """Authenticate a forwarded Access-Request.

        Returns:
            :class:`AccessAccept` with a roaming certificate on success,
            :class:`AccessReject` otherwise.  A retransmission of an
            already-answered request (same authenticator) returns the
            cached response without re-counting or re-issuing anything.
        """
        cached = self._responses.get(request.authenticator)
        if cached is not None:
            self.duplicate_count += 1
            return cached
        response = self._handle_fresh(request, now_s, validity_s)
        self._responses[request.authenticator] = response
        return response

    def _handle_fresh(self, request: AccessRequest, now_s: float,
                      validity_s: float):
        if request.home_provider != self.provider:
            self.reject_count += 1
            return AccessReject(
                request.user_id,
                f"realm mismatch: request for {request.home_provider!r} "
                f"reached {self.provider!r}",
                self._response_hmac(request, b"reject"),
            )
        expected = self._credentials.get(request.user_id)
        if expected is None:
            self.reject_count += 1
            return AccessReject(
                request.user_id, "unknown user",
                self._response_hmac(request, b"reject"),
            )
        try:
            revealed = _reveal_password(
                request.hidden_password, self._secret, request.authenticator
            )
        except ValueError as exc:
            self.reject_count += 1
            return AccessReject(
                request.user_id, f"malformed password field: {exc}",
                self._response_hmac(request, b"reject"),
            )
        if not hmac.compare_digest(revealed, expected):
            self.reject_count += 1
            return AccessReject(
                request.user_id, "bad credentials",
                self._response_hmac(request, b"reject"),
            )
        certificate = self.authority.issue(
            request.user_id, now_s=now_s, validity_s=validity_s
        )
        self.accept_count += 1
        return AccessAccept(
            request.user_id, certificate,
            self._response_hmac(request, b"accept"),
        )

    def verify_response_hmac(self, request: AccessRequest,
                             response) -> bool:
        """NAS-side check that a response really came from this server."""
        verdict = b"accept" if isinstance(response, AccessAccept) else b"reject"
        return hmac.compare_digest(
            response.response_hmac, self._response_hmac(request, verdict)
        )
