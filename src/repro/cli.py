"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script) drives the
reproduction without writing any code:

* ``figure2a`` / ``figure2b`` / ``figure2c`` — regenerate one paper figure;
* ``ablations`` — run every design-axis ablation;
* ``availability`` — reliability and failure-resilience sweeps;
* ``report`` — fast pass of every experiment, written to RESULTS.md;
* ``catalog`` — emit the synthetic public TLE catalog for a constellation
  (the stand-in for the N2YO/AstriaGraph data the paper's routing relies
  on);
* ``latency`` — one-shot user-to-Internet latency query;
* ``obs summarize`` — render a previously captured telemetry file.

Every experiment subcommand accepts ``--trace PATH`` (full JSONL
telemetry: run manifest, counters, histograms, phases, spans) and
``--metrics-out PATH`` (flat CSV of the metric instruments).  With
neither flag, observability stays on the no-op recorder and costs
nothing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure2a(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2a_constellation

    report = figure_2a_constellation(time_s=args.time)
    print(f"{report.name}: {report.satellite_count} satellites, "
          f"{report.plane_count} planes, {report.altitude_km:.0f} km, "
          f"{report.inclination_deg:.1f} deg")
    print(f"ISLs: {report.isl_count} (mean {report.mean_isl_distance_km:.0f}"
          f" km, max {report.max_isl_distance_km:.0f} km), connected: "
          f"{report.connected}")
    print(f"coverage: union {report.coverage_union:.3f}, worst-case "
          f"{report.coverage_worst_case:.3f}")
    return 0


def _cmd_figure2b(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2b_latency

    counts = args.counts or [4, 10, 16, 25, 40, 55, 70]
    result = figure_2b_latency(satellite_counts=counts, trials=args.trials,
                               epochs=args.epochs, seed=args.seed)
    series = {row["x"]: row for row in result["series"]}
    print("satellites reachability latency_mean_ms latency_p95_ms")
    for count in counts:
        row = series.get(count)
        reach = result["reachability"][count]
        if row:
            print(f"{count:>10} {reach:>12.2f} {row['mean']:>15.1f} "
                  f"{row['p95']:>14.1f}")
        else:
            print(f"{count:>10} {reach:>12.2f} {'--':>15} {'--':>14}")
    return 0


def _cmd_figure2c(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2c_coverage

    counts = args.counts or [1, 4, 12, 25, 50, 80]
    rows = figure_2c_coverage(satellite_counts=counts, trials=args.trials,
                              seed=args.seed)
    print("satellites union worst_case cluster")
    for row in rows:
        print(f"{row['satellites']:>10.0f} {row['union']:>5.2f} "
              f"{row['worst_case']:>10.2f} {row['cluster']:>7.2f}")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import (
        ablation_economics,
        ablation_federation,
        ablation_handover,
        ablation_isl_mix,
        ablation_mac,
    )

    print("== ISL mix ==")
    for row in ablation_isl_mix():
        print(f"laser={row['laser_fraction']:.2f} "
              f"premium_admission={row['premium_admission']:.2f} "
              f"capex=${row['fleet_capex_musd']:.0f}M")
    print("== MAC ==")
    for row in ablation_mac():
        print(f"stations={row['stations']} "
              f"csma_delay={row['csma_delay_ms']:.0f}ms "
              f"tdma_delay={row['tdma_delay_ms']:.0f}ms")
    print("== Handover ==")
    result = ablation_handover()
    print(f"handovers={result['handover_count']} "
          f"predictive_outage={result['predictive']['total_interruption_s']:.2f}s "
          f"reauth_outage={result['reauthenticate']['total_interruption_s']:.2f}s")
    print("== Economics ==")
    econ = ablation_economics()
    print(f"fraud caught {econ['mismatches_caught']}/{econ['fraud_injected']}, "
          f"peering: {econ['peering_recommended']}")
    print("== Federation ==")
    for row in ablation_federation():
        print(f"operators={row['operators']} "
              f"federated={row['federated_reachability']:.2f} "
              f"solo={row['solo_reachability']:.2f} "
              f"capex/op=${row['per_operator_capex_musd']:.0f}M")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.orbits.tle import catalog_from_constellation
    from repro.orbits.walker import iridium_like, walker_delta, walker_star

    if args.kind == "iridium":
        constellation = iridium_like()
    elif args.kind == "star":
        constellation = walker_star(args.satellites, args.planes)
    else:
        constellation = walker_delta(args.satellites, args.planes)
    for record in catalog_from_constellation(constellation,
                                             name_prefix=args.prefix):
        for line in record:
            print(line)
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    from repro.experiments.availability import (
        availability_sweep,
        resilience_sweep,
    )

    print("== availability vs fleet size ==")
    for row in availability_sweep(epochs=args.epochs):
        print(f"{row['satellites']:>4} sats ({row['layout']}): "
              f"mean availability {row['mean']:.2f}")
    print("== resilience to failures ==")
    for row in resilience_sweep(epochs=max(2, args.epochs // 2)):
        print(f"fail {row['failed_fraction']:.0%}: "
              f"{row['surviving']} surviving, availability "
              f"{row['mean_availability']:.2f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a fast pass of every experiment and write a markdown report."""
    from repro.experiments.ablations import (
        ablation_economics,
        ablation_handover,
        ablation_isl_mix,
    )
    from repro.experiments.availability import resilience_sweep
    from repro.experiments.figure2 import (
        figure_2a_constellation,
        figure_2b_latency,
        figure_2c_coverage,
    )

    lines = ["# RESULTS — fast reproduction pass", ""]
    report = figure_2a_constellation()
    lines += [
        "## Figure 2(a)",
        "",
        f"- constellation: {report.satellite_count} satellites, "
        f"{report.plane_count} planes, {report.altitude_km:.0f} km",
        f"- ISLs: {report.isl_count}, connected: {report.connected}",
        f"- union coverage: {report.coverage_union:.3f}",
        "",
        "## Figure 2(b) — latency vs satellites",
        "",
        "| satellites | reachability | mean ms |",
        "|---|---|---|",
    ]
    fig2b = figure_2b_latency(satellite_counts=[4, 16, 40, 70],
                              trials=args.trials, epochs=6)
    series = {row["x"]: row for row in fig2b["series"]}
    for count in (4, 16, 40, 70):
        row = series.get(count)
        mean = f"{row['mean']:.1f}" if row else "--"
        lines.append(
            f"| {count} | {fig2b['reachability'][count]:.2f} | {mean} |"
        )
    lines += ["", "## Figure 2(c) — coverage vs satellites", "",
              "| satellites | union | worst-case |", "|---|---|---|"]
    for row in figure_2c_coverage(satellite_counts=[4, 25, 50, 80],
                                  trials=args.trials):
        lines.append(
            f"| {row['satellites']:.0f} | {row['union']:.2f} | "
            f"{row['worst_case']:.2f} |"
        )
    lines += ["", "## Key ablations", ""]
    mix = ablation_isl_mix(laser_fractions=(0.0, 1.0))
    lines.append(
        f"- ISL mix: premium admission {mix[0]['premium_admission']:.2f} "
        f"(RF-only) vs {mix[-1]['premium_admission']:.2f} (all-laser)"
    )
    handover = ablation_handover(duration_s=3600.0)
    lines.append(
        f"- handover: predictive outage "
        f"{handover['predictive']['total_interruption_s']:.2f} s vs reauth "
        f"{handover['reauthenticate']['total_interruption_s']:.2f} s"
    )
    econ = ablation_economics(transfer_count=120)
    lines.append(
        f"- ledger: {econ['mismatches_caught']}/{econ['fraud_injected']} "
        f"fraud caught; peering: {econ['peering_recommended']}"
    )
    resilience = resilience_sweep(failure_fractions=(0.0, 0.2, 0.5),
                                  epochs=3)
    lines.append(
        "- resilience: availability "
        + " -> ".join(
            f"{row['mean_availability']:.2f}@{row['failed_fraction']:.0%}"
            for row in resilience
        )
    )
    lines.append("")
    content = "\n".join(lines)
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output} ({len(lines)} lines)")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.core.interop import SizeClass, build_fleet
    from repro.core.network import OpenSpaceNetwork
    from repro.ground.station import default_station_network
    from repro.ground.user import UserTerminal
    from repro.orbits.coordinates import GeodeticPoint
    from repro.orbits.walker import iridium_like

    fleet = build_fleet(iridium_like(), "cli", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, default_station_network())
    user = UserTerminal("cli-user", GeodeticPoint(args.lat, args.lon),
                        "cli", min_elevation_deg=args.mask)
    latency = network.user_to_internet_latency_s(user, args.time)
    if latency is None:
        print("unreachable: no satellite overhead or no gateway path")
        return 1
    print(f"one-way latency from ({args.lat}, {args.lon}): "
          f"{latency * 1000:.1f} ms")
    return 0


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs.export import summarize_file

    try:
        print(summarize_file(args.file, top=args.top))
    except FileNotFoundError:
        print(f"no such trace file: {args.file}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"malformed trace file: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenSpace reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags, shared by every experiment subcommand (a parent
    # parser so `repro figure2b --trace out.jsonl` parses naturally).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write full JSONL telemetry (manifest, metrics, spans)")
    obs_flags.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write metric instruments as CSV")
    obs_flags.add_argument(
        "--obs-time-events", action="store_true",
        help="also time every simulation-engine event (adds overhead)")

    p2a = sub.add_parser("figure2a", parents=[obs_flags],
                         help="reference constellation report")
    p2a.add_argument("--time", type=float, default=0.0)
    p2a.set_defaults(func=_cmd_figure2a)

    p2b = sub.add_parser("figure2b", parents=[obs_flags],
                         help="latency vs satellite count")
    p2b.add_argument("--counts", type=int, nargs="*", default=None)
    p2b.add_argument("--trials", type=int, default=4)
    p2b.add_argument("--epochs", type=int, default=8)
    p2b.add_argument("--seed", type=int, default=42)
    p2b.set_defaults(func=_cmd_figure2b)

    p2c = sub.add_parser("figure2c", parents=[obs_flags],
                         help="coverage vs satellite count")
    p2c.add_argument("--counts", type=int, nargs="*", default=None)
    p2c.add_argument("--trials", type=int, default=6)
    p2c.add_argument("--seed", type=int, default=42)
    p2c.set_defaults(func=_cmd_figure2c)

    pab = sub.add_parser("ablations", parents=[obs_flags],
                         help="run every design ablation")
    pab.set_defaults(func=_cmd_ablations)

    pcat = sub.add_parser("catalog", parents=[obs_flags],
                          help="emit a synthetic TLE catalog")
    pcat.add_argument("--kind", choices=("iridium", "star", "delta"),
                      default="iridium")
    pcat.add_argument("--satellites", type=int, default=66)
    pcat.add_argument("--planes", type=int, default=6)
    pcat.add_argument("--prefix", default="OPENSPACE")
    pcat.set_defaults(func=_cmd_catalog)

    prep = sub.add_parser("report", parents=[obs_flags],
                          help="fast pass of every experiment -> RESULTS.md")
    prep.add_argument("--output", default="RESULTS.md")
    prep.add_argument("--trials", type=int, default=3)
    prep.set_defaults(func=_cmd_report)

    pav = sub.add_parser("availability", parents=[obs_flags],
                         help="availability and failure-resilience sweeps")
    pav.add_argument("--epochs", type=int, default=8)
    pav.set_defaults(func=_cmd_availability)

    plat = sub.add_parser("latency", parents=[obs_flags],
                          help="user-to-Internet latency query")
    plat.add_argument("--lat", type=float, required=True)
    plat.add_argument("--lon", type=float, required=True)
    plat.add_argument("--time", type=float, default=0.0)
    plat.add_argument("--mask", type=float, default=10.0,
                      help="user elevation mask, degrees")
    plat.set_defaults(func=_cmd_latency)

    pobs = sub.add_parser("obs", help="inspect captured telemetry")
    obs_sub = pobs.add_subparsers(dest="obs_command", required=True)
    psum = obs_sub.add_parser("summarize",
                              help="print top spans/counters of a trace")
    psum.add_argument("file", help="JSONL trace written by --trace")
    psum.add_argument("--top", type=int, default=10,
                      help="rows per section")
    psum.set_defaults(func=_cmd_obs_summarize)
    return parser


def _manifest_for(args: argparse.Namespace) -> dict:
    from repro.obs.export import run_manifest

    config = {
        key: value for key, value in vars(args).items()
        if key not in ("func", "command") and not key.startswith("_")
    }
    return run_manifest(config, seed=getattr(args, "seed", None),
                        command=args.command)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if not (trace_path or metrics_path):
        return args.func(args)

    from repro import obs
    from repro.obs.export import write_metrics_csv, write_trace_jsonl

    recorder = obs.Recorder(obs.ObsConfig(
        time_events=getattr(args, "obs_time_events", False),
    ))
    with obs.use(recorder):
        exit_code = args.func(args)
    try:
        if trace_path:
            count = write_trace_jsonl(recorder, trace_path,
                                      _manifest_for(args))
            print(f"wrote {trace_path} ({count} telemetry records)")
        if metrics_path:
            count = write_metrics_csv(recorder, metrics_path)
            print(f"wrote {metrics_path} ({count} metric rows)")
    except OSError as error:
        print(f"cannot write telemetry: {error}", file=sys.stderr)
        return 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
