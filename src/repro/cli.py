"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script) drives the
reproduction without writing any code:

* ``figure2a`` / ``figure2b`` / ``figure2c`` — regenerate one paper figure;
* ``ablations`` — run every design-axis ablation;
* ``availability`` — reliability and failure-resilience sweeps;
* ``report`` — fast pass of every experiment, written to RESULTS.md;
* ``catalog`` — emit the synthetic public TLE catalog for a constellation
  (the stand-in for the N2YO/AstriaGraph data the paper's routing relies
  on);
* ``latency`` — one-shot user-to-Internet latency query;
* ``faults inject`` / ``faults sweep`` / ``faults replay`` — dynamic
  fault injection: seeded failure schedules replayed in simulated time
  with recovery metrics (time-to-reroute, MTTR, rerouted vs dropped);
* ``reliability sweep`` — control-plane reliability: auth success and
  association-latency inflation under lossy signaling and ISL flaps;
* ``demand sweep`` — the million-user fluid traffic plane: diurnal
  congestion (utilization, delay inflation) and settlement revenue vs
  constellation size, byte-identical at any ``--jobs`` count;
* ``scale sweep`` — mega-constellation scale: topology churn, CSR
  structure reuse, and the delta-vs-full snapshot digest proof over one
  orbital period, byte-identical at any ``--jobs`` count;
* ``dtn sweep`` — disrupted communications: IoT telemetry evacuated
  from a regional gateway blackout through the store-and-forward
  bundle plane (delivery ratio/delay, custody retransmissions, buffer
  drops vs blackout radius x duration x buffer budget);
* ``obs summarize`` — render a previously captured telemetry file;
* ``obs report`` — self-contained HTML timeline/health report from a
  captured event stream.

Every experiment subcommand accepts ``--trace PATH`` (full JSONL
telemetry: run manifest, counters, histograms, phases, spans),
``--metrics-out PATH`` (flat CSV of the metric instruments),
``--events-out PATH`` (JSONL event timeline + health plane), and
``--prom-out PATH`` (Prometheus text exposition of the metrics).  With
none of these flags, observability stays on the no-op recorder and
costs nothing.  When a recorder is active and the command dies, the
flight recorder dumps its last events to stderr before the error
propagates (``--flight-recorder N`` sizes the ring).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure2a(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2a_constellation

    report = figure_2a_constellation(time_s=args.time)
    print(f"{report.name}: {report.satellite_count} satellites, "
          f"{report.plane_count} planes, {report.altitude_km:.0f} km, "
          f"{report.inclination_deg:.1f} deg")
    print(f"ISLs: {report.isl_count} (mean {report.mean_isl_distance_km:.0f}"
          f" km, max {report.max_isl_distance_km:.0f} km), connected: "
          f"{report.connected}")
    print(f"coverage: union {report.coverage_union:.3f}, worst-case "
          f"{report.coverage_worst_case:.3f}")
    return 0


def _cmd_figure2b(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2b_latency

    counts = args.counts or [4, 10, 16, 25, 40, 55, 70]
    result = figure_2b_latency(satellite_counts=counts, trials=args.trials,
                               epochs=args.epochs, seed=args.seed,
                               jobs=args.jobs, engine=args.engine)
    series = {row["x"]: row for row in result["series"]}
    print("satellites reachability latency_mean_ms latency_p95_ms")
    for count in counts:
        row = series.get(count)
        reach = result["reachability"][count]
        if row:
            print(f"{count:>10} {reach:>12.2f} {row['mean']:>15.1f} "
                  f"{row['p95']:>14.1f}")
        else:
            print(f"{count:>10} {reach:>12.2f} {'--':>15} {'--':>14}")
    return 0


def _cmd_figure2c(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure_2c_coverage

    counts = args.counts or [1, 4, 12, 25, 50, 80]
    rows = figure_2c_coverage(satellite_counts=counts, trials=args.trials,
                              seed=args.seed, jobs=args.jobs)
    print("satellites union worst_case cluster")
    for row in rows:
        print(f"{row['satellites']:>10.0f} {row['union']:>5.2f} "
              f"{row['worst_case']:>10.2f} {row['cluster']:>7.2f}")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import run_all_ablations

    results = run_all_ablations(jobs=args.jobs)
    print("== ISL mix ==")
    for row in results["isl_mix"]:
        print(f"laser={row['laser_fraction']:.2f} "
              f"premium_admission={row['premium_admission']:.2f} "
              f"capex=${row['fleet_capex_musd']:.0f}M")
    print("== MAC ==")
    for row in results["mac"]:
        print(f"stations={row['stations']} "
              f"csma_delay={row['csma_delay_ms']:.0f}ms "
              f"tdma_delay={row['tdma_delay_ms']:.0f}ms")
    print("== Handover ==")
    result = results["handover"]
    print(f"handovers={result['handover_count']} "
          f"predictive_outage={result['predictive']['total_interruption_s']:.2f}s "
          f"reauth_outage={result['reauthenticate']['total_interruption_s']:.2f}s")
    print("== Economics ==")
    econ = results["economics"]
    print(f"fraud caught {econ['mismatches_caught']}/{econ['fraud_injected']}, "
          f"peering: {econ['peering_recommended']}")
    print("== Federation ==")
    for row in results["federation"]:
        print(f"operators={row['operators']} "
              f"federated={row['federated_reachability']:.2f} "
              f"solo={row['solo_reachability']:.2f} "
              f"capex/op=${row['per_operator_capex_musd']:.0f}M")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.orbits.tle import catalog_from_constellation
    from repro.orbits.walker import iridium_like, walker_delta, walker_star

    if args.kind == "iridium":
        constellation = iridium_like()
    elif args.kind == "star":
        constellation = walker_star(args.satellites, args.planes)
    else:
        constellation = walker_delta(args.satellites, args.planes)
    for record in catalog_from_constellation(constellation,
                                             name_prefix=args.prefix):
        for line in record:
            print(line)
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    from repro.experiments.availability import (
        availability_sweep,
        resilience_sweep,
    )

    print("== availability vs fleet size ==")
    for row in availability_sweep(epochs=args.epochs):
        print(f"{row['satellites']:>4} sats ({row['layout']}): "
              f"mean availability {row['mean']:.2f}")
    print("== resilience to failures ==")
    for row in resilience_sweep(epochs=max(2, args.epochs // 2)):
        print(f"fail {row['failed_fraction']:.0%}: "
              f"{row['surviving']} surviving, availability "
              f"{row['mean_availability']:.2f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a fast pass of every experiment and write a markdown report."""
    from repro.experiments.ablations import (
        ablation_economics,
        ablation_handover,
        ablation_isl_mix,
    )
    from repro.experiments.availability import resilience_sweep
    from repro.experiments.figure2 import (
        figure_2a_constellation,
        figure_2b_latency,
        figure_2c_coverage,
    )

    lines = ["# RESULTS — fast reproduction pass", ""]
    report = figure_2a_constellation()
    lines += [
        "## Figure 2(a)",
        "",
        f"- constellation: {report.satellite_count} satellites, "
        f"{report.plane_count} planes, {report.altitude_km:.0f} km",
        f"- ISLs: {report.isl_count}, connected: {report.connected}",
        f"- union coverage: {report.coverage_union:.3f}",
        "",
        "## Figure 2(b) — latency vs satellites",
        "",
        "| satellites | reachability | mean ms |",
        "|---|---|---|",
    ]
    fig2b = figure_2b_latency(satellite_counts=[4, 16, 40, 70],
                              trials=args.trials, epochs=6)
    series = {row["x"]: row for row in fig2b["series"]}
    for count in (4, 16, 40, 70):
        row = series.get(count)
        mean = f"{row['mean']:.1f}" if row else "--"
        lines.append(
            f"| {count} | {fig2b['reachability'][count]:.2f} | {mean} |"
        )
    lines += ["", "## Figure 2(c) — coverage vs satellites", "",
              "| satellites | union | worst-case |", "|---|---|---|"]
    for row in figure_2c_coverage(satellite_counts=[4, 25, 50, 80],
                                  trials=args.trials):
        lines.append(
            f"| {row['satellites']:.0f} | {row['union']:.2f} | "
            f"{row['worst_case']:.2f} |"
        )
    lines += ["", "## Key ablations", ""]
    mix = ablation_isl_mix(laser_fractions=(0.0, 1.0))
    lines.append(
        f"- ISL mix: premium admission {mix[0]['premium_admission']:.2f} "
        f"(RF-only) vs {mix[-1]['premium_admission']:.2f} (all-laser)"
    )
    handover = ablation_handover(duration_s=3600.0)
    lines.append(
        f"- handover: predictive outage "
        f"{handover['predictive']['total_interruption_s']:.2f} s vs reauth "
        f"{handover['reauthenticate']['total_interruption_s']:.2f} s"
    )
    econ = ablation_economics(transfer_count=120)
    lines.append(
        f"- ledger: {econ['mismatches_caught']}/{econ['fraud_injected']} "
        f"fraud caught; peering: {econ['peering_recommended']}"
    )
    resilience = resilience_sweep(failure_fractions=(0.0, 0.2, 0.5),
                                  epochs=3)
    lines.append(
        "- resilience: availability "
        + " -> ".join(
            f"{row['mean_availability']:.2f}@{row['failed_fraction']:.0%}"
            for row in resilience
        )
    )
    lines.append("")
    content = "\n".join(lines)
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output} ({len(lines)} lines)")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.core.interop import SizeClass, build_fleet
    from repro.core.network import OpenSpaceNetwork
    from repro.ground.station import default_station_network
    from repro.ground.user import UserTerminal
    from repro.orbits.coordinates import GeodeticPoint
    from repro.orbits.walker import iridium_like

    fleet = build_fleet(iridium_like(), "cli", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, default_station_network())
    user = UserTerminal("cli-user", GeodeticPoint(args.lat, args.lon),
                        "cli", min_elevation_deg=args.mask)
    latency = network.user_to_internet_latency_s(user, args.time)
    if latency is None:
        print("unreachable: no satellite overhead or no gateway path")
        return 1
    print(f"one-way latency from ({args.lat}, {args.lon}): "
          f"{latency * 1000:.1f} ms")
    return 0


def _print_recovery_rows(rows) -> None:
    header = ("mtbf_h faults absorbed rerouted dropped availability "
              "reroute_s mttr_s")
    print(header)
    for row in rows:
        mttr = row["observed_mttr_s"]
        mttr_text = f"{mttr:8.1f}" if mttr == mttr else "      --"
        print(f"{row['mtbf_h']:>6.2f} {row['faults_injected']:>6} "
              f"{row['faults_absorbed']:>8} {row['flows_rerouted']:>8} "
              f"{row['flows_dropped']:>7} {row['mean_availability']:>12.4f} "
              f"{row['mean_time_to_reroute_s']:>9.1f} {mttr_text}")


def _print_recovery_summary(summary: dict) -> None:
    mttr = summary["observed_mttr_s"]
    mttr_text = f"{mttr:.1f} s" if mttr == mttr else "--"
    print(f"faults: {summary['faults_injected']} injected, "
          f"{summary['faults_repaired']} repaired, "
          f"{summary['faults_absorbed']} absorbed without user impact")
    print(f"flows: {summary['flows_rerouted']} rerouted, "
          f"{summary['flows_dropped']} dropped, "
          f"{summary['flows_unrecovered']} never recovered")
    print(f"availability: {summary['mean_availability']:.4f} "
          f"(time-weighted, {summary['probes']} probes)")
    print(f"mean time-to-reroute: {summary['mean_time_to_reroute_s']:.1f} s, "
          f"mean restore: {summary['mean_restore_s']:.1f} s, "
          f"observed MTTR: {mttr_text}")


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.resilience_dynamic import dynamic_resilience_sweep

    mttr = None if args.mttr < 0 else args.mttr
    rows = dynamic_resilience_sweep(
        mtbf_hours=tuple(args.mtbf_hours), mttr_s=mttr,
        horizon_s=args.horizon, epochs=args.epochs, seed=args.seed,
        reroute_delay_s=args.reroute_delay, jobs=args.jobs,
        engine=args.engine,
    )
    _print_recovery_rows(rows)
    return 0


def _cmd_faults_inject(args: argparse.Namespace) -> int:
    from repro.core.interop import SizeClass, build_fleet
    from repro.experiments.resilience_dynamic import (
        _sample_users,
        run_fault_scenario,
    )
    from repro.core.network import OpenSpaceNetwork
    from repro.faults.schedule import (
        combine,
        ground_station_outage_schedule,
        satellite_mtbf_schedule,
    )
    from repro.ground.station import default_station_network
    from repro.orbits.walker import iridium_like

    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "faults", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    mttr = None if args.mttr < 0 else args.mttr
    schedule = satellite_mtbf_schedule(
        [spec.satellite_id for spec in fleet], args.horizon,
        mtbf_s=args.mtbf_hours * 3600.0, mttr_s=mttr, seed=args.seed,
    )
    if args.station_mtbf_hours is not None:
        schedule = combine(schedule, ground_station_outage_schedule(
            [station.station_id for station in stations], args.horizon,
            mtbf_s=args.station_mtbf_hours * 3600.0, mttr_s=mttr,
            seed=args.seed + 1,
        ))
    if args.schedule_out:
        schedule.save(args.schedule_out)
        print(f"wrote {args.schedule_out} ({len(schedule)} fault events)")
    for event in sorted(schedule, key=lambda e: (e.start_s, e.fault_id)):
        print(f"t={event.start_s:9.1f}  {event.kind.value:<14} "
              f"{','.join(event.targets)}  "
              f"{'permanent' if event.end_s is None else f'until {event.end_s:.1f} s'}")
    result = run_fault_scenario(network, schedule, _sample_users(),
                                horizon_s=args.horizon, epochs=args.epochs,
                                reroute_delay_s=args.reroute_delay)
    _print_recovery_summary(result)
    return 0


def _cmd_faults_replay(args: argparse.Namespace) -> int:
    from repro.core.interop import SizeClass, build_fleet
    from repro.experiments.resilience_dynamic import (
        _sample_users,
        run_fault_scenario,
    )
    from repro.core.network import OpenSpaceNetwork
    from repro.faults.model import FaultSchedule
    from repro.ground.station import default_station_network
    from repro.orbits.walker import iridium_like

    try:
        schedule = FaultSchedule.load(args.schedule)
    except FileNotFoundError:
        print(f"no such schedule file: {args.schedule}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"malformed schedule file: {exc}", file=sys.stderr)
        return 1
    horizon = args.horizon if args.horizon is not None else schedule.horizon_s
    if horizon <= 0.0:
        print("schedule has no horizon; pass --horizon", file=sys.stderr)
        return 1
    network = OpenSpaceNetwork(build_fleet(iridium_like(), "faults",
                                           SizeClass.MEDIUM),
                               default_station_network())
    result = run_fault_scenario(network, schedule, _sample_users(),
                                horizon_s=horizon, epochs=args.epochs,
                                reroute_delay_s=args.reroute_delay)
    print(f"replayed {len(schedule)} fault events over {horizon:.0f} s")
    _print_recovery_summary(result)
    return 0


def _cmd_reliability_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.reliability import reliability_sweep

    mttr = None if args.mttr < 0 else args.mttr
    rows = reliability_sweep(
        loss_rates=tuple(args.loss), flap_mtbf_hours=tuple(args.mtbf_hours),
        horizon_s=args.horizon, probes=args.probes, seed=args.seed,
        mttr_s=mttr, flap_fraction=args.flap_fraction,
        max_attempts=args.max_attempts, timeout_s=args.timeout,
        jobs=args.jobs,
    )
    print("loss mtbf_h auth_ok baseline_ok attempts inflation "
          "degraded breaker_opens exch_fail")
    for row in rows:
        inflation = row["latency_inflation"]
        inflation_text = (f"{inflation:9.3f}" if inflation == inflation
                          else "       --")
        print(f"{row['loss']:>4.2f} {row['flap_mtbf_h']:>6.2f} "
              f"{row['auth_success_rate']:>7.3f} "
              f"{row['baseline_success_rate']:>11.3f} "
              f"{row['mean_attempts']:>8.2f} {inflation_text} "
              f"{row['degraded_associations']:>8} "
              f"{row['breaker_opens']:>13} "
              f"{row['exchange_failures']:>9}")
    return 0


def _cmd_demand_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.demand import demand_sweep

    try:
        rows = demand_sweep(
            satellite_counts=tuple(args.satellites),
            hours_utc=tuple(args.hours),
            total_users=args.users, bands=args.bands,
            equator_columns=args.equator_columns,
            distribution=args.distribution, spread_deg=args.spread,
            seed=args.seed, duration_s=args.duration, jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"bad demand sweep options: {exc}", file=sys.stderr)
        return 1
    print("sats hour users cells routed offered_gbps served "
          "mean_util peak_util p95_infl revenue_usd iters conv")
    for row in rows:
        print(f"{row['satellites']:>4} {row['hour_utc']:>4.1f} "
              f"{row['users']:>8} {row['cells']:>5} "
              f"{row['routed_cells']:>6} {row['offered_gbps']:>12.3f} "
              f"{row['served_fraction']:>6.4f} "
              f"{row['mean_utilization']:>9.4f} "
              f"{row['peak_utilization']:>9.4f} "
              f"{row['p95_delay_inflation']:>8.3f} "
              f"{row['revenue_usd']:>11.2f} {row['iterations']:>5} "
              f"{str(row['converged']):>5}")
    return 0


def _cmd_scale_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.scale import scale_sweep

    spatial = {"auto": None, "on": True, "off": False}[args.spatial]
    try:
        rows = scale_sweep(
            satellite_counts=tuple(args.satellites),
            epochs=args.epochs, max_range_km=args.range_km,
            spatial=spatial, delta=not args.no_delta,
            compare_digests=not args.no_digest_check, jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"bad scale sweep options: {exc}", file=sys.stderr)
        return 1
    print("sats planes epochs edges degree churn_mean churn_max "
          "full delta appeared gone reuse latency_ms reach digests")
    failed = False
    for row in rows:
        latency = row["probe_latency_ms"]
        latency_text = f"{latency:10.3f}" if latency == latency else (
            "        --")
        if row["digests_match"] is None:
            digest_text = "   --"
        elif row["digests_match"]:
            digest_text = "   ok"
        else:
            digest_text = " FAIL"
            failed = True
        print(f"{row['satellites']:>4} {row['planes']:>6} "
              f"{row['epochs']:>6} {row['mean_isl_edges']:>8.1f} "
              f"{row['mean_degree']:>6.2f} {row['churn_mean']:>10.4f} "
              f"{row['churn_max']:>9.4f} {row['full_builds']:>4} "
              f"{row['delta_builds']:>5} {row['edges_appeared']:>8} "
              f"{row['edges_disappeared']:>4} {row['structure_reuses']:>5} "
              f"{latency_text} {row['probe_reachable_epochs']:>5} "
              f"{digest_text}")
    if failed:
        print("delta-built snapshot digest diverged from full rebuild",
              file=sys.stderr)
        return 1
    return 0


def _cmd_dtn_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.disrupted import disrupted_sweep

    try:
        rows = disrupted_sweep(
            radii_km=tuple(args.radius),
            durations_s=tuple(args.duration),
            buffer_kb=tuple(args.buffer_kb),
            horizon_s=args.horizon, step_s=args.step, loss=args.loss,
            sensors=args.sensors, satellites=args.satellites,
            bundle_interval_s=args.interval,
            bundle_bytes=args.bundle_bytes, ttl_s=args.ttl,
            seed=args.seed, jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"bad dtn sweep options: {exc}", file=sys.stderr)
        return 1
    print("radius_km blackout_s buf_kb down created delivered ratio "
          "mean_delay_s max_delay_s retx drops expired replans backlog")
    for row in rows:
        ratio = row["delivery_ratio"]
        ratio_text = f"{ratio:5.3f}" if ratio == ratio else "   --"
        mean_delay = row["mean_delay_s"]
        mean_text = (f"{mean_delay:12.1f}" if mean_delay == mean_delay
                     else "          --")
        max_delay = row["max_delay_s"]
        max_text = (f"{max_delay:11.1f}" if max_delay == max_delay
                    else "         --")
        print(f"{row['radius_km']:>9.0f} {row['blackout_s']:>9.0f} "
              f"{row['buffer_kb']:>6.1f} {row['stations_down']:>4} "
              f"{row['created']:>7} {row['delivered']:>9} {ratio_text} "
              f"{mean_text} {max_text} {row['custody_retx']:>4} "
              f"{row['buffer_drops']:>5} {row['ttl_expired']:>7} "
              f"{row['replans']:>7} {row['backlog']:>7}")
    return 0


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs.export import summarize_file

    try:
        print(summarize_file(args.file, top=args.top))
    except FileNotFoundError:
        print(f"no such trace file: {args.file}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"malformed trace file: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import report_file

    try:
        size = report_file(args.file, args.out, title=args.title,
                           top=args.top)
    except FileNotFoundError:
        print(f"no such trace file: {args.file}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"malformed trace file: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.out} ({size} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenSpace reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags, shared by every experiment subcommand (a parent
    # parser so `repro figure2b --trace out.jsonl` parses naturally).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write full JSONL telemetry (manifest, metrics, spans)")
    obs_flags.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write metric instruments as CSV")
    obs_flags.add_argument(
        "--obs-time-events", action="store_true",
        help="also time every simulation-engine event (adds overhead)")
    obs_flags.add_argument(
        "--events-out", metavar="PATH", default=None,
        help="write the structured event timeline + health plane as "
             "JSONL (byte-identical across same-seed runs)")
    obs_flags.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="write metric instruments as Prometheus text exposition")
    obs_flags.add_argument(
        "--flight-recorder", type=int, default=None, metavar="N",
        help="ring-buffer depth of the event flight recorder dumped to "
             "stderr on a crash (default 256)")

    # Parallel-sweep flag, shared by every sweep-shaped subcommand.
    # Results are byte-identical at any job count (see repro.parallel).
    jobs_flags = argparse.ArgumentParser(add_help=False)
    jobs_flags.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep grid (1 = serial; results "
             "are identical for every value)")
    # Shortest-path backend selector, shared likewise.  Output is
    # byte-identical across backends; networkx is the digest reference.
    jobs_flags.add_argument(
        "--routing-backend", choices=("csr", "networkx"), default=None,
        metavar="NAME",
        help="shortest-path backend: csr (scipy, default when available) "
             "or networkx (reference; results are identical)")

    p2a = sub.add_parser("figure2a", parents=[obs_flags],
                         help="reference constellation report")
    p2a.add_argument("--time", type=float, default=0.0)
    p2a.set_defaults(func=_cmd_figure2a)

    p2b = sub.add_parser("figure2b", parents=[obs_flags, jobs_flags],
                         help="latency vs satellite count")
    p2b.add_argument("--counts", type=int, nargs="*", default=None)
    p2b.add_argument("--trials", type=int, default=4)
    p2b.add_argument("--epochs", type=int, default=8)
    p2b.add_argument("--seed", type=int, default=42)
    p2b.add_argument("--engine", choices=("scalar", "batched"),
                     default="scalar",
                     help="sweep-point engine: scalar event walk (oracle) "
                          "or the batched tensor pipeline (identical "
                          "results; needs the csr backend)")
    p2b.set_defaults(func=_cmd_figure2b)

    p2c = sub.add_parser("figure2c", parents=[obs_flags, jobs_flags],
                         help="coverage vs satellite count")
    p2c.add_argument("--counts", type=int, nargs="*", default=None)
    p2c.add_argument("--trials", type=int, default=6)
    p2c.add_argument("--seed", type=int, default=42)
    p2c.set_defaults(func=_cmd_figure2c)

    pab = sub.add_parser("ablations", parents=[obs_flags, jobs_flags],
                         help="run every design ablation")
    pab.set_defaults(func=_cmd_ablations)

    pcat = sub.add_parser("catalog", parents=[obs_flags],
                          help="emit a synthetic TLE catalog")
    pcat.add_argument("--kind", choices=("iridium", "star", "delta"),
                      default="iridium")
    pcat.add_argument("--satellites", type=int, default=66)
    pcat.add_argument("--planes", type=int, default=6)
    pcat.add_argument("--prefix", default="OPENSPACE")
    pcat.set_defaults(func=_cmd_catalog)

    prep = sub.add_parser("report", parents=[obs_flags],
                          help="fast pass of every experiment -> RESULTS.md")
    prep.add_argument("--output", default="RESULTS.md")
    prep.add_argument("--trials", type=int, default=3)
    prep.set_defaults(func=_cmd_report)

    pav = sub.add_parser("availability", parents=[obs_flags],
                         help="availability and failure-resilience sweeps")
    pav.add_argument("--epochs", type=int, default=8)
    pav.set_defaults(func=_cmd_availability)

    plat = sub.add_parser("latency", parents=[obs_flags],
                          help="user-to-Internet latency query")
    plat.add_argument("--lat", type=float, required=True)
    plat.add_argument("--lon", type=float, required=True)
    plat.add_argument("--time", type=float, default=0.0)
    plat.add_argument("--mask", type=float, default=10.0,
                      help="user elevation mask, degrees")
    plat.set_defaults(func=_cmd_latency)

    pfl = sub.add_parser("faults",
                         help="dynamic fault injection and recovery")
    faults_sub = pfl.add_subparsers(dest="faults_command", required=True)

    def _faults_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--epochs", type=int, default=6,
                            help="periodic availability probes")
        parser.add_argument("--reroute-delay", type=float, default=15.0,
                            help="control-plane reconvergence charge, s")

    pfs = faults_sub.add_parser(
        "sweep", parents=[obs_flags, jobs_flags],
        help="recovery metrics vs failure intensity (MTBF sweep)")
    pfs.add_argument("--mtbf-hours", type=float, nargs="+",
                     default=[1.0, 3.0, 12.0],
                     help="per-satellite MTBF points, hours")
    pfs.add_argument("--mttr", type=float, default=900.0,
                     help="mean time to repair, s (negative = permanent)")
    pfs.add_argument("--horizon", type=float, default=7200.0)
    pfs.add_argument("--seed", type=int, default=43)
    pfs.add_argument("--engine", choices=("scalar", "batched"),
                     default="scalar",
                     help="probe engine: per-user scalar probes (oracle) "
                          "or one batched array pass per probe instant "
                          "(identical results)")
    _faults_common(pfs)
    pfs.set_defaults(func=_cmd_faults_sweep)

    pfi = faults_sub.add_parser(
        "inject", parents=[obs_flags],
        help="generate one fault schedule, run it, report recovery")
    pfi.add_argument("--mtbf-hours", type=float, default=2.0,
                     help="per-satellite MTBF, hours")
    pfi.add_argument("--station-mtbf-hours", type=float, default=None,
                     help="also inject gateway outages at this MTBF")
    pfi.add_argument("--mttr", type=float, default=600.0,
                     help="mean time to repair, s (negative = permanent)")
    pfi.add_argument("--horizon", type=float, default=3600.0)
    pfi.add_argument("--seed", type=int, default=43)
    pfi.add_argument("--schedule-out", metavar="PATH", default=None,
                     help="write the generated schedule as JSON")
    _faults_common(pfi)
    pfi.set_defaults(func=_cmd_faults_inject)

    pfr = faults_sub.add_parser(
        "replay", parents=[obs_flags],
        help="replay a JSON fault schedule and report recovery")
    pfr.add_argument("schedule", help="JSON file from `faults inject "
                     "--schedule-out` (or hand-written)")
    pfr.add_argument("--horizon", type=float, default=None,
                     help="override the schedule's horizon, s")
    _faults_common(pfr)
    pfr.set_defaults(func=_cmd_faults_replay)

    prel = sub.add_parser("reliability",
                          help="control-plane reliability under lossy "
                               "signaling")
    rel_sub = prel.add_subparsers(dest="reliability_command", required=True)
    prs = rel_sub.add_parser(
        "sweep", parents=[obs_flags, jobs_flags],
        help="auth success & latency inflation vs loss rate x flap MTBF")
    prs.add_argument("--loss", type=float, nargs="+",
                     default=[0.0, 0.05, 0.2],
                     help="per-hop control-frame loss rates")
    prs.add_argument("--mtbf-hours", type=float, nargs="+",
                     default=[0.0, 0.5],
                     help="ISL flap MTBF points, hours (0 = no faults)")
    prs.add_argument("--mttr", type=float, default=240.0,
                     help="flap repair time, s (negative = permanent)")
    prs.add_argument("--horizon", type=float, default=1800.0)
    prs.add_argument("--probes", type=int, default=4,
                     help="association probes per grid point")
    prs.add_argument("--flap-fraction", type=float, default=0.25,
                     help="fraction of the ISL set that flaps")
    prs.add_argument("--max-attempts", type=int, default=4,
                     help="auth retransmission bound")
    prs.add_argument("--timeout", type=float, default=0.5,
                     help="per-attempt auth timeout, s")
    prs.add_argument("--seed", type=int, default=11)
    prs.set_defaults(func=_cmd_reliability_sweep)

    pdem = sub.add_parser("demand",
                          help="million-user fluid traffic plane")
    dem_sub = pdem.add_subparsers(dest="demand_command", required=True)
    pds = dem_sub.add_parser(
        "sweep", parents=[obs_flags, jobs_flags],
        help="diurnal congestion & revenue vs constellation size")
    pds.add_argument("--satellites", type=int, nargs="+",
                     default=[24, 66],
                     help="Walker-Delta fleet sizes to sweep")
    pds.add_argument("--hours", type=float, nargs="+",
                     default=[4.0, 12.0, 20.0],
                     help="UTC hours sampled (diurnal curve runs on "
                          "local solar time)")
    pds.add_argument("--users", type=int, default=1_000_000,
                     help="modeled subscriber count")
    pds.add_argument("--bands", type=int, default=18,
                     help="equal-area latitude bands of the grid")
    pds.add_argument("--equator-columns", type=int, default=36,
                     help="longitude columns at the equator")
    pds.add_argument("--distribution",
                     choices=("uniform_land", "underserved"),
                     default="uniform_land",
                     help="subscriber placement model")
    pds.add_argument("--spread", type=float, default=6.0,
                     help="underserved cluster spread, degrees")
    pds.add_argument("--duration", type=float, default=3600.0,
                     help="settlement interval per point, s")
    pds.add_argument("--seed", type=int, default=7)
    pds.set_defaults(func=_cmd_demand_sweep)

    pscl = sub.add_parser("scale",
                          help="mega-constellation topology churn and "
                               "delta-snapshot proof")
    scl_sub = pscl.add_subparsers(dest="scale_command", required=True)
    pss = scl_sub.add_parser(
        "sweep", parents=[obs_flags, jobs_flags],
        help="topology churn & delta-vs-full digests vs fleet size "
             "over one orbital period")
    pss.add_argument("--satellites", type=int, nargs="+",
                     default=[48, 180],
                     help="Walker-Delta fleet sizes to sweep")
    pss.add_argument("--epochs", type=int, default=6,
                     help="snapshot epochs over one orbital period")
    pss.add_argument("--range-km", type=float, default=3000.0,
                     help="hard ISL range limit, km")
    pss.add_argument("--spatial", choices=("auto", "on", "off"),
                     default="auto",
                     help="grid-pruned candidate discovery (auto "
                          "switches on fleet size; results identical)")
    pss.add_argument("--no-delta", action="store_true",
                     help="rebuild every epoch from scratch instead of "
                          "the incremental delta path")
    pss.add_argument("--no-digest-check", action="store_true",
                     help="skip the delta-vs-full digest comparison "
                          "(halves the work)")
    pss.set_defaults(func=_cmd_scale_sweep)

    pdtn = sub.add_parser("dtn",
                          help="disruption-tolerant store-and-forward "
                               "bundle plane")
    dtn_sub = pdtn.add_subparsers(dest="dtn_command", required=True)
    pdt = dtn_sub.add_parser(
        "sweep", parents=[obs_flags, jobs_flags],
        help="blackout evacuation: delivery ratio & delay vs radius x "
             "duration x buffer budget")
    pdt.add_argument("--radius", type=float, nargs="+",
                     default=[0.0, 1500.0, 3500.0],
                     help="blackout radii around the region center, km "
                          "(0 = no-blackout control)")
    pdt.add_argument("--duration", type=float, nargs="+",
                     default=[3600.0],
                     help="blackout durations, s")
    pdt.add_argument("--buffer-kb", type=float, nargs="+",
                     default=[8.0, 64.0],
                     help="per-node custody budgets, KiB")
    pdt.add_argument("--horizon", type=float, default=7200.0)
    pdt.add_argument("--step", type=float, default=600.0,
                     help="scheduler epoch length, s")
    pdt.add_argument("--loss", type=float, default=0.05,
                     help="per-hop custody-frame loss rate")
    pdt.add_argument("--sensors", type=int, default=6,
                     help="IoT sensors in the blackout region")
    pdt.add_argument("--satellites", type=int, default=24,
                     help="Walker-Delta fleet size (6 planes)")
    pdt.add_argument("--interval", type=float, default=900.0,
                     help="telemetry period per sensor, s")
    pdt.add_argument("--bundle-bytes", type=int, default=4096,
                     help="bundle payload size, bytes")
    pdt.add_argument("--ttl", type=float, default=7200.0,
                     help="bundle lifetime, s")
    pdt.add_argument("--seed", type=int, default=17)
    pdt.set_defaults(func=_cmd_dtn_sweep)

    pobs = sub.add_parser("obs", help="inspect captured telemetry")
    obs_sub = pobs.add_subparsers(dest="obs_command", required=True)
    psum = obs_sub.add_parser("summarize",
                              help="print top spans/counters/events of a "
                                   "trace")
    psum.add_argument("file", help="JSONL file written by --trace or "
                                   "--events-out")
    psum.add_argument("--top", type=int, default=10,
                      help="rows per section")
    psum.set_defaults(func=_cmd_obs_summarize)
    prpt = obs_sub.add_parser("report",
                              help="render an HTML timeline/health report")
    prpt.add_argument("file", help="JSONL file written by --events-out "
                                   "(or --trace)")
    prpt.add_argument("--out", metavar="PATH", default="obs_report.html",
                      help="output HTML path")
    prpt.add_argument("--title", default=None, help="report title")
    prpt.add_argument("--top", type=int, default=15,
                      help="rows in the link-availability table")
    prpt.set_defaults(func=_cmd_obs_report)
    return parser


def _manifest_for(args: argparse.Namespace) -> dict:
    from repro.obs.export import run_manifest

    config = {
        key: value for key, value in vars(args).items()
        if key not in ("func", "command") and not key.startswith("_")
    }
    return run_manifest(config, seed=getattr(args, "seed", None),
                        command=args.command)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    backend = getattr(args, "routing_backend", None)
    if backend is not None:
        from repro.routing.csr import set_default_backend
        set_default_backend(backend)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    events_path = getattr(args, "events_out", None)
    prom_path = getattr(args, "prom_out", None)
    flight_size = getattr(args, "flight_recorder", None)
    # --flight-recorder alone still installs a recorder: the crash dump
    # is useful even when no export file was requested.
    if not (trace_path or metrics_path or events_path or prom_path
            or flight_size is not None):
        return args.func(args)

    from repro import obs
    from repro.obs.export import (
        write_events_jsonl,
        write_metrics_csv,
        write_prometheus_text,
        write_trace_jsonl,
    )

    config_kwargs = {"time_events": getattr(args, "obs_time_events", False)}
    if flight_size is not None:
        config_kwargs["flight_recorder_size"] = flight_size
    try:
        recorder = obs.Recorder(obs.ObsConfig(**config_kwargs))
    except ValueError as error:
        print(f"bad observability options: {error}", file=sys.stderr)
        return 2
    try:
        with obs.use(recorder):
            exit_code = args.func(args)
    except BaseException:
        # Crash path: dump the flight recorder so the timeline leading
        # up to the failure survives even though no export file will.
        tail = recorder.events.tail()
        print(f"-- flight recorder: last {len(tail)} of "
              f"{len(recorder.events)} events --", file=sys.stderr)
        print(obs.format_events(tail), file=sys.stderr)
        raise
    try:
        if trace_path:
            count = write_trace_jsonl(recorder, trace_path,
                                      _manifest_for(args))
            print(f"wrote {trace_path} ({count} telemetry records)")
        if metrics_path:
            count = write_metrics_csv(recorder, metrics_path)
            print(f"wrote {metrics_path} ({count} metric rows)")
        if events_path:
            count = write_events_jsonl(recorder, events_path,
                                       _manifest_for(args))
            print(f"wrote {events_path} ({count} event records)")
        if prom_path:
            count = write_prometheus_text(recorder, prom_path)
            print(f"wrote {prom_path} ({count} exposition lines)")
    except OSError as error:
        print(f"cannot write telemetry: {error}", file=sys.stderr)
        return 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
