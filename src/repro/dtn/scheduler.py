"""The contact-plan scheduler: bundles across epochs, around faults.

One :class:`DtnScheduler` drives a whole store-and-forward scenario on
the discrete-event engine.  At every epoch it ingests newly created
bundles into their origin buffers, purges expired custody, and walks
each buffered bundle along its earliest-arrival plan from
:class:`~repro.routing.timeexpanded.TimeExpandedRouter` — executing the
hops that fall inside the current epoch via acknowledged
:class:`~repro.dtn.custody.CustodyTransfer` and leaving the rest for
future epochs (the bundle waits in the intermediate node's buffer).

Fault awareness follows the reliability layer's convention: the custody
channel's ``fault_epoch`` is bumped by
:class:`~repro.faults.inject.FaultInjector` on every fault-state change,
and the scheduler rebuilds its contact plan from fresh snapshots
whenever the epoch it planned under is stale.  A regional blackout
therefore removes the gateways from the plan (bundles wait under
custody instead of chasing severed hops), and the repair transition
triggers the replan that drains the backlog.

Wiring order matters for determinism: call
``injector.schedule_on(engine, ...)`` *before*
:meth:`DtnScheduler.schedule_on` so fault transitions that share a
timestamp with a scheduler step fire first (the engine breaks ties by
schedule order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro.dtn.bundle import Bundle, BundleBuffer
from repro.dtn.custody import CustodyTransfer
from repro.obs.events import BUNDLE_CREATE, BUNDLE_DELIVER, BUNDLE_FORWARD
from repro.routing.timeexpanded import StoreAndForwardRoute, TimeExpandedRouter


@dataclass(frozen=True)
class DtnResult:
    """Aggregate outcome of one scheduler run.

    Attributes:
        created: Bundles ingested from submissions.
        delivered: Bundles that reached a destination.
        dropped: Buffer-policy drops (evictions + refusals).
        expired: TTL expiries.
        buffered: Bundles still in custody (or pending) at the end.
        replans: Contact-plan rebuilds beyond the initial build.
        custody_transfers: Successful hop transfers.
        custody_failures: Exhausted/refused hop transfers.
        custody_retransmissions: Extra sends beyond first attempts.
        delays_s: Per-delivery delay (arrival minus creation), in
            delivery order.
    """

    created: int
    delivered: int
    dropped: int
    expired: int
    buffered: int
    replans: int
    custody_transfers: int
    custody_failures: int
    custody_retransmissions: int
    delays_s: Tuple[float, ...]

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of created bundles (NaN when none)."""
        if self.created == 0:
            return float("nan")
        return self.delivered / self.created

    @property
    def mean_delay_s(self) -> float:
        if not self.delays_s:
            return float("nan")
        return sum(self.delays_s) / len(self.delays_s)

    @property
    def max_delay_s(self) -> float:
        if not self.delays_s:
            return float("nan")
        return max(self.delays_s)


class DtnScheduler:
    """Epoch-stepped store-and-forward over a live network.

    Args:
        network: The :class:`~repro.core.network.OpenSpaceNetwork` under
            test; its *current* fault masks shape every (re)plan.
        sensors: User terminals originating bundles; included in every
            snapshot so their access links exist in the contact plan.
        custody: The custody-transfer protocol (owns the lossy channel
            whose ``fault_epoch`` doubles as the replan signal).
        epoch_times: Strictly increasing scheduler step instants; also
            the contact-plan epochs.
        buffer_bytes: Per-node custody budget (``inf`` = unbounded).
        destinations: Delivery sinks for any-gateway bundles; defaults
            to every ground station id.
        backend: Routing backend override for the time-expanded router.
    """

    def __init__(self, network, sensors, custody: CustodyTransfer,
                 epoch_times: Sequence[float],
                 buffer_bytes: float = float("inf"),
                 destinations: Optional[Sequence[str]] = None,
                 backend: Optional[str] = None):
        epoch_times = [float(t) for t in epoch_times]
        if not epoch_times:
            raise ValueError("need at least one epoch time")
        if any(b <= a for a, b in zip(epoch_times[:-1], epoch_times[1:])):
            raise ValueError("epoch times must be strictly increasing")
        if buffer_bytes <= 0.0:
            raise ValueError(
                f"buffer_bytes must be positive, got {buffer_bytes}"
            )
        self.network = network
        self.sensors = list(sensors)
        self.custody = custody
        self.epoch_times = epoch_times
        step = (epoch_times[-1] - epoch_times[-2]
                if len(epoch_times) > 1 else 60.0)
        self.horizon_s = epoch_times[-1] + step
        self.buffer_bytes = buffer_bytes
        if destinations is None:
            destinations = [
                station.station_id for station in network.ground_stations
            ]
        self.destinations: Tuple[str, ...] = tuple(sorted(destinations))
        if not self.destinations:
            raise ValueError("need at least one destination")
        self._destination_set = frozenset(self.destinations)
        self.backend = backend
        self.buffers: Dict[str, BundleBuffer] = {}
        self._pending: List[Bundle] = []
        self._router: Optional[TimeExpandedRouter] = None
        self._plan_fault_epoch: Optional[int] = None
        self._plan_count = 0
        self._first_sample = True
        self.created_count = 0
        self.delivered_count = 0
        self.no_route_count = 0
        self._delays: List[float] = []

    # -- submissions ------------------------------------------------------

    def submit(self, bundle: Bundle) -> None:
        """Queue one bundle; it enters its origin buffer at the first
        epoch at or after its creation time."""
        self._pending.append(bundle)

    def buffer_for(self, node_id: str) -> BundleBuffer:
        """The node's custody buffer (created on first use)."""
        buffer = self.buffers.get(node_id)
        if buffer is None:
            buffer = BundleBuffer(node_id, self.buffer_bytes)
            self.buffers[node_id] = buffer
        return buffer

    # -- engine integration ----------------------------------------------

    def schedule_on(self, engine) -> None:
        """Schedule one scheduler step per epoch on the engine.

        Call after the fault injector's ``schedule_on`` so equal-time
        fault transitions apply before the step that observes them.
        """
        for index, time_s in enumerate(self.epoch_times):
            engine.schedule(time_s, lambda k=index: self.step(k),
                            label="dtn.step")

    def run(self, engine) -> DtnResult:
        """Schedule every step, run the engine out, return the result."""
        self.schedule_on(engine)
        engine.run_until(self.horizon_s)
        return self.result()

    # -- per-epoch work ---------------------------------------------------

    def step(self, k: int) -> None:
        """One epoch: ingest, expire, (re)plan, forward, sample."""
        now = self.epoch_times[k]
        end = (self.epoch_times[k + 1] if k + 1 < len(self.epoch_times)
               else self.horizon_s)
        recorder = _obs.active()
        snap = self.network.snapshot(now, users=self.sensors)

        due = sorted(
            (b for b in self._pending if b.created_s <= now),
            key=lambda b: (b.created_s, b.bundle_id),
        )
        self._pending = [b for b in self._pending if b.created_s > now]
        for bundle in due:
            self.created_count += 1
            if recorder.enabled:
                recorder.count("dtn.bundles.created")
                recorder.event(
                    BUNDLE_CREATE, now, subject=bundle.bundle_id,
                    node=bundle.source, priority=bundle.priority,
                    size=bundle.size_bytes,
                )
            self.buffer_for(bundle.source).offer(bundle, now_s=now)

        for node_id in sorted(self.buffers):
            self.buffers[node_id].purge_expired(now)

        self._ensure_plan(k, recorder)

        moved: Set[str] = set()
        for node_id in sorted(self.buffers):
            buffer = self.buffers[node_id]
            for bundle in buffer.bundles():
                if bundle.bundle_id in moved or bundle.bundle_id not in buffer:
                    continue
                self._forward(bundle, node_id, snap, now, end, moved)

        if recorder.enabled:
            recorder.gauge("dtn.buffer.bundles", float(
                sum(len(b) for b in self.buffers.values())
            ))
            recorder.gauge("dtn.buffer.bytes", float(
                sum(b.used_bytes for b in self.buffers.values())
            ))
            faults_active = (len(self.network.failed_satellites)
                            + len(self.network.failed_stations)
                            + len(self.network.failed_links))
            recorder.sample_health(now, snap.graph,
                                   faults_active=faults_active,
                                   reset=self._first_sample)
            self._first_sample = False

    def _ensure_plan(self, k: int, recorder) -> None:
        """Rebuild the contact plan when the fault state moved."""
        fault_epoch = self.custody.channel.fault_epoch
        if self._router is not None and fault_epoch == self._plan_fault_epoch:
            return
        snapshots = [
            self.network.snapshot(time_s, users=self.sensors)
            for time_s in self.epoch_times[k:]
        ]
        self._router = TimeExpandedRouter(
            snapshots, horizon_s=self.horizon_s, backend=self.backend,
        )
        self._plan_fault_epoch = fault_epoch
        self._plan_count += 1
        if recorder.enabled and self._plan_count > 1:
            recorder.count("dtn.scheduler.replans")

    def _candidates(self, bundle: Bundle) -> Tuple[str, ...]:
        if bundle.destination:
            return (bundle.destination,)
        return self.destinations

    def _best_route(self, bundle: Bundle, node_id: str,
                    now: float) -> Optional[StoreAndForwardRoute]:
        best: Optional[StoreAndForwardRoute] = None
        for destination in self._candidates(bundle):
            route = self._router.earliest_arrival(node_id, destination, now)
            if route is None:
                continue
            if best is None or ((route.arrival_s, route.target)
                                < (best.arrival_s, best.target)):
                best = route
        return best

    def _is_destination(self, bundle: Bundle, node_id: str) -> bool:
        if bundle.destination:
            return node_id == bundle.destination
        return node_id in self._destination_set

    def _deliver(self, bundle: Bundle, node_id: str, arrival_s: float,
                 recorder) -> None:
        self.delivered_count += 1
        delay = arrival_s - bundle.created_s
        self._delays.append(delay)
        if recorder.enabled:
            recorder.count("dtn.bundles.delivered")
            recorder.observe("dtn.delivery_delay_s", delay)
            recorder.event(
                BUNDLE_DELIVER, arrival_s, subject=bundle.bundle_id,
                node=node_id, priority=bundle.priority, delay_s=delay,
            )

    def _forward(self, bundle: Bundle, node_id: str, snap, now: float,
                 end: float, moved: Set[str]) -> None:
        """Walk one bundle along its plan for this epoch's hops."""
        recorder = _obs.active()
        if self._is_destination(bundle, node_id):
            # Origin is a sink (or the plan ended here): instant delivery.
            self.buffers[node_id].remove(bundle.bundle_id)
            moved.add(bundle.bundle_id)
            self._deliver(bundle, node_id, now, recorder)
            return
        route = self._best_route(bundle, node_id, now)
        if route is None:
            # No path inside the plan horizon: hold custody and wait for
            # a replan (e.g. the blackout repair) to open one.
            self.no_route_count += 1
            if recorder.enabled:
                recorder.count("dtn.scheduler.no_route")
            return
        offset = 0.0
        current = node_id
        for hop_time, sender, receiver in route.hops:
            if hop_time >= end or sender != current:
                break
            outcome = self.custody.transfer(
                snap.graph, bundle, sender, receiver, now_s=now + offset,
            )
            if not outcome.ok:
                # Sender keeps custody; the bundle retries next epoch.
                break
            offset += outcome.elapsed_s
            arrival = now + offset
            self.buffers[sender].remove(bundle.bundle_id)
            moved.add(bundle.bundle_id)
            if self._is_destination(bundle, receiver):
                self._deliver(bundle, receiver, arrival, recorder)
                return
            accepted, _ = self.buffer_for(receiver).offer(
                bundle, now_s=arrival,
            )
            if not accepted:
                # The receiver's buffer refused it; the drop (or expiry)
                # was recorded by the buffer itself.
                return
            if recorder.enabled:
                recorder.count("dtn.bundles.forwarded")
                recorder.event(
                    BUNDLE_FORWARD, arrival, subject=bundle.bundle_id,
                    sender=sender, receiver=receiver,
                )
            current = receiver

    # -- results ----------------------------------------------------------

    def result(self) -> DtnResult:
        """The run's aggregate outcome so far."""
        dropped = sum(b.drop_count for b in self.buffers.values())
        expired = sum(b.expire_count for b in self.buffers.values())
        buffered = (sum(len(b) for b in self.buffers.values())
                    + len(self._pending))
        return DtnResult(
            created=self.created_count,
            delivered=self.delivered_count,
            dropped=dropped,
            expired=expired,
            buffered=buffered,
            replans=max(0, self._plan_count - 1),
            custody_transfers=self.custody.transfer_count,
            custody_failures=self.custody.failure_count,
            custody_retransmissions=self.custody.retransmission_count,
            delays_s=tuple(self._delays),
        )
