"""Bundle model and bounded per-node custody buffers.

A *bundle* is the DTN unit of transfer: an application payload plus the
metadata the store-and-forward plane needs to hold it responsibly —
size (buffers are budgeted in bytes, not counts), QoS priority (what to
sacrifice first under overload), TTL (when holding it stops being
useful), and the creation epoch the delivery delay is measured from.

A :class:`BundleBuffer` is one node's custody store.  Its capacity is
finite and enforced at admission: when an incoming bundle does not fit,
the buffer evicts strictly-less-valuable residents (lowest priority
first, youngest first among equals) to make room — and when even that
cannot free enough space, the *incoming* bundle is the victim and the
store is left untouched.  Overload therefore degrades by shedding the
cheapest traffic, never by growing without bound and never by raising.
Every drop and TTL expiry is emitted as a ``bundle.drop`` /
``bundle.expire`` flight-recorder event and counted under ``dtn.*``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.obs.events import BUNDLE_DROP, BUNDLE_EXPIRE

#: QoS priorities, higher = more valuable.  Matches the paper's IoT
#: evacuation framing: bulk sensor history < live telemetry < alerts.
PRIORITY_BULK = 0
PRIORITY_NORMAL = 1
PRIORITY_CRITICAL = 2


@dataclass(frozen=True)
class Bundle:
    """One store-and-forward data unit.

    Attributes:
        bundle_id: Unique id (drives deterministic tie-breaking).
        source: Originating entity (a sensor/user node id).
        destination: Required destination node id, or ``""`` for
            "any gateway the scheduler serves".
        size_bytes: Payload size; buffers budget in bytes.
        priority: QoS class (see the module constants); higher survives
            overload longer.
        ttl_s: Useful lifetime from creation; ``inf`` never expires.
        created_s: Creation time, simulated seconds.
    """

    bundle_id: str
    source: str
    destination: str
    size_bytes: int
    priority: int = PRIORITY_NORMAL
    ttl_s: float = float("inf")
    created_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.bundle_id:
            raise ValueError("bundle_id must be non-empty")
        if self.size_bytes <= 0:
            raise ValueError(
                f"size_bytes must be positive, got {self.size_bytes}"
            )
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if not self.ttl_s > 0.0 or math.isnan(self.ttl_s):
            raise ValueError(f"ttl_s must be positive, got {self.ttl_s}")

    @property
    def expires_s(self) -> float:
        """Absolute expiry instant."""
        return self.created_s + self.ttl_s

    def expired(self, now_s: float) -> bool:
        """Whether the bundle's TTL has run out at ``now_s``."""
        return now_s >= self.expires_s


def _evicts_before(a: Bundle, b: Bundle) -> bool:
    """Strict "a is sacrificed before b" order of the drop policy.

    Lowest priority goes first; among equals the youngest goes first
    (oldest custody is closest to delivery and has consumed the most
    network effort); bundle-id descending breaks exact ties so the
    policy is a total order and runs are replayable.
    """
    key_a = (a.priority, -a.created_s)
    key_b = (b.priority, -b.created_s)
    if key_a != key_b:
        return key_a < key_b
    return a.bundle_id > b.bundle_id


class BundleBuffer:
    """One node's finite custody store.

    Args:
        node_id: Owning node (event subject prefix).
        capacity_bytes: Byte budget; ``inf`` disables eviction (but TTL
            expiry still applies).
    """

    def __init__(self, node_id: str, capacity_bytes: float = float("inf")):
        if capacity_bytes <= 0.0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self._bundles: Dict[str, Bundle] = {}
        self.used_bytes = 0
        self.drop_count = 0
        self.expire_count = 0

    def __len__(self) -> int:
        return len(self._bundles)

    def __contains__(self, bundle_id: str) -> bool:
        return bundle_id in self._bundles

    def bundles(self) -> List[Bundle]:
        """Held bundles in forwarding order: most valuable first."""
        return sorted(
            self._bundles.values(),
            key=lambda b: (-b.priority, b.created_s, b.bundle_id),
        )

    def remove(self, bundle_id: str) -> Optional[Bundle]:
        """Release custody of one bundle (forwarded or delivered)."""
        bundle = self._bundles.pop(bundle_id, None)
        if bundle is not None:
            self.used_bytes -= bundle.size_bytes
        return bundle

    def purge_expired(self, now_s: float) -> List[Bundle]:
        """Drop every held bundle whose TTL ran out; returns them."""
        expired = [
            bundle for bundle in self._bundles.values()
            if bundle.expired(now_s)
        ]
        for bundle in expired:
            del self._bundles[bundle.bundle_id]
            self.used_bytes -= bundle.size_bytes
            self._record_expire(bundle, now_s)
        return expired

    def offer(self, bundle: Bundle,
              now_s: float = 0.0) -> Tuple[bool, List[Bundle]]:
        """Try to take custody of one bundle.

        Expired residents are purged first; an already-expired offer is
        refused as an expiry.  When the bundle does not fit, residents
        that the drop policy values less are evicted least-valuable
        first — but only if evicting *all* of them would actually make
        room; otherwise the incoming bundle alone is refused and the
        store is untouched (no pointless sacrifice).

        Args:
            bundle: The bundle offered for custody.
            now_s: Current simulated time (drives expiry).

        Returns:
            ``(accepted, dropped)`` where ``dropped`` lists the bundles
            sacrificed by this offer (evicted residents, or the offer
            itself on refusal; expiry purges are not included).
        """
        if bundle.bundle_id in self._bundles:
            raise ValueError(
                f"buffer {self.node_id} already holds {bundle.bundle_id}"
            )
        self.purge_expired(now_s)
        if bundle.expired(now_s):
            self._record_expire(bundle, now_s)
            return False, []
        needed = self.used_bytes + bundle.size_bytes
        if needed <= self.capacity_bytes:
            self._bundles[bundle.bundle_id] = bundle
            self.used_bytes += bundle.size_bytes
            return True, []
        evictable = sorted(
            (b for b in self._bundles.values()
             if _evicts_before(b, bundle)),
            key=lambda b: (b.priority, -b.created_s),
        )
        freeable = sum(b.size_bytes for b in evictable)
        if needed - freeable > self.capacity_bytes:
            self._record_drop(bundle, now_s, reason="capacity")
            return False, [bundle]
        dropped: List[Bundle] = []
        # Ties inside the sort key fall back to the policy's id order.
        evictable.sort(key=lambda b: b.bundle_id, reverse=True)
        evictable.sort(key=lambda b: (b.priority, -b.created_s))
        for victim in evictable:
            if needed <= self.capacity_bytes:
                break
            del self._bundles[victim.bundle_id]
            self.used_bytes -= victim.size_bytes
            needed -= victim.size_bytes
            self._record_drop(victim, now_s, reason="evicted")
            dropped.append(victim)
        self._bundles[bundle.bundle_id] = bundle
        self.used_bytes += bundle.size_bytes
        return True, dropped

    def _record_drop(self, bundle: Bundle, now_s: float,
                     reason: str) -> None:
        self.drop_count += 1
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("dtn.buffer.dropped")
            recorder.event(
                BUNDLE_DROP, now_s, subject=bundle.bundle_id,
                node=self.node_id, priority=bundle.priority,
                size=bundle.size_bytes, reason=reason,
            )

    def _record_expire(self, bundle: Bundle, now_s: float) -> None:
        self.expire_count += 1
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("dtn.buffer.expired")
            recorder.event(
                BUNDLE_EXPIRE, now_s, subject=bundle.bundle_id,
                node=self.node_id, priority=bundle.priority,
                size=bundle.size_bytes,
            )
