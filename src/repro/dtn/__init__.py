"""repro.dtn — the disruption-tolerant store-and-forward data plane.

The paper's democratization road map leans on satellites carrying
traffic where terrestrial backhaul is absent or destroyed; ROADMAP item
4(b) names the concrete workload — IoT telemetry evacuated from a
blacked-out region by store-and-forward.  This package composes three
measurement subsystems into a plane that actually rides out disruption:

* :mod:`repro.dtn.bundle` — the :class:`Bundle` unit (size, QoS
  priority, TTL, creation epoch) and bounded per-node
  :class:`BundleBuffer` custody stores with a priority/expiry drop
  policy (graceful degradation, never unbounded memory);
* :mod:`repro.dtn.custody` — :class:`CustodyTransfer`, hop-by-hop
  acknowledged custody over
  :class:`~repro.reliability.channel.LossyControlChannel` with bounded
  retries, exponential backoff, and re-custody on timeout;
* :mod:`repro.dtn.scheduler` — :class:`DtnScheduler`, the epoch-stepped
  contact-plan scheduler on
  :class:`~repro.routing.timeexpanded.TimeExpandedRouter` that replans
  whenever :class:`~repro.faults.inject.FaultInjector` moves the
  channel's fault epoch.

Everything is a pure function of the seed: see
:mod:`repro.experiments.disrupted` for the regional-blackout sweep and
the ``repro dtn`` CLI subcommands for the command-line surface.
"""

from repro.dtn.bundle import (
    PRIORITY_BULK,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    Bundle,
    BundleBuffer,
)
from repro.dtn.custody import CustodyResult, CustodyTransfer
from repro.dtn.scheduler import DtnResult, DtnScheduler

__all__ = [
    "PRIORITY_BULK",
    "PRIORITY_NORMAL",
    "PRIORITY_CRITICAL",
    "Bundle",
    "BundleBuffer",
    "CustodyResult",
    "CustodyTransfer",
    "DtnResult",
    "DtnScheduler",
]
