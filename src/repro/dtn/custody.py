"""Hop-by-hop custody transfer over the lossy control channel.

DTN custody is the reliability contract that makes store-and-forward
trustworthy: a bundle moves one hop only when the next node has
*acknowledged* taking responsibility for it.  The data frame and the
custody ack ride :class:`~repro.reliability.channel.LossyControlChannel`
(one round trip per attempt), under the same
:class:`~repro.reliability.exchange.ReliableExchange` machinery the auth
plane uses — bounded retransmission, exponential backoff with
deterministic jitter, optional per-link circuit breakers.  When the
retry budget runs out the sender *keeps* custody and the scheduler
re-queues the bundle: a lost hop costs time, never data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs as _obs
from repro.faults.model import link_target
from repro.obs.events import CUSTODY_ACCEPT, CUSTODY_TIMEOUT
from repro.reliability.channel import LossyControlChannel
from repro.reliability.exchange import (
    CircuitBreakerRegistry,
    ReliableExchange,
    RetryPolicy,
)


@dataclass(frozen=True)
class CustodyResult:
    """Outcome of one custody-transfer attempt sequence.

    Attributes:
        ok: True when the next hop acknowledged custody.
        attempts: Sends performed (retransmissions = attempts - 1).
        elapsed_s: Control-plane time consumed: realized RTTs plus
            lost-attempt timeouts and backoff.
        reason: ``""`` on success; the exchange failure reason otherwise.
    """

    ok: bool
    attempts: int
    elapsed_s: float
    reason: str = ""

    @property
    def retransmissions(self) -> int:
        return max(0, self.attempts - 1)


class CustodyTransfer:
    """Moves bundles one hop at a time with acknowledged custody.

    Args:
        channel: The seeded lossy channel delivery draws come from; its
            ``fault_epoch`` doubles as the scheduler's replan signal.
        policy: Retry bounds; default is the standard 4-attempt policy.
        breakers: Optional shared breaker registry (a flapping ISL stops
            being hammered after repeated custody failures).
    """

    def __init__(self, channel: LossyControlChannel,
                 policy: Optional[RetryPolicy] = None,
                 breakers: Optional[CircuitBreakerRegistry] = None):
        self.channel = channel
        self.exchange = ReliableExchange(policy or RetryPolicy(), breakers,
                                         name="custody")
        self.transfer_count = 0
        self.failure_count = 0
        self.retransmission_count = 0

    def transfer(self, graph, bundle, from_node: str, to_node: str,
                 now_s: float = 0.0) -> CustodyResult:
        """Attempt to hand one bundle to the next hop.

        Args:
            graph: The snapshot graph the hop was planned over (the
                channel still consults the *live* fault masks, so a hop
                severed after planning fails here).
            bundle: The bundle changing custody.
            from_node: Current custodian.
            to_node: Prospective next custodian.
            now_s: Simulated time the transfer starts.

        Returns:
            The custody outcome; on failure the caller keeps custody.
        """
        key = link_target(from_node, to_node)

        def attempt(_index: int):
            outcome = self.channel.attempt_round_trip(
                graph, [from_node, to_node]
            )
            return outcome.delivered, outcome.round_trip_s

        result = self.exchange.run(key, attempt, now_s=now_s)
        retransmissions = max(0, result.attempts - 1)
        self.retransmission_count += retransmissions
        recorder = _obs.active()
        if result.ok:
            self.transfer_count += 1
            if recorder.enabled:
                recorder.count("dtn.custody.transfers")
                if retransmissions:
                    recorder.count("dtn.custody.retransmissions",
                                   retransmissions)
                recorder.event(
                    CUSTODY_ACCEPT, now_s + result.elapsed_s,
                    subject=bundle.bundle_id, sender=from_node,
                    receiver=to_node, attempts=result.attempts,
                )
        else:
            self.failure_count += 1
            if recorder.enabled:
                recorder.count("dtn.custody.failures", label=result.reason)
                if retransmissions:
                    recorder.count("dtn.custody.retransmissions",
                                   retransmissions)
                recorder.event(
                    CUSTODY_TIMEOUT, now_s + result.elapsed_s,
                    subject=bundle.bundle_id, sender=from_node,
                    receiver=to_node, attempts=result.attempts,
                    reason=result.reason,
                )
        return CustodyResult(
            ok=result.ok, attempts=result.attempts,
            elapsed_s=result.elapsed_s, reason=result.reason,
        )
