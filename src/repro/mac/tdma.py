"""TDMA comparator for the ISL MAC ablation.

The synchronized alternative to CSMA/CA: each station owns a fixed slot in
a repeating frame, so there are no collisions and no backoff, at the cost
of requiring time synchronization (which the paper notes heterogeneous
constellations find harder) and of wasting slots owned by idle stations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mac.common import MacResult


@dataclass(frozen=True)
class TdmaConfig:
    """TDMA parameters.

    Attributes:
        slot_time_s: Duration of one TDMA payload slot.
        guard_time_s: Guard interval appended to every slot (absorbs clock
            error and differential propagation across the heterogeneous
            fleet — the "synchronization tax").
        frame_slots_per_station: Consecutive slots each station owns per
            frame cycle.
    """

    slot_time_s: float = 0.15
    guard_time_s: float = 0.005
    frame_slots_per_station: int = 1

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0.0:
            raise ValueError(f"slot time must be positive, got {self.slot_time_s}")
        if self.guard_time_s < 0.0:
            raise ValueError(f"guard time must be >= 0, got {self.guard_time_s}")
        if self.frame_slots_per_station < 1:
            raise ValueError(
                f"need >= 1 slot per station, got {self.frame_slots_per_station}"
            )


class TdmaSimulator:
    """Round-robin TDMA channel with N stations.

    One queued frame is served per owned slot.  Arrivals are Bernoulli per
    slot (matching the CSMA/CA simulator so the two are comparable under
    identical offered load).

    Args:
        station_count: Number of stations in the TDMA frame.
        config: Timing parameters.
        arrival_rate_fps: Frames per second per station.
        rng: Seeded random generator.
    """

    def __init__(self, station_count: int, config: TdmaConfig,
                 arrival_rate_fps: float, rng: np.random.Generator):
        if station_count < 1:
            raise ValueError(f"need >= 1 station, got {station_count}")
        if arrival_rate_fps < 0.0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_fps}")
        self.config = config
        self.station_count = station_count
        self._rng = rng
        self._arrival_rate = arrival_rate_fps
        self._queues: List[List[float]] = [[] for _ in range(station_count)]

    def run(self, duration_s: float) -> MacResult:
        """Simulate ``duration_s`` seconds of TDMA frames."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        cfg = self.config
        slot_total_s = cfg.slot_time_s + cfg.guard_time_s
        p_arrival = min(1.0, self._arrival_rate * slot_total_s)
        total_slots = int(duration_s / slot_total_s)
        result = MacResult(duration_s=total_slots * slot_total_s)
        for sid in range(self.station_count):
            result.per_station_delivered[sid] = 0

        for slot in range(total_slots):
            now_s = slot * slot_total_s
            arrivals = self._rng.random(self.station_count) < p_arrival
            for sid, arrived in enumerate(arrivals):
                if arrived:
                    self._queues[sid].append(now_s)
                    result.frames_offered += 1
            owner = (slot // cfg.frame_slots_per_station) % self.station_count
            if self._queues[owner]:
                arrival = self._queues[owner].pop(0)
                end_s = now_s + cfg.slot_time_s
                result.frames_delivered += 1
                result.per_station_delivered[owner] += 1
                result.delays_s.append(end_s - arrival)
                result.busy_time_s += cfg.slot_time_s
                result.useful_time_s += cfg.slot_time_s
        return result
