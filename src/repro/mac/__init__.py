"""Media-access control substrate.

The paper: "CSMA/CA allows for flexibility in synchronization between
satellites, however is prone to higher overhead and corresponding larger
latency due to Inter-Frame Spacing and backoff window requirements", and
"existing satellite providers have employed OFDM in satellite-to-ground
links".  This subpackage implements:

* a slotted CSMA/CA simulator with DIFS/SIFS inter-frame spacing and
  binary-exponential backoff (the paper's ISL MAC);
* a TDMA comparator (the synchronized alternative CSMA/CA's flexibility is
  traded against);
* an OFDMA downlink scheduler for satellite-to-user links.
"""

from repro.mac.aloha import (
    AlohaConfig,
    SlottedAlohaSimulator,
    theoretical_throughput,
)
from repro.mac.csma import CsmaCaConfig, CsmaCaSimulator, MacResult
from repro.mac.tdma import TdmaConfig, TdmaSimulator
from repro.mac.ofdm import (
    OfdmConfig,
    OfdmaScheduler,
    ResourceGrant,
    UserDemand,
)

__all__ = [
    "AlohaConfig",
    "SlottedAlohaSimulator",
    "theoretical_throughput",
    "CsmaCaConfig",
    "CsmaCaSimulator",
    "MacResult",
    "TdmaConfig",
    "TdmaSimulator",
    "OfdmConfig",
    "OfdmaScheduler",
    "ResourceGrant",
    "UserDemand",
]
