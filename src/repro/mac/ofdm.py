"""OFDMA scheduling for satellite-to-user downlinks.

The paper: "existing satellite providers have employed OFDM in
satellite-to-ground links, and this choice has shown to work well in
efficiently utilizing the spectrum while minimizing interference with
other users."  A single satellite serves many ground users simultaneously;
this module carves the downlink band into resource blocks and allocates
them across users with either a proportional-fair or round-robin policy,
respecting per-user SNR (through MODCOD selection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.phy.modulation import select_modcod


@dataclass(frozen=True)
class OfdmConfig:
    """OFDMA downlink numerology.

    Attributes:
        channel_bandwidth_hz: Total downlink channel bandwidth.
        subcarrier_spacing_hz: OFDM subcarrier spacing.
        subcarriers_per_block: Subcarriers grouped into one schedulable
            resource block.
        cyclic_prefix_overhead: Fraction of symbol time spent on the cyclic
            prefix (lost to capacity).
        scheduling_interval_s: Scheduler epoch length.
    """

    channel_bandwidth_hz: float = 250e6
    subcarrier_spacing_hz: float = 240e3
    subcarriers_per_block: int = 12
    cyclic_prefix_overhead: float = 0.07
    scheduling_interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.channel_bandwidth_hz <= 0.0:
            raise ValueError(
                f"bandwidth must be positive, got {self.channel_bandwidth_hz}"
            )
        if not 0.0 <= self.cyclic_prefix_overhead < 1.0:
            raise ValueError(
                f"CP overhead must be in [0, 1), got {self.cyclic_prefix_overhead}"
            )

    @property
    def total_blocks(self) -> int:
        """Schedulable resource blocks across the channel."""
        block_bw = self.subcarrier_spacing_hz * self.subcarriers_per_block
        return int(self.channel_bandwidth_hz // block_bw)

    @property
    def block_bandwidth_hz(self) -> float:
        return self.subcarrier_spacing_hz * self.subcarriers_per_block


@dataclass
class UserDemand:
    """One user's state entering a scheduling epoch.

    Attributes:
        user_id: Stable identifier.
        snr_db: Current downlink SNR for this user.
        demand_bps: Rate the user wants this epoch.
        average_rate_bps: Exponentially-averaged served rate (the
            proportional-fair denominator); updated by the scheduler.
    """

    user_id: str
    snr_db: float
    demand_bps: float
    average_rate_bps: float = 1.0


@dataclass(frozen=True)
class ResourceGrant:
    """Blocks and resulting rate granted to one user for one epoch."""

    user_id: str
    blocks: int
    rate_bps: float
    modcod_name: Optional[str]


class OfdmaScheduler:
    """Allocates OFDMA resource blocks among active users each epoch.

    Args:
        config: Downlink numerology.
        policy: ``"proportional_fair"`` (default) ranks users by
            instantaneous-rate / average-rate; ``"round_robin"`` spreads
            blocks evenly regardless of channel state.
    """

    _POLICIES = ("proportional_fair", "round_robin")

    def __init__(self, config: OfdmConfig, policy: str = "proportional_fair"):
        if policy not in self._POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {self._POLICIES}"
            )
        self.config = config
        self.policy = policy

    def _block_rate_bps(self, snr_db: float) -> float:
        """Rate one resource block sustains at the given SNR (0 if no MODCOD)."""
        modcod = select_modcod(snr_db)
        if modcod is None:
            return 0.0
        usable = self.config.block_bandwidth_hz * (
            1.0 - self.config.cyclic_prefix_overhead
        )
        return modcod.spectral_efficiency_bps_hz * usable

    def schedule(self, users: List[UserDemand]) -> List[ResourceGrant]:
        """Produce grants for one epoch and update users' average rates.

        Users whose link cannot close (no MODCOD at their SNR) receive no
        blocks but still have their average decayed, so they regain
        priority as soon as their channel recovers.
        """
        blocks_left = self.config.total_blocks
        grants: Dict[str, int] = {u.user_id: 0 for u in users}
        eligible = [u for u in users if self._block_rate_bps(u.snr_db) > 0.0
                    and u.demand_bps > 0.0]

        if self.policy == "round_robin":
            index = 0
            while blocks_left > 0 and eligible:
                user = eligible[index % len(eligible)]
                needed = self._blocks_needed(user, grants[user.user_id])
                if needed == 0:
                    eligible.remove(user)
                    continue
                grants[user.user_id] += 1
                blocks_left -= 1
                index += 1
        else:
            # Proportional fair: repeatedly hand the next block to the user
            # with the best instantaneous/average ratio who still has
            # demand.  The denominator includes rate already granted this
            # epoch, so equal users share blocks instead of the first one
            # absorbing the whole grid.
            granted_rate: Dict[str, float] = {u.user_id: 0.0 for u in users}
            while blocks_left > 0 and eligible:
                best = max(
                    eligible,
                    key=lambda u: self._block_rate_bps(u.snr_db)
                    / (max(u.average_rate_bps, 1.0)
                       + granted_rate[u.user_id]),
                )
                if self._blocks_needed(best, grants[best.user_id]) == 0:
                    eligible.remove(best)
                    continue
                grants[best.user_id] += 1
                granted_rate[best.user_id] += self._block_rate_bps(best.snr_db)
                blocks_left -= 1

        results = []
        for user in users:
            blocks = grants[user.user_id]
            block_rate = self._block_rate_bps(user.snr_db)
            rate = blocks * block_rate
            modcod = select_modcod(user.snr_db)
            # Exponential averaging with alpha = 0.1 (classic PF tracker).
            user.average_rate_bps = 0.9 * user.average_rate_bps + 0.1 * rate
            results.append(
                ResourceGrant(
                    user_id=user.user_id,
                    blocks=blocks,
                    rate_bps=rate,
                    modcod_name=modcod.name if modcod else None,
                )
            )
        return results

    def _blocks_needed(self, user: UserDemand, already_granted: int) -> int:
        """Remaining blocks to satisfy the user's demand this epoch."""
        block_rate = self._block_rate_bps(user.snr_db)
        if block_rate <= 0.0:
            return 0
        import math

        target = math.ceil(user.demand_bps / block_rate)
        return max(0, target - already_granted)

    def aggregate_throughput_bps(self, users: List[UserDemand]) -> float:
        """Total rate across one epoch's grants (convenience wrapper)."""
        return sum(g.rate_bps for g in self.schedule(users))
